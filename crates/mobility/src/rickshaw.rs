use dummyloc_geo::rng::{derive_seed, rng_from_seed};
use dummyloc_geo::{BBox, Point};
use dummyloc_trajectory::{Dataset, Trajectory, TrajectoryBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::street::{NodeId, StreetGrid};
use crate::MobilityModel;

/// Configuration of the [`RickshawModel`].
///
/// Defaults ([`RickshawConfig::nara`]) approximate the paper's setting:
/// central Nara is a roughly 2 km × 2 km downtown with a street grid on the
/// order of 100 m blocks; rickshaws tour tourists between sights at jogging
/// speed and dwell minutes at each stop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RickshawConfig {
    /// Service area covered by the tours.
    pub area: BBox,
    /// Street block spacing in metres.
    pub street_spacing: f64,
    /// Number of points of interest (tour stops) placed on intersections.
    pub poi_count: usize,
    /// `(min, max)` cruising speed in m/s, sampled per leg.
    pub speed_range: (f64, f64),
    /// `(min, max)` dwell at each stop in seconds (pickup/dropoff/waiting).
    pub dwell_range: (f64, f64),
    /// Sampling interval of the emitted trajectories in seconds.
    pub tick: f64,
}

impl RickshawConfig {
    /// The default Nara-like configuration used by the experiments: 2 km
    /// square, 100 m blocks, 24 sights, 1.5–4 m/s, 30–180 s dwells, 1 s
    /// tick.
    pub fn nara() -> Self {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0))
            .expect("static bounds are valid");
        RickshawConfig {
            area,
            street_spacing: 100.0,
            poi_count: 24,
            speed_range: (1.5, 4.0),
            dwell_range: (30.0, 180.0),
            tick: 1.0,
        }
    }

    fn validate(&self) {
        assert!(self.tick > 0.0, "tick must be positive");
        assert!(
            self.poi_count >= 2,
            "need at least two POIs to tour between"
        );
        assert!(
            self.speed_range.0 > 0.0 && self.speed_range.1 >= self.speed_range.0,
            "speed range must be positive and ordered"
        );
        assert!(
            self.dwell_range.0 >= 0.0 && self.dwell_range.1 >= self.dwell_range.0,
            "dwell range must be non-negative and ordered"
        );
    }
}

/// The Nara rickshaw workload substitute (see `DESIGN.md` §3).
///
/// Each rickshaw starts at a point of interest and repeatedly: picks a
/// different POI, rides there along a random shortest staircase route on
/// the street network at a per-leg speed, then dwells (pickup/dropoff).
/// [`RickshawModel::generate_fleet`] emits the full 39-track dataset.
#[derive(Debug, Clone)]
pub struct RickshawModel {
    config: RickshawConfig,
    streets: StreetGrid,
    pois: Vec<NodeId>,
}

impl RickshawModel {
    /// Builds the model, placing `poi_count` distinct POIs on random
    /// intersections drawn from `poi_seed`.
    ///
    /// POI placement is seeded separately from trajectory generation so
    /// that experiments can vary the fleet while holding the "city" fixed.
    pub fn new(config: RickshawConfig, poi_seed: u64) -> Self {
        config.validate();
        let streets = StreetGrid::new(config.area, config.street_spacing);
        assert!(
            config.poi_count <= streets.node_count(),
            "more POIs than intersections"
        );
        let mut rng = rng_from_seed(poi_seed);
        let mut pois: Vec<NodeId> = Vec::with_capacity(config.poi_count);
        while pois.len() < config.poi_count {
            let n = streets.random_node(&mut rng);
            if !pois.contains(&n) {
                pois.push(n);
            }
        }
        RickshawModel {
            config,
            streets,
            pois,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RickshawConfig {
        &self.config
    }

    /// The underlying street network.
    pub fn streets(&self) -> &StreetGrid {
        &self.streets
    }

    /// POI coordinates (tour stops).
    pub fn poi_positions(&self) -> Vec<Point> {
        self.pois
            .iter()
            .map(|&n| self.streets.node_pos(n))
            .collect()
    }

    /// Generates the whole fleet: `count` rickshaws (the paper uses 39),
    /// each from an independent sub-seed, all spanning `[start, start +
    /// duration]`.
    pub fn generate_fleet(&self, seed: u64, count: usize, start: f64, duration: f64) -> Dataset {
        let mut ds = Dataset::new();
        for k in 0..count {
            let mut rng = rng_from_seed(derive_seed(seed, k as u64));
            let track = self.generate(&mut rng, &format!("rickshaw-{k:02}"), start, duration);
            ds.push(track).expect("fleet ids are distinct");
        }
        ds
    }
}

impl MobilityModel for RickshawModel {
    fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: &str,
        start: f64,
        duration: f64,
    ) -> Trajectory {
        let c = &self.config;
        let end = start + duration.max(0.0);
        let mut b = TrajectoryBuilder::new(id);
        let mut at = self.pois[rng.gen_range(0..self.pois.len())];
        let mut t = start;
        b.push(t, self.streets.node_pos(at));
        'tour: while t < end {
            // Dwell at the current stop.
            let dwell = sample_in(rng, c.dwell_range);
            if dwell > 0.0 {
                t = (t + dwell).min(end);
                b.push(t, self.streets.node_pos(at));
                if t >= end {
                    break;
                }
            }
            // Pick a different destination POI and ride there.
            let dest = loop {
                let cand = self.pois[rng.gen_range(0..self.pois.len())];
                if cand != at {
                    break cand;
                }
            };
            let speed = sample_in(rng, c.speed_range);
            let path = self.streets.route(rng, at, dest);
            for w in path.windows(2) {
                let from = self.streets.node_pos(w[0]);
                let to = self.streets.node_pos(w[1]);
                let legtime = from.distance(&to) / speed;
                if t + legtime <= end {
                    t += legtime;
                    b.push(t, to);
                    at = w[1];
                } else {
                    let frac = (end - t) / legtime;
                    b.push(end, from.lerp(&to, frac));
                    break 'tour;
                }
            }
        }
        let track = b.build().expect("builder fed strictly increasing times");
        track.resample(c.tick).expect("tick validated positive")
    }
}

fn sample_in<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
    if lo < hi {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_trajectory::stats::{dataset_stats, track_stats};

    fn model() -> RickshawModel {
        RickshawModel::new(RickshawConfig::nara(), 1)
    }

    #[test]
    fn poi_placement_is_distinct_and_seeded() {
        let m = model();
        let pois = m.poi_positions();
        assert_eq!(pois.len(), 24);
        let mut dedup = pois
            .iter()
            .map(|p| (p.x as i64, p.y as i64))
            .collect::<Vec<_>>();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 24);
        // Same seed → same city; different seed → different city.
        let m2 = RickshawModel::new(RickshawConfig::nara(), 1);
        assert_eq!(m.poi_positions(), m2.poi_positions());
        let m3 = RickshawModel::new(RickshawConfig::nara(), 2);
        assert_ne!(m.poi_positions(), m3.poi_positions());
    }

    #[test]
    fn track_spans_requested_window() {
        let m = model();
        let mut rng = rng_from_seed(5);
        let t = m.generate(&mut rng, "r", 0.0, 1800.0);
        assert_eq!(t.start_time(), 0.0);
        assert_eq!(t.end_time(), 1800.0);
        assert_eq!(t.len(), 1801); // 1 s tick
    }

    #[test]
    fn track_stays_in_area_and_speed_bounds() {
        let m = model();
        let mut rng = rng_from_seed(6);
        let t = m.generate(&mut rng, "r", 0.0, 3600.0);
        for p in t.points() {
            assert!(m.config().area.contains(p.pos));
        }
        let s = track_stats(&t);
        assert!(s.max_speed <= 4.0 + 1e-9, "max speed {}", s.max_speed);
    }

    #[test]
    fn positions_lie_on_streets() {
        let m = model();
        let mut rng = rng_from_seed(7);
        let t = m.generate(&mut rng, "r", 0.0, 600.0);
        let sp = m.config().street_spacing;
        for p in t.points() {
            // On a street means x or y is a multiple of the spacing.
            let on_x = (p.pos.x / sp - (p.pos.x / sp).round()).abs() < 1e-6;
            let on_y = (p.pos.y / sp - (p.pos.y / sp).round()).abs() < 1e-6;
            assert!(on_x || on_y, "{:?} is off the street network", p.pos);
        }
    }

    #[test]
    fn fleet_has_39_tracks_and_common_window() {
        let m = model();
        let fleet = m.generate_fleet(11, 39, 0.0, 900.0);
        assert_eq!(fleet.len(), 39);
        assert_eq!(fleet.common_time_range(), Some((0.0, 900.0)));
        let stats = dataset_stats(&fleet);
        assert_eq!(stats.tracks, 39);
        // Rickshaws move at 1.5–4 m/s but dwell a lot; mean speed must land
        // in a plausible sub-cruising band.
        assert!(
            stats.mean_speed > 0.3 && stats.mean_speed < 4.0,
            "{}",
            stats.mean_speed
        );
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let m = model();
        let a = m.generate_fleet(11, 5, 0.0, 300.0);
        let b = m.generate_fleet(11, 5, 0.0, 300.0);
        assert_eq!(a, b);
        let c = m.generate_fleet(12, 5, 0.0, 300.0);
        assert_ne!(a, c);
    }

    #[test]
    fn tracks_in_fleet_are_independent() {
        // Adding a 6th rickshaw must not change the first five.
        let m = model();
        let five = m.generate_fleet(11, 5, 0.0, 300.0);
        let six = m.generate_fleet(11, 6, 0.0, 300.0);
        for k in 0..5 {
            assert_eq!(five.tracks()[k], six.tracks()[k]);
        }
    }

    #[test]
    #[should_panic(expected = "at least two POIs")]
    fn single_poi_config_rejected() {
        let mut c = RickshawConfig::nara();
        c.poi_count = 1;
        RickshawModel::new(c, 0);
    }
}
