//! GPS noise injection.
//!
//! Real receivers jitter by metres; synthetic tracks are exact. Adding a
//! noise model matters for two reasons:
//!
//! 1. **Fidelity** — feeding noisy tracks through the pipeline checks
//!    that nothing (snapping, metrics, adversaries) silently depends on
//!    exact positions.
//! 2. **Security analysis** — observer filters (speed gates, map filters)
//!    must budget for noise; their tolerances come from the same `sigma`
//!    used here.
//!
//! The model is isotropic Gaussian noise per sample, the standard
//! first-order GPS error model. Samples are drawn with the Box–Muller
//! transform to stay within the workspace's `rand`-only dependency set.

use dummyloc_geo::{BBox, Point};
use rand::Rng;

use crate::{Trajectory, TrajectoryBuilder};

/// Draws one standard-normal value (Box–Muller; consumes two uniforms).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log: gen::<f64>() ∈ [0, 1); flip to (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Adds isotropic Gaussian noise of standard deviation `sigma` (metres,
/// per axis) to every sample. When `clamp_to` is given, noisy positions
/// are clamped into that area (receivers report positions, not walls,
/// but simulations need the service-area invariant to hold).
///
/// # Panics
///
/// Panics on a negative or non-finite `sigma` (experiment-setup error).
pub fn add_gps_noise<R: Rng + ?Sized>(
    track: &Trajectory,
    sigma: f64,
    clamp_to: Option<BBox>,
    rng: &mut R,
) -> Trajectory {
    assert!(
        sigma.is_finite() && sigma >= 0.0,
        "sigma must be a non-negative number of metres"
    );
    let mut b = TrajectoryBuilder::with_capacity(track.id(), track.len());
    for p in track.points() {
        let mut noisy = Point::new(
            p.pos.x + sigma * standard_normal(rng),
            p.pos.y + sigma * standard_normal(rng),
        );
        if let Some(area) = clamp_to {
            noisy = area.clamp(noisy);
        }
        b.push(p.t, noisy);
    }
    b.build().expect("noise preserves the time axis")
}

/// Applies [`add_gps_noise`] to every track of a dataset, with an
/// independent noise draw per track position.
pub fn add_gps_noise_dataset<R: Rng + ?Sized>(
    dataset: &crate::Dataset,
    sigma: f64,
    clamp_to: Option<BBox>,
    rng: &mut R,
) -> crate::Dataset {
    let mut out = crate::Dataset::new();
    for track in dataset.tracks() {
        out.push(add_gps_noise(track, sigma, clamp_to, rng))
            .expect("noise preserves track ids");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;

    fn straight(n: usize) -> Trajectory {
        let mut b = TrajectoryBuilder::new("s");
        for i in 0..n {
            b.push(i as f64, Point::new(i as f64, 0.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn zero_sigma_is_identity() {
        let t = straight(20);
        let mut rng = rng_from_seed(1);
        assert_eq!(add_gps_noise(&t, 0.0, None, &mut rng), t);
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let t = straight(4000);
        let mut rng = rng_from_seed(2);
        let sigma = 5.0;
        let noisy = add_gps_noise(&t, sigma, None, &mut rng);
        let residuals: Vec<f64> = t
            .points()
            .iter()
            .zip(noisy.points())
            .map(|(a, b)| b.pos.y - a.pos.y) // y axis is pure noise
            .collect();
        let n = residuals.len() as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn clamping_keeps_positions_in_area() {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(19.0, 0.5)).unwrap();
        let t = straight(20);
        let mut rng = rng_from_seed(3);
        let noisy = add_gps_noise(&t, 10.0, Some(area), &mut rng);
        for p in noisy.points() {
            assert!(area.contains(p.pos));
        }
    }

    #[test]
    fn timestamps_and_ids_survive() {
        let t = straight(10);
        let mut rng = rng_from_seed(4);
        let noisy = add_gps_noise(&t, 3.0, None, &mut rng);
        assert_eq!(noisy.id(), "s");
        for (a, b) in t.points().iter().zip(noisy.points()) {
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn dataset_noise_covers_all_tracks() {
        let ds = crate::Dataset::from_tracks(vec![straight(5), {
            let mut b = TrajectoryBuilder::new("s2");
            for i in 0..5 {
                b.push(i as f64, Point::new(0.0, i as f64));
            }
            b.build().unwrap()
        }])
        .unwrap();
        let mut rng = rng_from_seed(5);
        let noisy = add_gps_noise_dataset(&ds, 2.0, None, &mut rng);
        assert_eq!(noisy.len(), 2);
        assert_eq!(noisy.tracks()[1].id(), "s2");
        assert_ne!(noisy, ds);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        let t = straight(3);
        let mut rng = rng_from_seed(6);
        add_gps_noise(&t, -1.0, None, &mut rng);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = straight(30);
        let a = add_gps_noise(&t, 4.0, None, &mut rng_from_seed(7));
        let b = add_gps_noise(&t, 4.0, None, &mut rng_from_seed(7));
        assert_eq!(a, b);
        let c = add_gps_noise(&t, 4.0, None, &mut rng_from_seed(8));
        assert_ne!(a, c);
    }
}
