use dummyloc_geo::{BBox, Point};
use serde::{Deserialize, Serialize};

/// One timestamped position sample: the paper's `(x, y, t)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Sample time in seconds (any epoch; only differences matter).
    pub t: f64,
    /// Sampled position.
    pub pos: Point,
}

impl TrackPoint {
    /// Creates a track point.
    #[inline]
    pub const fn new(t: f64, pos: Point) -> Self {
        TrackPoint { t, pos }
    }
}

/// An immutable trajectory: a non-empty sequence of samples with strictly
/// increasing timestamps.
///
/// Construct via [`TrajectoryBuilder`](crate::TrajectoryBuilder), which
/// enforces the invariants; every method here may then rely on them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    pub(crate) id: String,
    pub(crate) points: Vec<TrackPoint>,
}

impl Trajectory {
    /// Stable identifier of the moving subject.
    #[inline]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// All samples, in time order.
    #[inline]
    pub fn points(&self) -> &[TrackPoint] {
        &self.points
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: the builder rejects empty trajectories. Provided for
    /// API completeness alongside [`Trajectory::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Time of the first sample.
    #[inline]
    pub fn start_time(&self) -> f64 {
        self.points[0].t
    }

    /// Time of the last sample.
    #[inline]
    pub fn end_time(&self) -> f64 {
        self.points[self.points.len() - 1].t
    }

    /// `end_time - start_time` (zero for a single-sample track).
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// Whether `t` falls inside the track's time span (inclusive).
    #[inline]
    pub fn is_active_at(&self, t: f64) -> bool {
        t >= self.start_time() && t <= self.end_time()
    }

    /// The position at time `t`, linearly interpolated between the two
    /// surrounding samples; `None` outside the track's time span.
    ///
    /// Linear interpolation is the standard reconstruction for GPS tracks
    /// sampled faster than the subject turns; the rickshaw model emits
    /// samples every tick so interpolation error is negligible there.
    pub fn position_at(&self, t: f64) -> Option<Point> {
        if !self.is_active_at(t) {
            return None;
        }
        // partition_point: first index with points[i].t > t. The invariants
        // guarantee idx >= 1 exactly when t >= start_time.
        let idx = self.points.partition_point(|p| p.t <= t);
        if idx == 0 {
            return Some(self.points[0].pos); // t == start_time edge
        }
        let before = self.points[idx - 1];
        if idx == self.points.len() {
            return Some(before.pos); // t == end_time
        }
        let after = self.points[idx];
        let frac = (t - before.t) / (after.t - before.t);
        Some(before.pos.lerp(&after.pos, frac))
    }

    /// Resamples the track at a fixed interval starting from its first
    /// sample. The final sample is always included so the resampled track
    /// spans the full time range.
    ///
    /// Returns an error for a non-positive interval.
    pub fn resample(&self, interval: f64) -> crate::Result<Trajectory> {
        let valid = interval.is_finite() && interval > 0.0;
        if !valid {
            return Err(crate::TrajectoryError::InvalidInterval { interval });
        }
        let mut points = Vec::new();
        let mut t = self.start_time();
        let end = self.end_time();
        while t < end {
            // position_at cannot fail inside the span.
            points.push(TrackPoint::new(
                t,
                self.position_at(t).expect("t inside span"),
            ));
            t += interval;
        }
        points.push(TrackPoint::new(end, self.points[self.points.len() - 1].pos));
        Ok(Trajectory {
            id: self.id.clone(),
            points,
        })
    }

    /// Total path length (sum of segment lengths).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.distance(&w[1].pos))
            .sum()
    }

    /// Smallest bounding box containing every sample.
    pub fn bounds(&self) -> BBox {
        BBox::enclosing(self.points.iter().map(|p| p.pos))
            .expect("trajectory is non-empty with finite points")
    }

    /// Iterator over consecutive step displacements as
    /// `(dt, distance)` pairs — the raw material of the `Shift(P)`
    /// plausibility analysis and of the speed statistics.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points
            .windows(2)
            .map(|w| (w[1].t - w[0].t, w[0].pos.distance(&w[1].pos)))
    }

    /// Returns a copy with all timestamps shifted by `dt` (used to align
    /// datasets to a common origin).
    pub fn time_shifted(&self, dt: f64) -> Trajectory {
        Trajectory {
            id: self.id.clone(),
            points: self
                .points
                .iter()
                .map(|p| TrackPoint::new(p.t + dt, p.pos))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajectoryBuilder;

    fn track() -> Trajectory {
        TrajectoryBuilder::new("t")
            .point(0.0, Point::new(0.0, 0.0))
            .point(10.0, Point::new(100.0, 0.0))
            .point(20.0, Point::new(100.0, 50.0))
            .build()
            .unwrap()
    }

    #[test]
    fn time_span_accessors() {
        let t = track();
        assert_eq!(t.start_time(), 0.0);
        assert_eq!(t.end_time(), 20.0);
        assert_eq!(t.duration(), 20.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn position_at_interpolates_linearly() {
        let t = track();
        assert_eq!(t.position_at(0.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.position_at(5.0), Some(Point::new(50.0, 0.0)));
        assert_eq!(t.position_at(10.0), Some(Point::new(100.0, 0.0)));
        assert_eq!(t.position_at(15.0), Some(Point::new(100.0, 25.0)));
        assert_eq!(t.position_at(20.0), Some(Point::new(100.0, 50.0)));
        assert_eq!(t.position_at(-0.1), None);
        assert_eq!(t.position_at(20.1), None);
    }

    #[test]
    fn position_at_exact_sample_times_returns_samples() {
        let t = track();
        for p in t.points() {
            assert_eq!(t.position_at(p.t), Some(p.pos));
        }
    }

    #[test]
    fn resample_covers_full_span() {
        let t = track();
        let r = t.resample(3.0).unwrap();
        assert_eq!(r.start_time(), 0.0);
        assert_eq!(r.end_time(), 20.0);
        // 0,3,6,9,12,15,18 then the final 20 → 8 samples
        assert_eq!(r.len(), 8);
        // Resampled positions must sit on the original path.
        for p in r.points() {
            assert_eq!(t.position_at(p.t), Some(p.pos));
        }
        assert!(t.resample(0.0).is_err());
        assert!(t.resample(-1.0).is_err());
    }

    #[test]
    fn path_length_sums_segments() {
        assert_eq!(track().path_length(), 150.0);
    }

    #[test]
    fn bounds_covers_every_sample() {
        let t = track();
        let b = t.bounds();
        for p in t.points() {
            assert!(b.contains(p.pos));
        }
        assert_eq!(b.width(), 100.0);
        assert_eq!(b.height(), 50.0);
    }

    #[test]
    fn steps_yields_dt_and_distance() {
        let steps: Vec<_> = track().steps().collect();
        assert_eq!(steps, vec![(10.0, 100.0), (10.0, 50.0)]);
    }

    #[test]
    fn time_shift_moves_span_only() {
        let t = track().time_shifted(100.0);
        assert_eq!(t.start_time(), 100.0);
        assert_eq!(t.end_time(), 120.0);
        assert_eq!(t.path_length(), 150.0);
    }

    #[test]
    fn single_point_track_has_zero_duration() {
        let t = TrajectoryBuilder::new("s")
            .point(5.0, Point::new(1.0, 1.0))
            .build()
            .unwrap();
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.position_at(5.0), Some(Point::new(1.0, 1.0)));
        assert_eq!(t.position_at(5.1), None);
        assert_eq!(t.path_length(), 0.0);
        let r = t.resample(1.0).unwrap();
        assert_eq!(r.len(), 1);
    }
}
