//! Trajectory statistics.
//!
//! These summaries serve two purposes in the reproduction:
//!
//! 1. **Workload validation** — `EXPERIMENTS.md` reports the synthetic Nara
//!    rickshaw workload's speed and coverage statistics so a reader can
//!    check it is plausible for "rickshaws touring a downtown area".
//! 2. **Plausibility analysis** — the per-step displacement distribution is
//!    what an observer exploits to tell dummies from true tracks; the
//!    adversary models in `dummyloc-core` consume these numbers.

use dummyloc_geo::{Grid, Point};

use crate::{Dataset, Trajectory};

/// Summary statistics of one trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackStats {
    /// Number of samples.
    pub samples: usize,
    /// Track duration in seconds.
    pub duration: f64,
    /// Total path length.
    pub path_length: f64,
    /// Mean speed over moving segments (path length / duration); zero for
    /// single-sample or zero-duration tracks.
    pub mean_speed: f64,
    /// Largest instantaneous (per-segment) speed.
    pub max_speed: f64,
    /// Mean per-step displacement distance.
    pub mean_step: f64,
    /// Largest per-step displacement distance.
    pub max_step: f64,
}

/// Computes [`TrackStats`] for a trajectory.
pub fn track_stats(track: &Trajectory) -> TrackStats {
    let samples = track.len();
    let duration = track.duration();
    let path_length = track.path_length();
    let mut max_speed: f64 = 0.0;
    let mut max_step: f64 = 0.0;
    let mut steps = 0usize;
    for (dt, dist) in track.steps() {
        if dt > 0.0 {
            max_speed = max_speed.max(dist / dt);
        }
        max_step = max_step.max(dist);
        steps += 1;
    }
    TrackStats {
        samples,
        duration,
        path_length,
        mean_speed: if duration > 0.0 {
            path_length / duration
        } else {
            0.0
        },
        max_speed,
        mean_step: if steps > 0 {
            path_length / steps as f64
        } else {
            0.0
        },
        max_step,
    }
}

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of tracks.
    pub tracks: usize,
    /// Total samples across tracks.
    pub samples: usize,
    /// Mean of per-track mean speeds (unweighted).
    pub mean_speed: f64,
    /// Largest per-segment speed anywhere in the dataset.
    pub max_speed: f64,
    /// Mean per-step displacement across all steps of all tracks.
    pub mean_step: f64,
    /// Width and height of the dataset bounding box, zero when empty.
    pub extent: (f64, f64),
}

/// Computes [`DatasetStats`] for a dataset.
pub fn dataset_stats(dataset: &Dataset) -> DatasetStats {
    let tracks = dataset.len();
    let mut samples = 0usize;
    let mut speed_sum = 0.0;
    let mut max_speed: f64 = 0.0;
    let mut step_sum = 0.0;
    let mut step_count = 0usize;
    for t in dataset.tracks() {
        let s = track_stats(t);
        samples += s.samples;
        speed_sum += s.mean_speed;
        max_speed = max_speed.max(s.max_speed);
        step_sum += s.path_length;
        step_count += t.len().saturating_sub(1);
    }
    let extent = dataset
        .bounds()
        .map_or((0.0, 0.0), |b| (b.width(), b.height()));
    DatasetStats {
        tracks,
        samples,
        mean_speed: if tracks > 0 {
            speed_sum / tracks as f64
        } else {
            0.0
        },
        max_speed,
        mean_step: if step_count > 0 {
            step_sum / step_count as f64
        } else {
            0.0
        },
        extent,
    }
}

/// Fraction of a grid's regions visited by at least one sample of the
/// dataset — a static ubiquity measure of the *workload itself* (distinct
/// from the per-snapshot `F` metric in `dummyloc-core`, which this
/// upper-bounds).
pub fn coverage(dataset: &Dataset, grid: &Grid) -> f64 {
    let mut visited = vec![false; grid.cell_count()];
    for t in dataset.tracks() {
        for p in t.points() {
            if let Ok(cell) = grid.cell_of(p.pos) {
                let idx = grid
                    .linear_index(cell)
                    .expect("cell_of returns in-range cells");
                visited[idx] = true;
            }
        }
    }
    let hit = visited.iter().filter(|&&v| v).count();
    hit as f64 / grid.cell_count() as f64
}

/// Histogram of per-step displacement distances with uniform bins of width
/// `bin_width`; the final bin is open-ended. Returns bin counts.
pub fn step_histogram(dataset: &Dataset, bin_width: f64, bins: usize) -> Vec<usize> {
    assert!(bin_width > 0.0, "bin_width must be positive");
    assert!(bins > 0, "need at least one bin");
    let mut hist = vec![0usize; bins];
    for t in dataset.tracks() {
        for (_, dist) in t.steps() {
            let bin = ((dist / bin_width) as usize).min(bins - 1);
            hist[bin] += 1;
        }
    }
    hist
}

/// Mean position of all samples of all tracks, or `None` for an empty
/// dataset (used to centre synthetic workloads in a service area).
pub fn centroid(dataset: &Dataset) -> Option<Point> {
    let mut n = 0usize;
    let mut sx = 0.0;
    let mut sy = 0.0;
    for t in dataset.tracks() {
        for p in t.points() {
            n += 1;
            sx += p.pos.x;
            sy += p.pos.y;
        }
    }
    (n > 0).then(|| Point::new(sx / n as f64, sy / n as f64))
}

/// Turn angles of a track: the absolute heading change (radians, in
/// `[0, π]`) at each interior sample with movement on both sides.
///
/// Turn statistics are a strong behavioral fingerprint: real movers go
/// mostly straight (small angles) with occasional corners, diffusing
/// dummies turn uniformly. The realism experiment (X3) compares these
/// distributions between dummies and true users.
pub fn turn_angles(track: &Trajectory) -> Vec<f64> {
    let pts = track.points();
    let mut out = Vec::new();
    for w in pts.windows(3) {
        let v1 = w[0].pos.to(w[1].pos);
        let v2 = w[1].pos.to(w[2].pos);
        if v1.length() > 1e-9 && v2.length() > 1e-9 {
            let cos = (v1.dot(&v2) / (v1.length() * v2.length())).clamp(-1.0, 1.0);
            out.push(cos.acos());
        }
    }
    out
}

/// Summary of a sample of values: mean, p50, p95 (empty samples give
/// zeros). Percentiles use the nearest-rank method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
}

/// Summarizes a sample (see [`SampleSummary`]).
pub fn summarize(values: &[f64]) -> SampleSummary {
    if values.is_empty() {
        return SampleSummary {
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let rank = |q: f64| {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    SampleSummary {
        mean,
        p50: rank(0.50),
        p95: rank(0.95),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajectoryBuilder;
    use dummyloc_geo::BBox;

    fn l_track() -> Trajectory {
        // 100 m east in 10 s (10 m/s), then 50 m north in 25 s (2 m/s).
        TrajectoryBuilder::new("l")
            .point(0.0, Point::new(0.0, 0.0))
            .point(10.0, Point::new(100.0, 0.0))
            .point(35.0, Point::new(100.0, 50.0))
            .build()
            .unwrap()
    }

    #[test]
    fn track_stats_basic() {
        let s = track_stats(&l_track());
        assert_eq!(s.samples, 3);
        assert_eq!(s.duration, 35.0);
        assert_eq!(s.path_length, 150.0);
        assert!((s.mean_speed - 150.0 / 35.0).abs() < 1e-12);
        assert_eq!(s.max_speed, 10.0);
        assert_eq!(s.mean_step, 75.0);
        assert_eq!(s.max_step, 100.0);
    }

    #[test]
    fn single_point_track_stats_are_zero() {
        let t = TrajectoryBuilder::new("s")
            .point(0.0, Point::ORIGIN)
            .build()
            .unwrap();
        let s = track_stats(&t);
        assert_eq!(s.mean_speed, 0.0);
        assert_eq!(s.max_speed, 0.0);
        assert_eq!(s.mean_step, 0.0);
    }

    #[test]
    fn dataset_stats_aggregate() {
        let ds = Dataset::from_tracks(vec![l_track()]).unwrap();
        let s = dataset_stats(&ds);
        assert_eq!(s.tracks, 1);
        assert_eq!(s.samples, 3);
        assert_eq!(s.max_speed, 10.0);
        assert_eq!(s.extent, (100.0, 50.0));
        let empty = dataset_stats(&Dataset::new());
        assert_eq!(empty.tracks, 0);
        assert_eq!(empty.mean_speed, 0.0);
        assert_eq!(empty.extent, (0.0, 0.0));
    }

    #[test]
    fn coverage_counts_visited_cells() {
        let ds = Dataset::from_tracks(vec![l_track()]).unwrap();
        let bounds = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        let grid = Grid::square(bounds, 2).unwrap(); // 50 m cells
                                                     // Samples: (0,0) → cell (0,0); (100,0) → (1,0); (100,50) → (1,1).
        let c = coverage(&ds, &grid);
        assert_eq!(c, 3.0 / 4.0);
    }

    #[test]
    fn coverage_ignores_out_of_grid_samples() {
        let ds = Dataset::from_tracks(vec![l_track()]).unwrap();
        let bounds = BBox::new(Point::new(1000.0, 1000.0), Point::new(2000.0, 2000.0)).unwrap();
        let grid = Grid::square(bounds, 4).unwrap();
        assert_eq!(coverage(&ds, &grid), 0.0);
    }

    #[test]
    fn step_histogram_bins_and_overflow() {
        let ds = Dataset::from_tracks(vec![l_track()]).unwrap();
        // Steps are 100 and 50. Bins of 40: 50 → bin 1, 100 → bin 2 (last, open).
        let h = step_histogram(&ds, 40.0, 3);
        assert_eq!(h, vec![0, 1, 1]);
        // With 2 bins, 100 overflows into the last bin.
        let h2 = step_histogram(&ds, 40.0, 2);
        assert_eq!(h2, vec![0, 2]);
    }

    #[test]
    fn turn_angles_straight_and_corner() {
        let straight = TrajectoryBuilder::new("s")
            .point(0.0, Point::new(0.0, 0.0))
            .point(1.0, Point::new(1.0, 0.0))
            .point(2.0, Point::new(2.0, 0.0))
            .build()
            .unwrap();
        let a = turn_angles(&straight);
        assert_eq!(a.len(), 1);
        assert!(a[0].abs() < 1e-9);

        let corner = TrajectoryBuilder::new("c")
            .point(0.0, Point::new(0.0, 0.0))
            .point(1.0, Point::new(1.0, 0.0))
            .point(2.0, Point::new(1.0, 1.0)) // 90 degree left turn
            .point(3.0, Point::new(0.0, 1.0)) // another 90
            .build()
            .unwrap();
        let a = turn_angles(&corner);
        assert_eq!(a.len(), 2);
        for angle in a {
            assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        }
    }

    #[test]
    fn turn_angles_skip_stationary_segments() {
        let t = TrajectoryBuilder::new("d")
            .point(0.0, Point::new(0.0, 0.0))
            .point(1.0, Point::new(0.0, 0.0)) // dwell
            .point(2.0, Point::new(1.0, 0.0))
            .build()
            .unwrap();
        assert!(turn_angles(&t).is_empty());
    }

    #[test]
    fn summarize_basics() {
        let s = summarize(&[]);
        assert_eq!(s.mean, 0.0);
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&values);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        let single = summarize(&[7.0]);
        assert_eq!(single.p50, 7.0);
        assert_eq!(single.p95, 7.0);
    }
    #[test]
    fn centroid_weighted_by_samples() {
        let ds = Dataset::from_tracks(vec![l_track()]).unwrap();
        let c = centroid(&ds).unwrap();
        assert!((c.x - 200.0 / 3.0).abs() < 1e-12);
        assert!((c.y - 50.0 / 3.0).abs() < 1e-12);
        assert!(centroid(&Dataset::new()).is_none());
    }
}
