use dummyloc_geo::{BBox, Point};
use serde::{Deserialize, Serialize};

use crate::{Result, Trajectory, TrajectoryError};

/// The positions of every dataset subject at one instant.
///
/// This is the unit the paper's anonymity metrics consume: `F` and `P` are
/// functions of *which regions contain how many position data* at a time
/// step, and `Shift(P)` compares two consecutive snapshots. A subject whose
/// track does not span `t` contributes `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    t: f64,
    positions: Vec<Option<Point>>,
}

impl Snapshot {
    /// Creates a snapshot directly (mostly useful in tests; simulations get
    /// snapshots from [`Dataset::snapshot`]).
    pub fn new(t: f64, positions: Vec<Option<Point>>) -> Self {
        Snapshot { t, positions }
    }

    /// The instant this snapshot was taken.
    #[inline]
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Per-subject positions, parallel to the dataset's track order.
    #[inline]
    pub fn positions(&self) -> &[Option<Point>] {
        &self.positions
    }

    /// `(subject index, position)` for every subject active at this instant.
    pub fn active(&self) -> impl Iterator<Item = (usize, Point)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
    }

    /// Number of active subjects.
    pub fn active_count(&self) -> usize {
        self.positions.iter().filter(|p| p.is_some()).count()
    }

    /// Total number of subjects (active or not).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the snapshot covers zero subjects.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// A set of trajectories over a shared area and time axis — e.g. the
/// paper's 39-rickshaw workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    tracks: Vec<Trajectory>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset from tracks, rejecting duplicate subject ids.
    pub fn from_tracks(tracks: impl IntoIterator<Item = Trajectory>) -> Result<Self> {
        let mut ds = Dataset::new();
        for t in tracks {
            ds.push(t)?;
        }
        Ok(ds)
    }

    /// Adds one track, rejecting a duplicate subject id.
    pub fn push(&mut self, track: Trajectory) -> Result<()> {
        if self.tracks.iter().any(|t| t.id() == track.id()) {
            return Err(TrajectoryError::DuplicateId {
                id: track.id().to_owned(),
            });
        }
        self.tracks.push(track);
        Ok(())
    }

    /// All tracks in insertion order.
    #[inline]
    pub fn tracks(&self) -> &[Trajectory] {
        &self.tracks
    }

    /// Track by subject id.
    pub fn get(&self, id: &str) -> Option<&Trajectory> {
        self.tracks.iter().find(|t| t.id() == id)
    }

    /// Number of tracks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// Whether the dataset has no tracks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Smallest box containing every sample of every track, or `None` for an
    /// empty dataset.
    pub fn bounds(&self) -> Option<BBox> {
        let mut it = self.tracks.iter().map(|t| t.bounds());
        let first = it.next()?;
        Some(it.fold(first, |acc, b| acc.union(&b)))
    }

    /// `(earliest start, latest end)` over all tracks, or `None` if empty.
    pub fn time_range(&self) -> Option<(f64, f64)> {
        let start = self
            .tracks
            .iter()
            .map(|t| t.start_time())
            .fold(f64::INFINITY, f64::min);
        let end = self
            .tracks
            .iter()
            .map(|t| t.end_time())
            .fold(f64::NEG_INFINITY, f64::max);
        (!self.tracks.is_empty()).then_some((start, end))
    }

    /// The interval during which *every* track is active — `(latest start,
    /// earliest end)` — or `None` if the dataset is empty or no such
    /// interval exists.
    ///
    /// The paper's experiments assume all 39 subjects report at every step;
    /// experiments therefore run over this common window.
    pub fn common_time_range(&self) -> Option<(f64, f64)> {
        let start = self
            .tracks
            .iter()
            .map(|t| t.start_time())
            .fold(f64::NEG_INFINITY, f64::max);
        let end = self
            .tracks
            .iter()
            .map(|t| t.end_time())
            .fold(f64::INFINITY, f64::min);
        (!self.tracks.is_empty() && start <= end).then_some((start, end))
    }

    /// The positions of every subject at time `t` (interpolated), `None`
    /// entries for tracks not spanning `t`.
    pub fn snapshot(&self, t: f64) -> Snapshot {
        Snapshot {
            t,
            positions: self.tracks.iter().map(|tr| tr.position_at(t)).collect(),
        }
    }

    /// Snapshots at `interval` spacing across the common time window (both
    /// endpoints included when they land on the lattice).
    ///
    /// Returns an error for a non-positive interval; returns an empty vector
    /// if no common window exists.
    pub fn snapshots(&self, interval: f64) -> Result<Vec<Snapshot>> {
        let valid = interval.is_finite() && interval > 0.0;
        if !valid {
            return Err(TrajectoryError::InvalidInterval { interval });
        }
        let Some((start, end)) = self.common_time_range() else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let steps = ((end - start) / interval).floor() as usize;
        for k in 0..=steps {
            out.push(self.snapshot(start + k as f64 * interval));
        }
        Ok(out)
    }

    /// Returns a copy with every track time-shifted so the earliest start is
    /// zero (a no-op on an empty dataset).
    pub fn aligned_to_zero(&self) -> Dataset {
        let Some((start, _)) = self.time_range() else {
            return self.clone();
        };
        Dataset {
            tracks: self.tracks.iter().map(|t| t.time_shifted(-start)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajectoryBuilder;

    fn track(id: &str, t0: f64, t1: f64, x: f64) -> Trajectory {
        TrajectoryBuilder::new(id)
            .point(t0, Point::new(x, 0.0))
            .point(t1, Point::new(x, 100.0))
            .build()
            .unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::from_tracks(vec![
            track("a", 0.0, 10.0, 0.0),
            track("b", 2.0, 12.0, 50.0),
            track("c", 4.0, 8.0, 100.0),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut ds = dataset();
        let err = ds.push(track("a", 0.0, 1.0, 0.0)).unwrap_err();
        assert!(matches!(err, TrajectoryError::DuplicateId { id } if id == "a"));
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn get_by_id() {
        let ds = dataset();
        assert_eq!(ds.get("b").unwrap().id(), "b");
        assert!(ds.get("zz").is_none());
    }

    #[test]
    fn time_ranges() {
        let ds = dataset();
        assert_eq!(ds.time_range(), Some((0.0, 12.0)));
        assert_eq!(ds.common_time_range(), Some((4.0, 8.0)));
        assert_eq!(Dataset::new().time_range(), None);
        assert_eq!(Dataset::new().common_time_range(), None);
    }

    #[test]
    fn no_common_window_when_disjoint() {
        let ds = Dataset::from_tracks(vec![track("a", 0.0, 1.0, 0.0), track("b", 5.0, 6.0, 0.0)])
            .unwrap();
        assert_eq!(ds.common_time_range(), None);
        assert!(ds.snapshots(1.0).unwrap().is_empty());
    }

    #[test]
    fn snapshot_marks_inactive_subjects() {
        let ds = dataset();
        let s = ds.snapshot(1.0); // only "a" active
        assert_eq!(s.time(), 1.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.active_count(), 1);
        assert!(s.positions()[0].is_some());
        assert!(s.positions()[1].is_none());
        let active: Vec<_> = s.active().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].0, 0);
    }

    #[test]
    fn snapshot_in_common_window_covers_everyone() {
        let ds = dataset();
        let s = ds.snapshot(6.0);
        assert_eq!(s.active_count(), 3);
    }

    #[test]
    fn snapshots_cover_common_window() {
        let ds = dataset();
        let snaps = ds.snapshots(2.0).unwrap();
        // common window [4, 8] at spacing 2 → t = 4, 6, 8
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].time(), 4.0);
        assert_eq!(snaps[2].time(), 8.0);
        assert!(snaps.iter().all(|s| s.active_count() == 3));
        assert!(ds.snapshots(0.0).is_err());
    }

    #[test]
    fn bounds_union() {
        let ds = dataset();
        let b = ds.bounds().unwrap();
        assert_eq!(b.min(), Point::new(0.0, 0.0));
        assert_eq!(b.max(), Point::new(100.0, 100.0));
        assert!(Dataset::new().bounds().is_none());
    }

    #[test]
    fn aligned_to_zero_shifts_all() {
        let ds = Dataset::from_tracks(vec![track("a", 100.0, 110.0, 0.0)]).unwrap();
        let a = ds.aligned_to_zero();
        assert_eq!(a.time_range(), Some((0.0, 10.0)));
    }
}
