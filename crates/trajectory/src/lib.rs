//! Trajectory substrate for the `dummyloc` workspace.
//!
//! The paper's workload is trajectory data — *"39 rickshaw trajectories from
//! Nara, Japan"* — sampled as `(x, y, t)` triples, and all of its anonymity
//! metrics are computed over *snapshots*: the set of positions every subject
//! reports at one time step. This crate supplies:
//!
//! * [`Trajectory`] — an immutable, time-sorted sequence of [`TrackPoint`]s
//!   with linear interpolation ([`Trajectory::position_at`]) and fixed-rate
//!   resampling,
//! * [`TrajectoryBuilder`] — the only way to construct one, enforcing the
//!   strictly-increasing-time invariant at build time,
//! * [`Dataset`] — a collection of trajectories with snapshot extraction,
//!   shared time range and bounding box,
//! * [`io`] — CSV and JSON (de)serialization,
//! * [`noise`] — the isotropic-Gaussian GPS error model,
//! * [`simplify`] — Douglas–Peucker trajectory simplification,
//! * [`stats`] — per-track and per-dataset statistics (speeds, step
//!   displacements, coverage) used to validate the synthetic Nara workload
//!   against the paper's description.
//!
//! # Example
//!
//! ```
//! use dummyloc_geo::Point;
//! use dummyloc_trajectory::TrajectoryBuilder;
//!
//! let track = TrajectoryBuilder::new("rickshaw-0")
//!     .point(0.0, Point::new(0.0, 0.0))
//!     .point(10.0, Point::new(100.0, 0.0))
//!     .build()
//!     .unwrap();
//! // Linear interpolation half way along the segment:
//! assert_eq!(track.position_at(5.0), Some(Point::new(50.0, 0.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dataset;
mod error;
mod track;

pub mod io;
pub mod noise;
pub mod simplify;
pub mod stats;

pub use builder::TrajectoryBuilder;
pub use dataset::{Dataset, Snapshot};
pub use error::TrajectoryError;
pub use track::{TrackPoint, Trajectory};

/// Result alias used throughout the trajectory crate.
pub type Result<T> = std::result::Result<T, TrajectoryError>;
