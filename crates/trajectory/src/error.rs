use std::fmt;

/// Errors produced by the trajectory substrate.
#[derive(Debug)]
pub enum TrajectoryError {
    /// A trajectory must contain at least one point.
    Empty {
        /// Id of the offending trajectory.
        id: String,
    },
    /// Timestamps must be strictly increasing.
    NonMonotonicTime {
        /// Id of the offending trajectory.
        id: String,
        /// Timestamp that failed to advance.
        t: f64,
        /// The preceding timestamp.
        prev: f64,
    },
    /// A coordinate or timestamp was NaN or infinite.
    NonFinite {
        /// Id of the offending trajectory.
        id: String,
        /// Index of the offending sample.
        index: usize,
    },
    /// Resampling was requested with a non-positive interval.
    InvalidInterval {
        /// The rejected interval.
        interval: f64,
    },
    /// Two trajectories in one dataset share an id.
    DuplicateId {
        /// The colliding id.
        id: String,
    },
    /// A malformed record was encountered while parsing.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A numeric CSV field parsed but is unusable: NaN, infinite, or
    /// beyond [`crate::io::COORD_LIMIT`].
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The offending field (`timestamp`, `x coordinate`, ...).
        field: &'static str,
        /// The raw token as it appeared in the input.
        value: String,
    },
    /// A deserialized coordinate or timestamp lies beyond
    /// [`crate::io::COORD_LIMIT`] (finite, but far outside any plausible
    /// service area — a poisoned input).
    OutOfRange {
        /// Id of the offending trajectory.
        id: String,
        /// Index of the offending sample.
        index: usize,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// An underlying JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::Empty { id } => {
                write!(f, "trajectory '{id}' has no points")
            }
            TrajectoryError::NonMonotonicTime { id, t, prev } => write!(
                f,
                "trajectory '{id}': timestamp {t} does not advance past {prev}"
            ),
            TrajectoryError::NonFinite { id, index } => {
                write!(f, "trajectory '{id}': non-finite value at sample {index}")
            }
            TrajectoryError::InvalidInterval { interval } => {
                write!(f, "resample interval must be positive, got {interval}")
            }
            TrajectoryError::DuplicateId { id } => {
                write!(f, "dataset already contains a trajectory with id '{id}'")
            }
            TrajectoryError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TrajectoryError::InvalidValue { line, field, value } => write!(
                f,
                "invalid value on line {line}: {field} '{value}' must be finite and within \u{b1}1e12"
            ),
            TrajectoryError::OutOfRange { id, index } => write!(
                f,
                "trajectory '{id}': coordinate beyond \u{b1}1e12 at sample {index}"
            ),
            TrajectoryError::Io(e) => write!(f, "i/o error: {e}"),
            TrajectoryError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for TrajectoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrajectoryError::Io(e) => Some(e),
            TrajectoryError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TrajectoryError {
    fn from(e: std::io::Error) -> Self {
        TrajectoryError::Io(e)
    }
}

impl From<serde_json::Error> for TrajectoryError {
    fn from(e: serde_json::Error) -> Self {
        TrajectoryError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_ids_and_values() {
        let e = TrajectoryError::NonMonotonicTime {
            id: "r7".into(),
            t: 3.0,
            prev: 5.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("r7"));
        assert!(msg.contains('3'));
        assert!(msg.contains('5'));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = TrajectoryError::from(inner);
        assert!(e.source().is_some());
    }
}
