//! Trajectory simplification (Douglas–Peucker).
//!
//! GPS tracks oversample straight stretches; simplification keeps the
//! geometry within a spatial tolerance while dropping redundant samples.
//! Used to shrink workloads for long simulations and to normalize
//! externally supplied traces before statistics.

use dummyloc_geo::Point;

use crate::{Result, TrackPoint, Trajectory, TrajectoryError};

/// Simplifies a track with the Douglas–Peucker algorithm: the result
/// contains a subset of the original samples (always including the first
/// and last) such that every dropped sample lies within `tolerance`
/// metres of the simplified polyline.
///
/// Timestamps are preserved, so interpolating the simplified track stays
/// time-consistent with the original.
///
/// Returns an error for a negative or non-finite tolerance.
pub fn douglas_peucker(track: &Trajectory, tolerance: f64) -> Result<Trajectory> {
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(TrajectoryError::InvalidInterval {
            interval: tolerance,
        });
    }
    let points = track.points();
    if points.len() <= 2 {
        return Ok(track.clone());
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    // Iterative stack instead of recursion: GPS tracks can be long.
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (idx, dist) = farthest_from_segment(points, lo, hi);
        if dist > tolerance {
            keep[idx] = true;
            stack.push((lo, idx));
            stack.push((idx, hi));
        }
    }
    let kept: Vec<TrackPoint> = points
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect();
    let mut builder = crate::TrajectoryBuilder::with_capacity(track.id(), kept.len());
    for p in kept {
        builder.push(p.t, p.pos);
    }
    builder.build()
}

/// Index and distance of the sample farthest from the `lo`–`hi` segment.
fn farthest_from_segment(points: &[TrackPoint], lo: usize, hi: usize) -> (usize, f64) {
    let a = points[lo].pos;
    let b = points[hi].pos;
    let mut best = (lo + 1, -1.0);
    for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let d = point_segment_distance(p.pos, a, b);
        if d > best.1 {
            best = (i, d);
        }
    }
    best
}

/// Euclidean distance from `p` to the segment `a`–`b`.
pub(crate) fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let seg = a.to(b);
    let len_sq = seg.length_sq();
    if len_sq == 0.0 {
        return p.distance(&a);
    }
    let t = (a.to(p).dot(&seg) / len_sq).clamp(0.0, 1.0);
    p.distance(&a.lerp(&b, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajectoryBuilder;

    fn track_from(points: &[(f64, f64)]) -> Trajectory {
        let mut b = TrajectoryBuilder::new("t");
        for (i, &(x, y)) in points.iter().enumerate() {
            b.push(i as f64, Point::new(x, y));
        }
        b.build().unwrap()
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t = track_from(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let s = douglas_peucker(&t, 0.01).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0].pos, Point::new(0.0, 0.0));
        assert_eq!(s.points()[1].pos, Point::new(4.0, 0.0));
        // Timestamps preserved.
        assert_eq!(s.points()[1].t, 4.0);
    }

    #[test]
    fn corner_is_kept() {
        let t = track_from(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (2.0, 1.0), (2.0, 2.0)]);
        let s = douglas_peucker(&t, 0.1).unwrap();
        let kept: Vec<Point> = s.points().iter().map(|p| p.pos).collect();
        assert!(
            kept.contains(&Point::new(2.0, 0.0)),
            "corner dropped: {kept:?}"
        );
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zero_tolerance_keeps_only_exactly_collinear_drops() {
        let t = track_from(&[(0.0, 0.0), (1.0, 0.5), (2.0, 0.0)]);
        let s = douglas_peucker(&t, 0.0).unwrap();
        assert_eq!(s.len(), 3); // the bump survives
        let straight = track_from(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(douglas_peucker(&straight, 0.0).unwrap().len(), 2);
    }

    #[test]
    fn error_bound_holds() {
        // A noisy sine-ish path: every original point must lie within the
        // tolerance of the simplified polyline.
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = i as f64;
                (x, (x * 0.3).sin() * 20.0)
            })
            .collect();
        let t = track_from(&pts);
        let tol = 2.5;
        let s = douglas_peucker(&t, tol).unwrap();
        assert!(s.len() < t.len());
        let sp = s.points();
        for orig in t.points() {
            let mut best = f64::INFINITY;
            for w in sp.windows(2) {
                best = best.min(point_segment_distance(orig.pos, w[0].pos, w[1].pos));
            }
            assert!(best <= tol + 1e-9, "point {:?} is {best} away", orig.pos);
        }
    }

    #[test]
    fn tiny_tracks_pass_through() {
        let one = track_from(&[(5.0, 5.0)]);
        assert_eq!(douglas_peucker(&one, 1.0).unwrap(), one);
        let two = track_from(&[(0.0, 0.0), (9.0, 9.0)]);
        assert_eq!(douglas_peucker(&two, 1.0).unwrap(), two);
    }

    #[test]
    fn invalid_tolerance_rejected() {
        let t = track_from(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert!(douglas_peucker(&t, -1.0).is_err());
        assert!(douglas_peucker(&t, f64::NAN).is_err());
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(point_segment_distance(Point::new(5.0, 3.0), a, b), 3.0);
        assert_eq!(point_segment_distance(Point::new(-4.0, 3.0), a, b), 5.0);
        assert_eq!(point_segment_distance(Point::new(13.0, 4.0), a, b), 5.0);
        // Degenerate segment.
        assert_eq!(point_segment_distance(Point::new(3.0, 4.0), a, a), 5.0);
    }
}
