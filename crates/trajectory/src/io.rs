//! Trajectory (de)serialization.
//!
//! Two formats are supported:
//!
//! * **CSV** — one sample per line, `id,t,x,y`, with an optional header.
//!   This is the interchange format for feeding external GPS datasets (e.g.
//!   a real rickshaw trace set) into the reproduction.
//! * **JSON** — the full [`Dataset`] structure via serde, used by the
//!   experiment runner to checkpoint generated workloads.

use std::io::{BufRead, BufReader, Read, Write};

use dummyloc_geo::Point;

use crate::{Dataset, Result, Trajectory, TrajectoryBuilder, TrajectoryError};

/// Largest magnitude accepted for timestamps and coordinates read from
/// external files. Values beyond it are finite but meaningless for any
/// service area this library models (metres-scale grids), and typically
/// indicate a corrupted or poisoned input — they are rejected with a
/// typed error instead of silently propagating into the geometry.
pub const COORD_LIMIT: f64 = 1e12;

/// Writes a dataset as `id,t,x,y` CSV with a header line.
///
/// Samples are written track by track in time order, so the output parses
/// back via [`read_csv`] into an equal dataset.
pub fn write_csv<W: Write>(dataset: &Dataset, mut w: W) -> Result<()> {
    writeln!(w, "id,t,x,y")?;
    for track in dataset.tracks() {
        for p in track.points() {
            writeln!(
                w,
                "{},{},{},{}",
                csv_escape(track.id()),
                p.t,
                p.pos.x,
                p.pos.y
            )?;
        }
    }
    Ok(())
}

/// Reads an `id,t,x,y` CSV (header optional). Samples for one id must appear
/// in time order; ids may interleave.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset> {
    let reader = BufReader::new(r);
    // Keep insertion order of first appearance so the dataset's track order
    // is stable across round trips.
    let mut order: Vec<String> = Vec::new();
    let mut builders: std::collections::HashMap<String, TrajectoryBuilder> =
        std::collections::HashMap::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if lineno == 0 && line.eq_ignore_ascii_case("id,t,x,y") {
            continue;
        }
        let mut fields = line.splitn(4, ',');
        let (id, t, x, y) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(id), Some(t), Some(x), Some(y)) => (id, t, x, y),
            _ => {
                return Err(TrajectoryError::Parse {
                    line: lineno + 1,
                    message: format!("expected 4 comma-separated fields, got '{line}'"),
                })
            }
        };
        let parse_f64 = |s: &str, what: &'static str| -> Result<f64> {
            let v = s
                .trim()
                .parse::<f64>()
                .map_err(|e| TrajectoryError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what} '{s}': {e}"),
                })?;
            // `parse::<f64>` happily accepts "NaN" and "inf"; a poisoned
            // trace must fail here, naming the line and field, not deep
            // inside the builder.
            if !v.is_finite() || v.abs() > COORD_LIMIT {
                return Err(TrajectoryError::InvalidValue {
                    line: lineno + 1,
                    field: what,
                    value: s.trim().to_string(),
                });
            }
            Ok(v)
        };
        let t = parse_f64(t, "timestamp")?;
        let x = parse_f64(x, "x coordinate")?;
        let y = parse_f64(y, "y coordinate")?;
        let id = csv_unescape(id);
        let builder = builders.entry(id.clone()).or_insert_with(|| {
            order.push(id.clone());
            TrajectoryBuilder::new(id.clone())
        });
        builder.push(t, Point::new(x, y));
    }

    let mut dataset = Dataset::new();
    for id in order {
        let builder = builders
            .remove(&id)
            .expect("order and builders stay in sync");
        dataset.push(builder.build()?)?;
    }
    Ok(dataset)
}

/// Serializes a dataset to pretty-printed JSON.
pub fn write_json<W: Write>(dataset: &Dataset, w: W) -> Result<()> {
    serde_json::to_writer_pretty(w, dataset)?;
    Ok(())
}

/// Deserializes a dataset from JSON, re-validating every track's invariants
/// (the JSON may come from outside the library).
pub fn read_json<R: Read>(r: R) -> Result<Dataset> {
    let raw: Dataset = serde_json::from_reader(r)?;
    // serde bypasses the builder, so replay each track through it. The
    // builder rejects NaN/infinite samples; the range check rejects
    // finite-but-absurd ones the same way the CSV reader does.
    let mut dataset = Dataset::new();
    for track in raw.tracks() {
        let mut b = TrajectoryBuilder::with_capacity(track.id(), track.len());
        for (index, p) in track.points().iter().enumerate() {
            if p.t.abs() > COORD_LIMIT || p.pos.x.abs() > COORD_LIMIT || p.pos.y.abs() > COORD_LIMIT
            {
                return Err(TrajectoryError::OutOfRange {
                    id: track.id().to_string(),
                    index,
                });
            }
            b.push(p.t, p.pos);
        }
        dataset.push(b.build()?)?;
    }
    Ok(dataset)
}

/// Serializes one trajectory to JSON (convenience for tools and tests).
pub fn track_to_json(track: &Trajectory) -> Result<String> {
    Ok(serde_json::to_string(track)?)
}

fn csv_escape(id: &str) -> String {
    // Commas would corrupt the record structure; encode them.
    id.replace('%', "%25").replace(',', "%2C")
}

fn csv_unescape(id: &str) -> String {
    id.replace("%2C", ",").replace("%25", "%")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let a = TrajectoryBuilder::new("a")
            .point(0.0, Point::new(1.5, 2.5))
            .point(1.0, Point::new(3.0, 4.0))
            .build()
            .unwrap();
        let b = TrajectoryBuilder::new("b")
            .point(0.5, Point::new(-1.0, -2.0))
            .point(2.5, Point::new(0.0, 0.0))
            .build()
            .unwrap();
        Dataset::from_tracks(vec![a, b]).unwrap()
    }

    #[test]
    fn csv_round_trip_preserves_dataset() {
        let ds = dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn csv_without_header_parses() {
        let csv = "a,0,1,2\na,1,3,4\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.tracks()[0].len(), 2);
    }

    #[test]
    fn csv_interleaved_ids_parse() {
        let csv = "id,t,x,y\na,0,0,0\nb,0,9,9\na,1,1,1\nb,1,8,8\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.tracks()[0].id(), "a");
        assert_eq!(ds.tracks()[1].id(), "b");
        assert_eq!(ds.get("a").unwrap().len(), 2);
    }

    #[test]
    fn csv_bad_field_count_is_a_parse_error_with_line() {
        let err = read_csv("id,t,x,y\na,0,1\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, TrajectoryError::Parse { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn csv_bad_number_is_a_parse_error() {
        let err = read_csv("a,zero,1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TrajectoryError::Parse { line: 1, .. }));
    }

    #[test]
    fn csv_non_monotonic_input_rejected() {
        let err = read_csv("a,5,0,0\na,1,1,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TrajectoryError::NonMonotonicTime { .. }));
    }

    #[test]
    fn csv_id_with_comma_round_trips() {
        let t = TrajectoryBuilder::new("weird,id%x")
            .point(0.0, Point::ORIGIN)
            .build()
            .unwrap();
        let ds = Dataset::from_tracks(vec![t]).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.tracks()[0].id(), "weird,id%x");
    }

    #[test]
    fn csv_rejects_nan_inf_and_out_of_range_naming_line_and_field() {
        // "NaN" and "inf" parse as f64 — they must still be rejected.
        let err = read_csv("id,t,x,y\na,0,NaN,2\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                &err,
                TrajectoryError::InvalidValue { line: 2, field: "x coordinate", value } if value == "NaN"
            ),
            "{err}"
        );
        let err = read_csv("a,inf,1,2\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                TrajectoryError::InvalidValue {
                    line: 1,
                    field: "timestamp",
                    ..
                }
            ),
            "{err}"
        );
        let err = read_csv("a,0,1,-1e30\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                TrajectoryError::InvalidValue {
                    line: 1,
                    field: "y coordinate",
                    ..
                }
            ),
            "{err}"
        );
        // The limit itself is still accepted.
        assert!(read_csv(format!("a,0,{COORD_LIMIT},0\n").as_bytes()).is_ok());
    }

    #[test]
    fn json_rejects_non_finite_and_out_of_range_samples() {
        let nan = r#"{"tracks":[{"id":"x","points":[
            {"t":0.0,"pos":{"x":NaN,"y":0.0}}]}]}"#;
        assert!(read_json(nan.as_bytes()).is_err());
        let huge = r#"{"tracks":[{"id":"x","points":[
            {"t":0.0,"pos":{"x":0.0,"y":0.0}},
            {"t":1.0,"pos":{"x":1.0e30,"y":0.0}}]}]}"#;
        let err = read_json(huge.as_bytes()).unwrap_err();
        assert!(
            matches!(&err, TrajectoryError::OutOfRange { id, index: 1 } if id == "x"),
            "{err}"
        );
    }

    #[test]
    fn json_round_trip_preserves_dataset() {
        let ds = dataset();
        let mut buf = Vec::new();
        write_json(&ds, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn json_with_invalid_track_rejected() {
        // Hand-crafted JSON with backwards time must fail revalidation.
        let bad = r#"{"tracks":[{"id":"x","points":[
            {"t":5.0,"pos":{"x":0.0,"y":0.0}},
            {"t":1.0,"pos":{"x":1.0,"y":1.0}}]}]}"#;
        assert!(read_json(bad.as_bytes()).is_err());
    }

    #[test]
    fn empty_csv_yields_empty_dataset() {
        let ds = read_csv("".as_bytes()).unwrap();
        assert!(ds.is_empty());
        let ds2 = read_csv("id,t,x,y\n".as_bytes()).unwrap();
        assert!(ds2.is_empty());
    }
}
