use dummyloc_geo::Point;

use crate::{Result, TrackPoint, Trajectory, TrajectoryError};

/// Builder enforcing the [`Trajectory`] invariants: non-empty, finite
/// values, strictly increasing timestamps.
///
/// ```
/// use dummyloc_geo::Point;
/// use dummyloc_trajectory::TrajectoryBuilder;
///
/// let t = TrajectoryBuilder::new("u1")
///     .point(0.0, Point::new(0.0, 0.0))
///     .point(1.0, Point::new(1.0, 1.0))
///     .build()
///     .unwrap();
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug)]
pub struct TrajectoryBuilder {
    id: String,
    points: Vec<TrackPoint>,
    error: Option<TrajectoryError>,
}

impl TrajectoryBuilder {
    /// Starts a trajectory for subject `id`.
    pub fn new(id: impl Into<String>) -> Self {
        TrajectoryBuilder {
            id: id.into(),
            points: Vec::new(),
            error: None,
        }
    }

    /// Pre-allocates capacity for `n` samples.
    pub fn with_capacity(id: impl Into<String>, n: usize) -> Self {
        TrajectoryBuilder {
            id: id.into(),
            points: Vec::with_capacity(n),
            error: None,
        }
    }

    /// Appends a sample. Errors are deferred to [`TrajectoryBuilder::build`]
    /// so calls chain; the first violation wins.
    #[must_use]
    pub fn point(mut self, t: f64, pos: Point) -> Self {
        self.push(t, pos);
        self
    }

    /// Non-consuming variant of [`TrajectoryBuilder::point`] for loops.
    pub fn push(&mut self, t: f64, pos: Point) {
        if self.error.is_some() {
            return;
        }
        if !t.is_finite() || !pos.is_finite() {
            self.error = Some(TrajectoryError::NonFinite {
                id: self.id.clone(),
                index: self.points.len(),
            });
            return;
        }
        if let Some(last) = self.points.last() {
            if t <= last.t {
                self.error = Some(TrajectoryError::NonMonotonicTime {
                    id: self.id.clone(),
                    t,
                    prev: last.t,
                });
                return;
            }
        }
        self.points.push(TrackPoint::new(t, pos));
    }

    /// Number of samples accepted so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Finalizes the trajectory, reporting the first deferred violation or
    /// an [`TrajectoryError::Empty`] error for a builder with no samples.
    pub fn build(self) -> Result<Trajectory> {
        if let Some(err) = self.error {
            return Err(err);
        }
        if self.points.is_empty() {
            return Err(TrajectoryError::Empty { id: self.id });
        }
        Ok(Trajectory {
            id: self.id,
            points: self.points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty_fails() {
        let err = TrajectoryBuilder::new("e").build().unwrap_err();
        assert!(matches!(err, TrajectoryError::Empty { .. }));
    }

    #[test]
    fn non_monotonic_time_fails() {
        let err = TrajectoryBuilder::new("m")
            .point(0.0, Point::ORIGIN)
            .point(0.0, Point::new(1.0, 1.0)) // equal timestamps rejected too
            .build()
            .unwrap_err();
        assert!(
            matches!(err, TrajectoryError::NonMonotonicTime { t, prev, .. }
            if t == 0.0 && prev == 0.0)
        );
    }

    #[test]
    fn non_finite_fails_with_index() {
        let err = TrajectoryBuilder::new("n")
            .point(0.0, Point::ORIGIN)
            .point(1.0, Point::new(f64::NAN, 0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, TrajectoryError::NonFinite { index: 1, .. }));
        let err2 = TrajectoryBuilder::new("n2")
            .point(f64::INFINITY, Point::ORIGIN)
            .build()
            .unwrap_err();
        assert!(matches!(err2, TrajectoryError::NonFinite { index: 0, .. }));
    }

    #[test]
    fn first_violation_wins() {
        // After a violation, later (even valid) points are ignored and the
        // original error is reported.
        let err = TrajectoryBuilder::new("f")
            .point(5.0, Point::ORIGIN)
            .point(1.0, Point::ORIGIN) // violation: time goes backwards
            .point(10.0, Point::ORIGIN)
            .build()
            .unwrap_err();
        assert!(matches!(err, TrajectoryError::NonMonotonicTime { t, .. } if t == 1.0));
    }

    #[test]
    fn push_loop_equivalent_to_chaining() {
        let mut b = TrajectoryBuilder::with_capacity("p", 3);
        for i in 0..3 {
            b.push(i as f64, Point::new(i as f64, 0.0));
        }
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let t = b.build().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.id(), "p");
    }
}
