//! Property-based tests for the trajectory substrate.

use dummyloc_geo::Point;
use dummyloc_trajectory::{io, Dataset, TrajectoryBuilder};
use proptest::prelude::*;

/// Strategy: a valid list of (dt > 0, point) increments.
fn arb_samples() -> impl Strategy<Value = Vec<(f64, Point)>> {
    prop::collection::vec((0.001..100.0f64, -1.0e4..1.0e4f64, -1.0e4..1.0e4f64), 1..60).prop_map(
        |raw| {
            let mut t = 0.0;
            raw.into_iter()
                .map(|(dt, x, y)| {
                    t += dt;
                    (t, Point::new(x, y))
                })
                .collect()
        },
    )
}

fn build(id: &str, samples: &[(f64, Point)]) -> dummyloc_trajectory::Trajectory {
    let mut b = TrajectoryBuilder::with_capacity(id, samples.len());
    for (t, p) in samples {
        b.push(*t, *p);
    }
    b.build().unwrap()
}

proptest! {
    #[test]
    fn interpolation_hits_every_sample(samples in arb_samples()) {
        let track = build("t", &samples);
        for p in track.points() {
            let q = track.position_at(p.t).unwrap();
            prop_assert!((q.x - p.pos.x).abs() < 1e-9);
            prop_assert!((q.y - p.pos.y).abs() < 1e-9);
        }
    }

    #[test]
    fn interpolation_stays_in_bounds(samples in arb_samples(), f in 0.0..1.0f64) {
        let track = build("t", &samples);
        let t = track.start_time() + f * track.duration();
        let p = track.position_at(t).unwrap();
        let b = track.bounds().expanded(1e-6).unwrap();
        prop_assert!(b.contains(p));
    }

    #[test]
    fn resample_preserves_endpoints_and_path_containment(
        samples in arb_samples(),
        interval in 0.01..50.0f64,
    ) {
        let track = build("t", &samples);
        let r = track.resample(interval).unwrap();
        prop_assert_eq!(r.start_time(), track.start_time());
        prop_assert_eq!(r.end_time(), track.end_time());
        // Resampling cannot lengthen the path (triangle inequality).
        prop_assert!(r.path_length() <= track.path_length() * (1.0 + 1e-9) + 1e-9);
        // Every resampled point lies on the original path.
        for p in r.points() {
            let q = track.position_at(p.t).unwrap();
            prop_assert!(q.distance(&p.pos) < 1e-6);
        }
    }

    #[test]
    fn csv_round_trip(samples in arb_samples(), samples2 in arb_samples()) {
        let ds = Dataset::from_tracks(vec![
            build("alpha", &samples),
            build("beta", &samples2),
        ]).unwrap();
        let mut buf = Vec::new();
        io::write_csv(&ds, &mut buf).unwrap();
        let back = io::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.tracks().iter().zip(back.tracks()) {
            prop_assert_eq!(a.id(), b.id());
            prop_assert_eq!(a.len(), b.len());
            for (pa, pb) in a.points().iter().zip(b.points()) {
                // f64 Display in Rust round-trips exactly.
                prop_assert_eq!(pa.t, pb.t);
                prop_assert_eq!(pa.pos, pb.pos);
            }
        }
    }

    #[test]
    fn json_round_trip(samples in arb_samples()) {
        let ds = Dataset::from_tracks(vec![build("only", &samples)]).unwrap();
        let mut buf = Vec::new();
        io::write_json(&ds, &mut buf).unwrap();
        let back = io::read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn snapshot_active_iff_span_contains_t(samples in arb_samples(), f in -0.5..1.5f64) {
        let track = build("t", &samples);
        let span = (track.start_time(), track.end_time());
        let ds = Dataset::from_tracks(vec![track]).unwrap();
        let t = span.0 + f * (span.1 - span.0 + 1.0);
        let snap = ds.snapshot(t);
        let active = snap.positions()[0].is_some();
        prop_assert_eq!(active, t >= span.0 && t <= span.1);
    }

    #[test]
    fn time_shift_preserves_geometry(samples in arb_samples(), dt in -1.0e5..1.0e5f64) {
        let track = build("t", &samples);
        let shifted = track.time_shifted(dt);
        prop_assert!((shifted.path_length() - track.path_length()).abs() < 1e-9);
        prop_assert!((shifted.duration() - track.duration()).abs() < 1e-6);
    }

    #[test]
    fn csv_parser_never_panics_on_arbitrary_input(input in ".{0,400}") {
        // Any byte soup must yield Ok or a structured error — never a
        // panic. (Catching the error content is the unit tests' job.)
        let _ = io::read_csv(input.as_bytes());
    }

    #[test]
    fn csv_parser_never_panics_on_structured_garbage(
        rows in prop::collection::vec(
            (".{0,12}", ".{0,8}", ".{0,8}", ".{0,8}"),
            0..40,
        ),
    ) {
        let mut csv = String::from("id,t,x,y\n");
        for (id, t, x, y) in rows {
            csv.push_str(&format!("{id},{t},{x},{y}\n"));
        }
        let _ = io::read_csv(csv.as_bytes());
    }

    #[test]
    fn json_parser_never_panics_on_arbitrary_input(input in ".{0,400}") {
        let _ = io::read_json(input.as_bytes());
    }

    #[test]
    fn simplify_error_bound_holds(samples in arb_samples(), tol in 0.0..50.0f64) {
        use dummyloc_trajectory::simplify::douglas_peucker;
        let track = build("t", &samples);
        let s = douglas_peucker(&track, tol).unwrap();
        prop_assert!(s.len() <= track.len());
        prop_assert_eq!(s.points()[0], track.points()[0]);
        prop_assert_eq!(
            *s.points().last().unwrap(),
            *track.points().last().unwrap()
        );
        // Every original point within tol of the simplified polyline.
        for orig in track.points() {
            let mut best = f64::INFINITY;
            if s.len() == 1 {
                best = s.points()[0].pos.distance(&orig.pos);
            }
            for w in s.points().windows(2) {
                let seg = w[0].pos.to(w[1].pos);
                let t = if seg.length_sq() > 0.0 {
                    (w[0].pos.to(orig.pos).dot(&seg) / seg.length_sq()).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                best = best.min(w[0].pos.lerp(&w[1].pos, t).distance(&orig.pos));
            }
            prop_assert!(best <= tol + 1e-6, "point {best} beyond tolerance {tol}");
        }
    }

    #[test]
    fn gps_noise_preserves_structure(samples in arb_samples(), sigma in 0.0..20.0f64) {
        use dummyloc_trajectory::noise::add_gps_noise;
        let track = build("t", &samples);
        let mut rng = dummyloc_geo::rng::rng_from_seed(1);
        let noisy = add_gps_noise(&track, sigma, None, &mut rng);
        prop_assert_eq!(noisy.len(), track.len());
        prop_assert_eq!(noisy.id(), track.id());
        for (a, b) in track.points().iter().zip(noisy.points()) {
            prop_assert_eq!(a.t, b.t);
            // 6-sigma bound per axis fails with probability ~1e-9.
            prop_assert!((a.pos.x - b.pos.x).abs() <= 6.5 * sigma + 1e-9);
            prop_assert!((a.pos.y - b.pos.y).abs() <= 6.5 * sigma + 1e-9);
        }
    }
}
