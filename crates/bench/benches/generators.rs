//! Criterion micro-benchmarks of the dummy generators: one simulated
//! service round (39 users × k dummies) per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dummyloc_core::generator::{
    DummyGenerator, MlnGenerator, MnGenerator, NoDensity, RandomGenerator,
};
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::rng::{rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Grid, Point};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

/// 39 users × 3 dummies worth of previous positions.
fn prev_positions(n: usize) -> Vec<Point> {
    let mut rng = rng_from_seed(1);
    (0..n).map(|_| sample_uniform(&mut rng, &area())).collect()
}

fn crowd_density() -> PopulationGrid {
    let grid = Grid::square(area(), 12).unwrap();
    let mut rng = rng_from_seed(2);
    PopulationGrid::from_positions(&grid, (0..156).map(|_| sample_uniform(&mut rng, &area())))
        .unwrap()
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_step");
    let density = crowd_density();
    for &n in &[39usize, 117, 390] {
        let prev = prev_positions(n);
        let mut random = RandomGenerator::new(area()).unwrap();
        let mut mn = MnGenerator::new(area(), 120.0).unwrap();
        let mut mln = MlnGenerator::new(area(), 120.0).unwrap();
        group.bench_with_input(BenchmarkId::new("random", n), &prev, |b, prev| {
            let mut rng = rng_from_seed(3);
            b.iter(|| random.step(&mut rng, prev, &NoDensity));
        });
        group.bench_with_input(BenchmarkId::new("mn", n), &prev, |b, prev| {
            let mut rng = rng_from_seed(3);
            b.iter(|| mn.step(&mut rng, prev, &NoDensity));
        });
        group.bench_with_input(BenchmarkId::new("mln", n), &prev, |b, prev| {
            let mut rng = rng_from_seed(3);
            b.iter(|| mln.step(&mut rng, prev, &density));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
