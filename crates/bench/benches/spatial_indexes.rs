//! Criterion micro-benchmarks of the spatial index substrate: k-NN and
//! range queries on the grid index, quadtree and k-d tree vs brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dummyloc_geo::rng::{rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_index::{BruteForce, GridIndex, KdTree, PointIndex, QuadTree};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn points(n: usize) -> Vec<(Point, usize)> {
    let mut rng = rng_from_seed(1);
    (0..n)
        .map(|i| (sample_uniform(&mut rng, &area()), i))
        .collect()
}

fn queries(n: usize) -> Vec<Point> {
    let mut rng = rng_from_seed(2);
    (0..n).map(|_| sample_uniform(&mut rng, &area())).collect()
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_k5");
    let qs = queries(64);
    for &n in &[1_000usize, 10_000] {
        let pts = points(n);
        let kd = KdTree::bulk_build(pts.clone());
        let qt = QuadTree::bulk_build(area(), pts.clone()).unwrap();
        let gi = GridIndex::bulk_build(Grid::square(area(), 32).unwrap(), pts.clone()).unwrap();
        let bf = BruteForce::bulk_build(pts.clone());
        group.bench_with_input(BenchmarkId::new("kdtree", n), &kd, |b, ix| {
            b.iter(|| qs.iter().map(|&q| ix.k_nearest(q, 5).len()).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("quadtree", n), &qt, |b, ix| {
            b.iter(|| qs.iter().map(|&q| ix.k_nearest(q, 5).len()).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &gi, |b, ix| {
            b.iter(|| qs.iter().map(|&q| ix.k_nearest(q, 5).len()).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &bf, |b, ix| {
            b.iter(|| qs.iter().map(|&q| ix.k_nearest(q, 5).len()).sum::<usize>());
        });
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_100m");
    let pts = points(10_000);
    let kd = KdTree::bulk_build(pts.clone());
    let qt = QuadTree::bulk_build(area(), pts.clone()).unwrap();
    let gi = GridIndex::bulk_build(Grid::square(area(), 32).unwrap(), pts).unwrap();
    let boxes: Vec<BBox> = queries(64)
        .into_iter()
        .map(|q| BBox::centered(q, 100.0).unwrap())
        .collect();
    group.bench_function("kdtree", |b| {
        b.iter(|| boxes.iter().map(|q| kd.in_bbox(q).len()).sum::<usize>());
    });
    group.bench_function("quadtree", |b| {
        b.iter(|| boxes.iter().map(|q| qt.in_bbox(q).len()).sum::<usize>());
    });
    group.bench_function("grid", |b| {
        b.iter(|| boxes.iter().map(|q| gi.in_bbox(q).len()).sum::<usize>());
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_build_10k");
    let pts = points(10_000);
    group.bench_function("kdtree", |b| b.iter(|| KdTree::bulk_build(pts.clone())));
    group.bench_function("quadtree", |b| {
        b.iter(|| QuadTree::bulk_build(area(), pts.clone()).unwrap())
    });
    group.bench_function("grid", |b| {
        b.iter(|| GridIndex::bulk_build(Grid::square(area(), 32).unwrap(), pts.clone()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_knn, bench_range, bench_build);
criterion_main!(benches);
