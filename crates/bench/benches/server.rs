//! Criterion micro-benchmarks of the online service: frame codec cost and
//! full TCP round-trips against an in-process `dummyloc-server`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dummyloc_core::client::Request;
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::{PoiDatabase, QueryKind};
use dummyloc_server::client::ServiceClient;
use dummyloc_server::proto::ClientFrame;
use dummyloc_server::server::{spawn, ServerConfig};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

/// `k + 1` positions scattered deterministically over the area.
fn request(positions: usize) -> Request {
    Request {
        pseudonym: "bench".to_string(),
        positions: (0..positions)
            .map(|i| {
                let i = i as f64;
                Point::new((i * 733.0) % 1900.0 + 50.0, (i * 397.0) % 1900.0 + 50.0)
            })
            .collect(),
    }
}

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_frame_codec");
    for &n in &[4usize, 16, 64] {
        let frame = ClientFrame::Query {
            id: 7,
            t: 30.0,
            deadline_ms: None,
            request: request(n),
            query: QueryKind::NextBus,
        };
        let line = serde_json::to_string(&frame).unwrap();
        group.bench_with_input(BenchmarkId::new("encode", n), &frame, |b, frame| {
            b.iter(|| serde_json::to_string(frame).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &line, |b, line| {
            b.iter(|| serde_json::from_str::<ClientFrame>(line).unwrap());
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let handle = spawn(
        ServerConfig::default(),
        PoiDatabase::generate(area(), 200, 42),
    )
    .unwrap();
    let mut group = c.benchmark_group("server_roundtrip");
    for &n in &[1usize, 4, 16] {
        let request = request(n);
        group.bench_with_input(BenchmarkId::new("next_bus", n), &request, |b, request| {
            let mut client = ServiceClient::connect(handle.addr()).unwrap();
            let mut t = 0.0;
            b.iter(|| {
                t += 1.0;
                client.query(t, request, &QueryKind::NextBus).unwrap()
            });
            client.bye().unwrap();
        });
    }
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_frame_codec, bench_roundtrip);
criterion_main!(benches);
