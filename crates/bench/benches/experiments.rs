//! Criterion benchmarks of the experiment pipelines themselves — one per
//! reproduced artifact, on a reduced workload so `cargo bench` stays fast.
//! (The harness *binaries* regenerate the paper tables at full scale;
//! these benches track the cost of doing so.)

use criterion::{criterion_group, criterion_main, Criterion};
use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::experiments::{
    ablation_mln, ablation_radius, cost, fig2, fig7, fig8, table1, tracing,
};
use dummyloc_sim::workload;

fn small_fleet() -> dummyloc_trajectory::Dataset {
    workload::nara_fleet_sized(12, 300.0, 42)
}

fn bench_single_run(c: &mut Criterion) {
    let fleet = small_fleet();
    c.bench_function("sim_single_run_12users_300s", |b| {
        let config = SimConfig {
            grid_size: 12,
            dummy_count: 3,
            generator: GeneratorKind::Mn { m: 120.0 },
            ..SimConfig::nara_default(42)
        };
        let sim = Simulation::new(config).unwrap();
        b.iter(|| sim.run(&fleet).unwrap());
    });
}

fn bench_fig7(c: &mut Criterion) {
    let fleet = small_fleet();
    let params = fig7::Fig7Params {
        grids: vec![8, 12],
        dummy_counts: vec![0, 3, 6],
        ..fig7::Fig7Params::default()
    };
    c.bench_function("fig7_sweep_reduced", |b| {
        b.iter(|| fig7::run(42, &fleet, &params).unwrap());
    });
}

fn bench_fig8(c: &mut Criterion) {
    let fleet = small_fleet();
    c.bench_function("fig8_three_generators", |b| {
        b.iter(|| fig8::run(42, &fleet, &fig8::Fig8Params::default()).unwrap());
    });
}

fn bench_static_artifacts(c: &mut Criterion) {
    c.bench_function("table1_classification", |b| {
        b.iter(|| table1::run(&table1::Table1Params::default()).unwrap());
    });
    c.bench_function("fig2_examples", |b| {
        b.iter(|| fig2::run().unwrap());
    });
}

fn bench_tracing(c: &mut Criterion) {
    let fleet = small_fleet();
    c.bench_function("tracing_four_techniques", |b| {
        b.iter(|| tracing::run(42, &fleet, &tracing::TracingParams::default()).unwrap());
    });
}

fn bench_ablations(c: &mut Criterion) {
    let fleet = small_fleet();
    let radius_params = ablation_radius::RadiusParams {
        radii: vec![30.0, 120.0],
        include_disc: false,
        ..ablation_radius::RadiusParams::default()
    };
    c.bench_function("ablation_radius_reduced", |b| {
        b.iter(|| ablation_radius::run(42, &fleet, &radius_params).unwrap());
    });
    let mln_params = ablation_mln::MlnParams {
        budgets: vec![0, 3],
        ..ablation_mln::MlnParams::default()
    };
    c.bench_function("ablation_mln_reduced", |b| {
        b.iter(|| ablation_mln::run(42, &fleet, &mln_params).unwrap());
    });
    let cost_params = cost::CostParams {
        dummy_counts: vec![0, 3, 9],
        poi_count: 50,
        ..cost::CostParams::default()
    };
    c.bench_function("cost_sweep_reduced", |b| {
        b.iter(|| cost::run(42, &fleet, &cost_params).unwrap());
    });
}

criterion_group!(
    benches,
    bench_single_run,
    bench_fig7,
    bench_fig8,
    bench_static_artifacts,
    bench_tracing,
    bench_ablations
);
criterion_main!(benches);
