//! Criterion micro-benchmarks of the extension crate: Hungarian
//! assignment, optimal chain linking, and the session driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dummyloc_core::client::Request;
use dummyloc_core::generator::{DummyGenerator, MnGenerator};
use dummyloc_ext::hungarian::min_cost_assignment;
use dummyloc_ext::optimal_tracker::OptimalTracker;
use dummyloc_ext::session::{run, SessionConfig};
use dummyloc_geo::rng::{rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Point};
use dummyloc_sim::workload;
use rand::Rng;

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &n in &[4usize, 16, 64] {
        let mut rng = rng_from_seed(1);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| min_cost_assignment(cost));
        });
    }
    group.finish();
}

fn bench_chain_linking(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_chain_linking");
    // A stream of `rounds` requests with `k` candidates each.
    for &(k, rounds) in &[(4usize, 60usize), (10, 120)] {
        let mut rng = rng_from_seed(2);
        let stream: Vec<Request> = (0..rounds)
            .map(|_| Request {
                pseudonym: "p".into(),
                positions: (0..k).map(|_| sample_uniform(&mut rng, &area())).collect(),
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}x{rounds}")),
            &stream,
            |b, stream| {
                b.iter(|| OptimalTracker::build_chains(stream));
            },
        );
    }
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    let fleet = workload::nara_fleet_sized(12, 300.0, 42);
    c.bench_function("session_12users_300s_mn", |b| {
        let config = SessionConfig::nara_default(42);
        b.iter(|| {
            run(&fleet, &config, |_| {
                Box::new(MnGenerator::new(config.area, 120.0).unwrap()) as Box<dyn DummyGenerator>
            })
        });
    });
}

criterion_group!(benches, bench_hungarian, bench_chain_linking, bench_session);
criterion_main!(benches);
