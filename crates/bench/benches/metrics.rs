//! Criterion micro-benchmarks of the anonymity metrics: per-round
//! population counting, ubiquity F and Shift(P).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dummyloc_core::metrics::{shift_p, ubiquity_f};
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::rng::{rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Grid, Point};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn positions(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = rng_from_seed(seed);
    (0..n).map(|_| sample_uniform(&mut rng, &area())).collect()
}

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_grid");
    // One paper round: 39 users × (1 + 3 dummies) = 156 positions; larger
    // sizes probe scaling.
    for &n in &[156usize, 1_560, 15_600] {
        let pos = positions(n, 1);
        for &g in &[8u32, 12] {
            let grid = Grid::square(area(), g).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("build_{g}x{g}"), n),
                &pos,
                |b, pos| {
                    b.iter(|| PopulationGrid::from_positions(&grid, pos.iter().copied()).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    let grid = Grid::square(area(), 12).unwrap();
    let a = PopulationGrid::from_positions(&grid, positions(156, 1)).unwrap();
    let b2 = PopulationGrid::from_positions(&grid, positions(156, 2)).unwrap();
    group.bench_function("ubiquity_f_12x12", |b| b.iter(|| ubiquity_f(&a)));
    group.bench_function("shift_p_12x12", |b| b.iter(|| shift_p(&a, &b2)));
    group.finish();
}

criterion_group!(benches, bench_population, bench_metrics);
criterion_main!(benches);
