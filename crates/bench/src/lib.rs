//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary in this crate regenerates one paper artifact (see
//! `DESIGN.md` §4) and speaks the same tiny CLI:
//!
//! ```text
//! cargo run -p dummyloc-bench --bin fig7 -- [--seed N] [--json PATH] [--quick]
//! ```
//!
//! * `--seed N` — master seed (default 42; every run is deterministic),
//! * `--json PATH` — also write the structured result as JSON,
//! * `--quick` — a reduced workload for smoke runs (16 rickshaws, 10
//!   minutes instead of 39 over an hour),
//! * `--telemetry DIR` — where the run manifest lands (default
//!   `results/`; `--telemetry none` disables it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

use dummyloc_telemetry::{RunManifest, Telemetry};
use dummyloc_trajectory::Dataset;

/// Default master seed used by `EXPERIMENTS.md`.
pub const DEFAULT_SEED: u64 = 42;

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Master seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Reduced workload for smoke runs.
    pub quick: bool,
    /// Where run manifests are written; `None` disables them.
    pub telemetry: Option<PathBuf>,
    /// Worker threads for parallel measurements; `None` means the
    /// process default (available cores).
    pub threads: Option<usize>,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            seed: DEFAULT_SEED,
            json: None,
            quick: false,
            telemetry: Some(PathBuf::from("results")),
            threads: None,
        }
    }
}

/// Parses `std::env::args`; exits with a usage message on bad input.
pub fn parse_args() -> CliArgs {
    parse_from(std::env::args().skip(1))
}

/// Parses an explicit argument list (testable core of [`parse_args`]).
pub fn parse_from(args: impl IntoIterator<Item = String>) -> CliArgs {
    let mut out = CliArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                out.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"));
            }
            "--json" => {
                let v = it.next().unwrap_or_else(|| usage("--json needs a path"));
                out.json = Some(PathBuf::from(v));
            }
            "--quick" => out.quick = true,
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                out.threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage("--threads must be an integer")),
                );
            }
            "--telemetry" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--telemetry needs a directory (or 'none')"));
                out.telemetry = (v != "none").then(|| PathBuf::from(v));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    out
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: <bin> [--seed N] [--json PATH] [--quick] [--threads N] [--telemetry DIR|none]"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}

/// The workload a binary should use: the paper's full 39-rickshaw hour, or
/// the `--quick` reduction.
pub fn workload_for(args: &CliArgs) -> Dataset {
    if args.quick {
        dummyloc_sim::workload::nara_fleet_sized(16, 600.0, args.seed)
    } else {
        dummyloc_sim::workload::nara_fleet(args.seed)
    }
}

/// Prints the rendered table and writes the JSON sidecar if requested.
pub fn emit<T: serde::Serialize>(args: &CliArgs, rendered: &str, result: &T) {
    println!("{rendered}");
    if let Some(path) = &args.json {
        let json = dummyloc_sim::report::to_json(result)
            .unwrap_or_else(|e| panic!("serializing result: {e}"));
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

/// The whole body of a harness binary: parse args, build the workload,
/// resolve `name` in the full experiment registry (paper artifacts plus
/// extensions), run it, print the table and write the JSON sidecar.
///
/// Every `src/bin/*.rs` is a one-liner calling this, so the binaries can
/// never drift from what `dummyloc experiments run <name>` does.
pub fn run_named(name: &str) {
    let args = parse_args();
    let started = Instant::now();
    let report = run_named_with(name, &args);
    println!("{}", report.rendered);
    if let Some(path) = &args.json {
        std::fs::write(path, &report.json)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
    if let Some(dir) = &args.telemetry {
        match write_bench_manifest(name, &args, dir, started) {
            Ok(paths) => eprintln!("wrote {}", paths.manifest.display()),
            // A bench result must not be discarded over an unwritable
            // manifest directory (e.g. a read-only checkout).
            Err(e) => eprintln!("warning: telemetry manifest not written: {e}"),
        }
    }
}

/// Captures and writes the manifest of one named-experiment run into
/// `dir/<name>.manifest.json`.
fn write_bench_manifest(
    name: &str,
    args: &CliArgs,
    dir: &std::path::Path,
    started: Instant,
) -> std::io::Result<dummyloc_telemetry::RunPaths> {
    let t = Telemetry::new(16);
    t.registry.counter("bench.runs").inc();
    let manifest = RunManifest::capture(
        &format!("bench-{name}"),
        args.seed,
        &(name, args.quick),
        &t.registry,
        1,
        started.elapsed(),
    );
    t.write_run(dir, name, &manifest)
}

/// Testable core of [`run_named`]: resolves and runs, returning the report.
pub fn run_named_with(name: &str, args: &CliArgs) -> dummyloc_sim::experiments::ExperimentReport {
    let registry = dummyloc_ext::experiments::registry_with_extensions();
    let experiment = registry
        .get(name)
        .unwrap_or_else(|| panic!("experiment '{name}' is not in the registry"));
    let fleet = workload_for(args);
    experiment
        .run(args.seed, &fleet)
        .unwrap_or_else(|e| panic!("experiment '{name}' failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = parse_from(std::iter::empty());
        assert_eq!(a, CliArgs::default());
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse_from(
            [
                "--seed",
                "7",
                "--json",
                "/tmp/x.json",
                "--quick",
                "--threads",
                "4",
                "--telemetry",
                "/tmp/t",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(a.seed, 7);
        assert_eq!(a.json, Some(PathBuf::from("/tmp/x.json")));
        assert!(a.quick);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.telemetry, Some(PathBuf::from("/tmp/t")));
    }

    #[test]
    fn telemetry_none_disables_the_manifest() {
        let a = parse_from(["--telemetry", "none"].into_iter().map(String::from));
        assert_eq!(a.telemetry, None);
    }

    #[test]
    fn quick_workload_is_smaller() {
        let quick = workload_for(&CliArgs {
            quick: true,
            ..CliArgs::default()
        });
        assert_eq!(quick.len(), 16);
        assert_eq!(quick.common_time_range(), Some((0.0, 600.0)));
    }
}
