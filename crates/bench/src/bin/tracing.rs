//! Regenerates the Figure-4 / §3 traceability comparison of cloaking vs dummies.

fn main() {
    dummyloc_bench::run_named("tracing");
}
