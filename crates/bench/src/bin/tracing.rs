//! Regenerates the Figure-4/§3 traceability comparison: identification
//! rate of cloaking vs random/MN/MLN dummies under several adversaries.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::tracing;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = tracing::run(args.seed, &fleet, &tracing::TracingParams::default())
        .expect("tracing comparison failed");
    emit(&args, &tracing::render(&result), &result);
}
