//! Adversary sweep: the attack pipeline against MLN dummies.

fn main() {
    dummyloc_bench::run_named("attack-mln");
}
