//! Regenerates Table 1: ubiquity/congestion classification of the
//! Figure-3 example distributions.

use dummyloc_bench::{emit, parse_args};
use dummyloc_sim::experiments::table1;

fn main() {
    let args = parse_args();
    let result =
        table1::run(&table1::Table1Params::default()).expect("table-1 classification failed");
    emit(&args, &table1::render(&result), &result);
}
