//! Regenerates Table 1: ubiquity/congestion classification of the Figure-3 example distributions.

fn main() {
    dummyloc_bench::run_named("table1");
}
