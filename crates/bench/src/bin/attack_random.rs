//! Adversary sweep: the attack pipeline against teleporting random dummies.

fn main() {
    dummyloc_bench::run_named("attack-random");
}
