//! Regenerates Figure 7: ubiquity F (%) vs number of dummies for 8x8, 10x10 and 12x12 region grids.

fn main() {
    dummyloc_bench::run_named("fig7");
}
