//! Regenerates Figure 7: ubiquity F (%) vs number of dummies for 8x8,
//! 10x10 and 12x12 region grids.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::fig7;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let params = fig7::Fig7Params::default();
    let result = fig7::run(args.seed, &fleet, &params).expect("figure-7 sweep failed");
    emit(&args, &fig7::render(&result, &params), &result);
}
