//! Repo-level performance baseline, written to `BENCH_baseline.json`.
//!
//! Run via `scripts/bench.sh` (or directly with the offline patch flags).
//! One process measures the three hot paths the roadmap cares about:
//!
//! 1. the simulation engine (an enlarged Nara fleet → rounds per second,
//!    measured serially and through [`ParallelEngine`]; the two outcomes
//!    are asserted identical before either number is reported),
//! 2. the experiment harness (fig7/fig8 quick runs → wall seconds),
//! 3. the adversary pipeline (`attack` section: identification rate vs
//!    `k` for random/MN/MLN dummies plus wall time, with the headline
//!    ordering — random shredded, MN/MLN near chance — asserted before
//!    the numbers are written),
//! 4. the TCP service (in-process server + seeded loadgen → throughput
//!    and p50/p99/p99.9 latency), measured twice: without a WAL and with
//!    the observer WAL at `fsync=always`, so the durability tax is a
//!    first-class number in `BENCH_baseline.json` (`server` vs
//!    `server_wal`),
//! 5. the overload control plane (`server_overload` section: a paced
//!    open-loop sweep at ~0.5x/1x/2x nominal capacity with client
//!    retries off; goodput(2x) >= 0.7x goodput(1x), hints on every
//!    bounce, and accepted-requests == observer-log records are all
//!    asserted before the numbers are written).
//!
//! `--seed` fixes every workload; `--json PATH` overrides the output
//! path; `--threads N` sets the parallel-engine worker count (default:
//! available cores); `--telemetry DIR` (default `results/`) receives the
//! run manifest with the loadgen's `loadgen.*` counters embedded.

use std::path::PathBuf;
use std::time::Instant;

use dummyloc_sim::engine::{SimConfig, Simulation};
use dummyloc_sim::ParallelEngine;
use dummyloc_telemetry::{RunManifest, Telemetry};
use serde::Serialize;

/// Simulation-engine throughput, serial and parallel, over a workload
/// sized so the serial wall time is comfortably above timer resolution
/// (≥ 50 ms on the reference host).
#[derive(Serialize)]
struct SimBaseline {
    users: usize,
    rounds: usize,
    wall_secs: f64,
    rounds_per_sec: f64,
    threads: usize,
    parallel_wall_secs: f64,
    parallel_rounds_per_sec: f64,
    speedup: f64,
}

/// Wall time of one quick named-experiment run.
#[derive(Serialize)]
struct ExperimentBaseline {
    name: String,
    wall_secs: f64,
}

/// Service throughput and client-observed latency tail.
#[derive(Serialize)]
struct ServerBaseline {
    users: usize,
    rounds: usize,
    sent: u64,
    answered: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    retry_overhead_us: u64,
}

/// One point of the protocol-v4 batch sweep: the standard workload at a
/// fixed number of rounds bundled per request frame.
#[derive(Serialize)]
struct V4Point {
    batch: usize,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Protocol v4 (binary framing + batching) against the same workload and
/// server as the v3 `server` section. The headline `throughput_rps` is
/// the best sweep point; `speedup_vs_v3` divides it by the v3 JSON
/// lockstep rps measured in the same process.
#[derive(Serialize)]
struct V4Baseline {
    answered: u64,
    throughput_rps: f64,
    best_batch: usize,
    speedup_vs_v3: f64,
    sweep: Vec<V4Point>,
}

/// Durability tax of the observer WAL: the identical loadgen workload
/// against a server that appends and fsyncs every acknowledged record
/// (`FsyncPolicy::Always`, the strictest policy and the serve default),
/// reported next to the WAL-off `server` section.
#[derive(Serialize)]
struct WalBaseline {
    fsync: String,
    answered: u64,
    /// Records the WAL accepted — must equal `answered`, asserted before
    /// the number is reported.
    appended: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    /// WAL-off rps divided by WAL-on rps; above 1.0 is what durability
    /// costs in throughput.
    slowdown_vs_no_wal: f64,
}

/// Durability tax of the full store stack: the identical loadgen
/// workload against a server running the WAL *and* the log-structured
/// store (small flush threshold, so segment flushes and WAL truncations
/// happen mid-run), reported next to the WAL-only `server_wal` section.
#[derive(Serialize)]
struct StoreBaseline {
    flush_threshold_bytes: usize,
    answered: u64,
    /// Records the store accepted — must equal `answered`, asserted
    /// before the number is reported.
    appended: u64,
    /// Segment flushes (each one also truncated the WAL).
    flushes: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    /// WAL-only rps divided by WAL+store rps; above 1.0 is what the
    /// store costs on top of the WAL.
    slowdown_vs_wal_only: f64,
}

/// One point of the overload sweep: the paced open-loop loadgen offering
/// a fixed multiple of the server's nominal capacity.
#[derive(Serialize)]
struct OverloadPoint {
    /// Offered load as a multiple of nominal capacity.
    offered_x: f64,
    /// Offered queries per second (the pacing schedule).
    offered_rps: f64,
    sent: u64,
    answered: u64,
    /// Rounds the paced loop gave up on (bounced with retries off).
    dropped: u64,
    /// Answered queries per wall second — the number that must survive
    /// saturation.
    goodput_rps: f64,
    /// Server-side rejects split by cause.
    rejects_admission: u64,
    rejects_shed: u64,
    rejects_queue_full: u64,
    /// Bounces that carried a server `retry_after_ms` hint.
    hinted_bounces: u64,
    p50_us: u64,
    p99_us: u64,
}

/// The overload control plane's headline claim as a regression-pinned
/// number: a deadline-aware, shedding server keeps its goodput when
/// offered twice its capacity instead of collapsing. The sweep drives
/// the same paced open-loop workload at ~0.5x / 1x / 2x nominal
/// capacity (workers / worker_delay) with client retries off, so every
/// bounce is visible. Asserted before the numbers are written:
/// goodput at 2x stays >= 0.7x the goodput at 1x, overload actually
/// occurred at 2x, every bounce carried a backpressure hint, and every
/// accepted request landed in the merged observer log.
#[derive(Serialize)]
struct OverloadBaseline {
    workers: usize,
    worker_delay_ms: u64,
    queue_depth: usize,
    deadline_ms: u64,
    /// Nominal capacity in queries per second: `workers / worker_delay`.
    capacity_rps: f64,
    /// `goodput(2x) / goodput(1x)` — the anti-collapse ratio.
    goodput_2x_over_1x: f64,
    points: Vec<OverloadPoint>,
}

/// Background size-tiered compaction racing a hot appender: one thread
/// appends and flushes segments while a compactor thread runs the same
/// plan → merge → commit cycle the server's background compactor uses.
/// Digest invariance against an in-memory oracle and convergence of the
/// segment count to the tier policy are both asserted before any number
/// is reported.
#[derive(Serialize)]
struct StoreCompactionBaseline {
    records: u64,
    compact_tiers: usize,
    /// Segment flushes the appender performed.
    flushes: u64,
    /// Tiered merges the concurrent compactor committed.
    compactions: u64,
    /// Input segments consumed across all merges.
    segments_in: u64,
    /// Bytes written into merged segments.
    bytes_merged: u64,
    /// Segments left once no tier is full anymore.
    final_segments: u64,
    wall_secs: f64,
}

/// One point of the cold-start comparison: recovering one history from
/// a full WAL replay versus opening the store's manifest. The store's
/// whole point is that `store_open_ms` stays flat while `wal_replay_ms`
/// grows with history length.
#[derive(Serialize)]
struct StoreRecoveryPoint {
    records: u64,
    wal_bytes: u64,
    wal_replay_ms: f64,
    store_open_ms: f64,
    /// `wal_replay_ms / store_open_ms`.
    speedup: f64,
}

/// One `k` of the adversary sweep: the full attack pipeline (consistency
/// filters + Viterbi decoding) against each dummy algorithm.
#[derive(Serialize)]
struct AttackPoint {
    k: usize,
    /// The `1/(k+1)` chance floor.
    chance: f64,
    /// Pipeline identification rate against teleporting random dummies.
    random_rate: f64,
    /// Pipeline identification rate against MN dummies.
    mn_rate: f64,
    /// Pipeline identification rate against MLN dummies.
    mln_rate: f64,
}

/// The adversary subsystem's headline result as a regression-pinned
/// number: random dummies are shredded while MN/MLN hold the pipeline
/// near the chance floor. Both claims are asserted before the numbers
/// are reported.
#[derive(Serialize)]
struct AttackBaseline {
    users: usize,
    wall_secs: f64,
    points: Vec<AttackPoint>,
}

/// The whole `BENCH_baseline.json` document.
#[derive(Serialize)]
struct Baseline {
    seed: u64,
    sim: SimBaseline,
    experiments: Vec<ExperimentBaseline>,
    attack: AttackBaseline,
    server: ServerBaseline,
    server_v4: V4Baseline,
    server_wal: WalBaseline,
    server_store: StoreBaseline,
    server_overload: OverloadBaseline,
    store_compaction: StoreCompactionBaseline,
    store_recovery: Vec<StoreRecoveryPoint>,
}

fn measure_sim(seed: u64, threads: Option<usize>, quick: bool) -> SimBaseline {
    // The old 16-user/10-minute workload finished in ~0.2 ms, so
    // `wall_secs` was dominated by timer noise. Size the fleet so the
    // serial pass takes ≥ 50 ms on the reference host.
    let (users, duration) = if quick { (64, 1800.0) } else { (512, 7200.0) };
    let fleet = dummyloc_sim::workload::nara_fleet_sized(users, duration, seed);

    let sim = Simulation::new(SimConfig::nara_default(seed)).expect("sim config");
    let started = Instant::now();
    let serial = sim.run(&fleet).expect("serial simulation run");
    let wall_secs = started.elapsed().as_secs_f64();

    let config = SimConfig::nara_default(seed);
    let engine = match threads {
        Some(n) => ParallelEngine::new(config, n),
        None => ParallelEngine::with_default_threads(config),
    }
    .expect("parallel sim config");
    let started = Instant::now();
    let parallel = engine.run(&fleet).expect("parallel simulation run");
    let parallel_wall_secs = started.elapsed().as_secs_f64();

    // The headline determinism claim, enforced where the numbers are
    // produced: the parallel engine must reproduce the serial outcome
    // bit for bit before either throughput figure is reported.
    assert_eq!(serial.rounds, parallel.rounds, "round count diverged");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&serial.f_series),
        bits(&parallel.f_series),
        "parallel f-series diverged from serial"
    );

    SimBaseline {
        users: fleet.len(),
        rounds: serial.rounds,
        wall_secs,
        rounds_per_sec: serial.rounds as f64 / wall_secs.max(1e-9),
        threads: engine.threads(),
        parallel_wall_secs,
        parallel_rounds_per_sec: parallel.rounds as f64 / parallel_wall_secs.max(1e-9),
        speedup: wall_secs / parallel_wall_secs.max(1e-9),
    }
}

fn measure_experiment(name: &str, seed: u64) -> ExperimentBaseline {
    let args = dummyloc_bench::CliArgs {
        seed,
        quick: true,
        ..dummyloc_bench::CliArgs::default()
    };
    let started = Instant::now();
    let _ = dummyloc_bench::run_named_with(name, &args);
    ExperimentBaseline {
        name: name.to_string(),
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

fn measure_attack(seed: u64, quick: bool) -> AttackBaseline {
    use dummyloc_attack::experiments::{attack_sweep, GeneratorKind};
    let (users, duration) = if quick { (8, 600.0) } else { (24, 1800.0) };
    let fleet = dummyloc_sim::workload::nara_fleet_sized(users, duration, seed);
    let started = Instant::now();
    let random = attack_sweep(seed, &fleet, GeneratorKind::Random);
    let mn = attack_sweep(seed, &fleet, GeneratorKind::Mn);
    let mln = attack_sweep(seed, &fleet, GeneratorKind::Mln);
    let wall_secs = started.elapsed().as_secs_f64();

    let points: Vec<AttackPoint> = random
        .rows
        .iter()
        .zip(&mn.rows)
        .zip(&mln.rows)
        .map(|((r, mn), mln)| {
            assert_eq!(r.k, mn.k);
            assert_eq!(r.k, mln.k);
            AttackPoint {
                k: r.k,
                chance: r.chance,
                random_rate: r.pipeline_rate,
                mn_rate: mn.pipeline_rate,
                mln_rate: mln.pipeline_rate,
            }
        })
        .collect();

    // The subsystem's reason to exist, enforced where the numbers are
    // produced: the pipeline shreds inconsistent dummies but stays near
    // the chance floor against the paper's schemes.
    for p in &points {
        assert!(
            p.random_rate >= 0.75,
            "pipeline should identify random dummies at k={} (got {})",
            p.k,
            p.random_rate
        );
        if p.k >= 3 {
            assert!(
                p.mn_rate <= p.chance + 0.3 && p.mln_rate <= p.chance + 0.3,
                "MN/MLN should pin the pipeline near chance at k={} (got {}/{} vs {})",
                p.k,
                p.mn_rate,
                p.mln_rate,
                p.chance
            );
        }
    }

    AttackBaseline {
        users: fleet.len(),
        wall_secs,
        points,
    }
}

/// Spawns a server (with or without a WAL), drives the standard bench
/// loadgen against it, and returns the report plus the server's final
/// stats snapshot.
fn run_server_loadgen(
    seed: u64,
    telemetry: Option<&Telemetry>,
    wal: Option<dummyloc_server::WalConfig>,
    store: Option<dummyloc_server::LogStoreConfig>,
    proto: dummyloc_server::ProtoVersion,
    batch: usize,
) -> (
    dummyloc_server::LoadgenReport,
    dummyloc_server::StatsSnapshot,
) {
    let area = dummyloc_geo::BBox::new(
        dummyloc_geo::Point::new(0.0, 0.0),
        dummyloc_geo::Point::new(2000.0, 2000.0),
    )
    .expect("service area");
    let pois = dummyloc_lbs::PoiDatabase::generate(area, 200, 42);
    let config = dummyloc_server::ServeOptions::new()
        .wal(wal)
        .store(store)
        .build()
        .expect("server config");
    let handle = dummyloc_server::spawn(config, pois).expect("server spawn");
    let config = dummyloc_server::LoadgenConfig {
        addr: handle.addr().to_string(),
        users: 8,
        rounds: 25,
        seed,
        proto,
        batch,
        ..dummyloc_server::LoadgenConfig::default()
    };
    let report =
        dummyloc_server::loadgen::run_instrumented(&config, telemetry).expect("loadgen run");
    let stats = handle.stats();
    handle.shutdown();
    (report, stats)
}

fn measure_server(seed: u64, telemetry: &Telemetry) -> ServerBaseline {
    // Pinned to v3 JSON lockstep so the `server`/`server_wal`/
    // `server_store` trio stays comparable with baselines recorded
    // before protocol v4 existed.
    let (report, _) = run_server_loadgen(
        seed,
        Some(telemetry),
        None,
        None,
        dummyloc_server::ProtoVersion::V3Json,
        1,
    );
    ServerBaseline {
        users: report.users,
        rounds: report.rounds,
        sent: report.sent,
        answered: report.answered,
        throughput_rps: report.throughput_rps,
        p50_us: report.latency.p50_us,
        p99_us: report.latency.p99_us,
        p999_us: report.latency.p999_us,
        retry_overhead_us: report.retry_overhead_us,
    }
}

fn measure_server_v4(seed: u64, v3_rps: f64) -> V4Baseline {
    // Identical workload to the v3 `server` section (8 users x 25
    // rounds, no WAL), swept over how many rounds each user bundles per
    // binary Batch frame. batch=1 isolates the framing win; batch=25
    // (a whole user's run in one frame) isolates the round-trip win.
    let mut sweep = Vec::new();
    let mut answered = 0;
    for batch in [1usize, 8, 25] {
        let (report, _) = run_server_loadgen(
            seed,
            None,
            None,
            None,
            dummyloc_server::ProtoVersion::V4Binary,
            batch,
        );
        answered = report.answered;
        sweep.push(V4Point {
            batch,
            throughput_rps: report.throughput_rps,
            p50_us: report.latency.p50_us,
            p99_us: report.latency.p99_us,
        });
    }
    let (best_rps, best_batch) = sweep
        .iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .map(|p| (p.throughput_rps, p.batch))
        .expect("non-empty sweep");
    V4Baseline {
        answered,
        throughput_rps: best_rps,
        best_batch,
        speedup_vs_v3: best_rps / v3_rps.max(1e-9),
        sweep,
    }
}

fn measure_server_wal(seed: u64, no_wal_rps: f64) -> WalBaseline {
    let dir = std::env::temp_dir().join(format!("dummyloc-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench WAL scratch dir");
    let path = dir.join("baseline.wal");
    let wal = dummyloc_server::WalConfig {
        fsync: dummyloc_server::FsyncPolicy::Always,
        ..dummyloc_server::WalConfig::new(path.clone())
    };
    let (report, stats) = run_server_loadgen(
        seed,
        None,
        Some(wal),
        None,
        dummyloc_server::ProtoVersion::V3Json,
        1,
    );
    let _ = std::fs::remove_dir_all(&dir);
    // Every acknowledged query must have hit the log before its Answer
    // frame — otherwise the "durability tax" below measured nothing.
    assert_eq!(
        stats.wal.appended, report.answered,
        "WAL appends diverged from acknowledged queries"
    );
    WalBaseline {
        fsync: "always".to_string(),
        answered: report.answered,
        appended: stats.wal.appended,
        throughput_rps: report.throughput_rps,
        p50_us: report.latency.p50_us,
        p99_us: report.latency.p99_us,
        slowdown_vs_no_wal: no_wal_rps / report.throughput_rps.max(1e-9),
    }
}

fn measure_server_store(seed: u64, wal_only_rps: f64) -> StoreBaseline {
    let dir = std::env::temp_dir().join(format!("dummyloc-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench store scratch dir");
    let wal = dummyloc_server::WalConfig {
        fsync: dummyloc_server::FsyncPolicy::Always,
        ..dummyloc_server::WalConfig::new(dir.join("baseline.wal"))
    };
    // 8 KiB is a few dozen records: the loadgen run crosses the threshold
    // repeatedly, so the measured path includes real segment flushes and
    // WAL truncations, not just memtable appends.
    let flush_threshold_bytes = 8 * 1024;
    let store = dummyloc_server::LogStoreConfig {
        flush_threshold_bytes,
        ..dummyloc_server::LogStoreConfig::new(dir.join("store"))
    };
    let (report, stats) = run_server_loadgen(
        seed,
        None,
        Some(wal),
        Some(store),
        dummyloc_server::ProtoVersion::V3Json,
        1,
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        stats.store.appended, report.answered,
        "store appends diverged from acknowledged queries"
    );
    assert!(
        stats.store.flushes > 0,
        "the small threshold must flush mid-run"
    );
    StoreBaseline {
        flush_threshold_bytes,
        answered: report.answered,
        appended: stats.store.appended,
        flushes: stats.store.flushes,
        throughput_rps: report.throughput_rps,
        p50_us: report.latency.p50_us,
        p99_us: report.latency.p99_us,
        slowdown_vs_wal_only: wal_only_rps / report.throughput_rps.max(1e-9),
    }
}

fn measure_server_overload(seed: u64) -> OverloadBaseline {
    // A deliberately small server so the sweep saturates it quickly: two
    // workers at 4 ms per job give a nominal capacity of 500 qps. The
    // admission/CoDel defaults stay on — they are what is being measured.
    let workers = 2usize;
    let worker_delay_ms = 4u64;
    let queue_depth = 16usize;
    let deadline_ms = 50u64;
    let capacity_rps = workers as f64 / (worker_delay_ms as f64 / 1e3);

    let area = dummyloc_geo::BBox::new(
        dummyloc_geo::Point::new(0.0, 0.0),
        dummyloc_geo::Point::new(2000.0, 2000.0),
    )
    .expect("service area");

    // Retries off: a bounced round is dropped and counted, never resent,
    // so offered load stays exactly on schedule and goodput is honest.
    let no_retry = dummyloc_server::RetryPolicy {
        max_attempts: 1,
        ..dummyloc_server::RetryPolicy::default()
    };

    // More connections than queue slots, each a blocking lockstep user:
    // only then can the paced schedule put the server genuinely past its
    // queue, instead of the clients self-throttling (closed-loop style)
    // below the overload point.
    let users = 48usize;
    let secs_per_point = 1.5f64;
    let mut points = Vec::new();
    for offered_x in [0.5f64, 1.0, 2.0] {
        let offered_rps = capacity_rps * offered_x;
        let rounds = ((offered_rps * secs_per_point) / users as f64).ceil() as usize;
        let pois = dummyloc_lbs::PoiDatabase::generate(area, 200, 42);
        let handle = dummyloc_server::spawn(
            dummyloc_server::ServeOptions::new()
                .workers(workers)
                .queue_depth(queue_depth)
                .worker_delay(Some(std::time::Duration::from_millis(worker_delay_ms)))
                .build()
                .expect("overload server config"),
            pois,
        )
        .expect("overload server spawn");
        let config = dummyloc_server::LoadgenOptions::new()
            .addr(handle.addr().to_string())
            .users(users)
            .rounds(rounds)
            .seed(seed)
            .retry(no_retry.clone())
            .deadline_ms(Some(deadline_ms))
            .rate(Some(offered_rps))
            .build()
            .expect("overload loadgen config");
        let report = dummyloc_server::loadgen::run(&config).expect("overload loadgen run");
        let shutdown = handle.shutdown();
        let stats = &shutdown.stats;

        // The accounting that makes the sweep trustworthy: the server
        // accepted exactly what the client saw answered, and every one
        // of those accepted requests landed in the merged observer log.
        assert_eq!(
            stats.requests, report.answered,
            "accepted requests diverged from answered queries at {offered_x}x"
        );
        assert_eq!(
            shutdown.log.storage().len(),
            stats.requests,
            "an accepted request is missing from the observer log at {offered_x}x"
        );
        // Backpressure is only useful if it says when to come back:
        // every bounce the client saw must have carried a hint.
        assert_eq!(
            report.hinted_bounces,
            report.overloaded + report.busy_bounces,
            "a bounce without a retry_after_ms hint at {offered_x}x"
        );

        points.push(OverloadPoint {
            offered_x,
            offered_rps,
            sent: report.sent,
            answered: report.answered,
            dropped: report.round_errors,
            goodput_rps: report.throughput_rps,
            rejects_admission: stats.rejections.admission,
            rejects_shed: stats.rejections.shed,
            rejects_queue_full: stats.rejections.queue_full,
            hinted_bounces: report.hinted_bounces,
            p50_us: report.latency.p50_us,
            p99_us: report.latency.p99_us,
        });
    }

    let goodput_at = |x: f64| {
        points
            .iter()
            .find(|p| p.offered_x == x)
            .map(|p| p.goodput_rps)
            .expect("sweep point")
    };
    let goodput_2x_over_1x = goodput_at(2.0) / goodput_at(1.0).max(1e-9);
    // The anti-collapse claim, enforced where the number is produced: a
    // server offered twice its capacity must keep at least 70% of the
    // goodput it had at the saturation point, not fall off a cliff.
    assert!(
        goodput_2x_over_1x >= 0.7,
        "goodput collapsed under 2x overload: {:.0} rps at 2x vs {:.0} rps at 1x",
        goodput_at(2.0),
        goodput_at(1.0)
    );
    let at_2x = points.last().expect("sweep ran");
    assert!(
        at_2x.dropped > 0
            || at_2x.rejects_admission + at_2x.rejects_shed + at_2x.rejects_queue_full > 0,
        "the 2x point never overloaded the server — the sweep measured nothing"
    );

    OverloadBaseline {
        workers,
        worker_delay_ms,
        queue_depth,
        deadline_ms,
        capacity_rps,
        goodput_2x_over_1x,
        points,
    }
}

/// Cold-start recovery at three history lengths: a full-WAL replay into
/// the in-memory backend versus opening a fully-flushed store (manifest
/// read only — no record payload is touched).
fn measure_store_recovery(seed: u64) -> Vec<StoreRecoveryPoint> {
    use dummyloc_store::Storage as _;
    let dir = std::env::temp_dir().join(format!("dummyloc-bench-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench recovery scratch dir");

    let mut points = Vec::new();
    for (i, records) in [1_000u64, 4_000, 16_000].into_iter().enumerate() {
        let area = dummyloc_geo::BBox::new(
            dummyloc_geo::Point::new(0.0, 0.0),
            dummyloc_geo::Point::new(2000.0, 2000.0),
        )
        .expect("service area");
        let mut rng =
            dummyloc_geo::rng::rng_from_seed(dummyloc_geo::rng::derive_seed(seed, i as u64));
        let history: Vec<dummyloc_server::wal::WalRecord> = (0..records)
            .map(|k| dummyloc_server::wal::WalRecord {
                t: k as f64 * 30.0,
                seq: k,
                request_id: Some(k),
                request: dummyloc_core::client::Request {
                    pseudonym: format!("user-{}", k % 64),
                    positions: (0..3)
                        .map(|_| dummyloc_geo::rng::sample_uniform(&mut rng, &area))
                        .collect(),
                },
            })
            .collect();

        let wal_path = dir.join(format!("history-{records}.wal"));
        let mut writer = dummyloc_server::wal::WalWriter::open(&dummyloc_server::WalConfig {
            fsync: dummyloc_server::FsyncPolicy::Os,
            ..dummyloc_server::WalConfig::new(wal_path.clone())
        })
        .expect("bench WAL");
        for r in &history {
            writer.append(r).expect("bench WAL append");
        }
        drop(writer);
        let wal_bytes = std::fs::metadata(&wal_path)
            .expect("bench WAL metadata")
            .len();

        // Build the store image the server would have at the same point:
        // everything flushed, WAL truncated (so the replay side carries
        // the full history and the store side carries none of it).
        let store_dir = dir.join(format!("store-{records}"));
        let config = dummyloc_server::LogStoreConfig::new(&store_dir);
        let (mut store, _) = dummyloc_store::LogStore::open(config.clone()).expect("bench store");
        for r in &history {
            store
                .append(dummyloc_store::StoreRecord {
                    t: r.t,
                    seq: r.seq,
                    request_id: r.request_id,
                    request: r.request.clone(),
                })
                .expect("bench store append");
        }
        store.flush().expect("bench store flush");
        drop(store);

        let started = Instant::now();
        let mut replayed = dummyloc_store::MemoryBackend::default();
        dummyloc_server::wal::replay(&wal_path, |r| {
            replayed
                .append(dummyloc_store::StoreRecord {
                    t: r.t,
                    seq: r.seq,
                    request_id: r.request_id,
                    request: r.request,
                })
                .expect("bench replay append");
        })
        .expect("bench WAL replay");
        let wal_replay_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let (reopened, _) = dummyloc_store::LogStore::open(config).expect("bench store reopen");
        let store_open_ms = started.elapsed().as_secs_f64() * 1e3;

        // The two recoveries must agree before either time is reported.
        assert_eq!(
            reopened.stream_digests(),
            replayed.stream_digests(),
            "store recovery diverged from WAL replay at {records} records"
        );
        points.push(StoreRecoveryPoint {
            records,
            wal_bytes,
            wal_replay_ms,
            store_open_ms,
            speedup: wal_replay_ms / store_open_ms.max(1e-9),
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    points
}

fn measure_store_compaction(seed: u64) -> StoreCompactionBaseline {
    use dummyloc_store::Storage as _;
    let dir = std::env::temp_dir().join(format!("dummyloc-bench-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let compact_tiers = 4usize;
    let records = 8_000u64;
    let config = dummyloc_store::LogStoreConfig {
        flush_threshold_bytes: 2048,
        compact_tiers,
        ..dummyloc_store::LogStoreConfig::new(dir.join("store"))
    };
    let (store, _) = dummyloc_store::LogStore::open(config).expect("bench compaction store");
    let store = std::sync::Arc::new(std::sync::Mutex::new(store));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    let started = Instant::now();
    let compactor = {
        let store = std::sync::Arc::clone(&store);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut runs = 0u64;
            let mut segments_in = 0u64;
            let mut bytes = 0u64;
            loop {
                // Same split-phase shape as the server's background
                // compactor: plan under the lock, merge I/O without it,
                // commit the manifest swap under it again.
                let plan = store.lock().unwrap().tiered_plan();
                let Some(plan) = plan else {
                    if stop.load(std::sync::atomic::Ordering::SeqCst) {
                        return (runs, segments_in, bytes);
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                };
                let inputs = plan.inputs() as u64;
                let merged = plan.merge().expect("bench merge");
                if let Some(out) = store
                    .lock()
                    .unwrap()
                    .commit_tiered(merged)
                    .expect("bench commit")
                {
                    runs += 1;
                    segments_in += inputs;
                    bytes += out.bytes;
                }
            }
        })
    };

    let area = dummyloc_geo::BBox::new(
        dummyloc_geo::Point::new(0.0, 0.0),
        dummyloc_geo::Point::new(2000.0, 2000.0),
    )
    .expect("service area");
    let mut rng = dummyloc_geo::rng::rng_from_seed(dummyloc_geo::rng::derive_seed(seed, 77));
    let mut oracle = dummyloc_store::MemoryBackend::default();
    for k in 0..records {
        let record = dummyloc_store::StoreRecord {
            t: k as f64 * 30.0,
            seq: k,
            request_id: Some(k),
            request: dummyloc_core::client::Request {
                pseudonym: format!("user-{}", k % 32),
                positions: (0..3)
                    .map(|_| dummyloc_geo::rng::sample_uniform(&mut rng, &area))
                    .collect(),
            },
        };
        oracle.append(record.clone()).expect("oracle append");
        store.lock().unwrap().append(record).expect("bench append");
    }
    store.lock().unwrap().flush().expect("bench final flush");
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let (compactions, segments_in, bytes_merged) = compactor.join().expect("compactor join");
    let wall_secs = started.elapsed().as_secs_f64();

    let mut store = std::sync::Arc::try_unwrap(store)
        .expect("compactor joined")
        .into_inner()
        .unwrap();
    // Convergence: the compactor drained every full tier before exiting.
    assert!(
        store.tiered_plan().is_none(),
        "a full tier survived the drain"
    );
    assert!(compactions > 0, "the concurrent compactor never ran");
    // The headline invariant: racing merges changed nothing observable.
    assert_eq!(
        store.stream_digests(),
        oracle.stream_digests(),
        "concurrent tiered compaction diverged from the in-memory oracle"
    );
    let stats = store.store_stats();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    StoreCompactionBaseline {
        records,
        compact_tiers,
        flushes: stats.flushes,
        compactions,
        segments_in,
        bytes_merged,
        final_segments: stats.segments,
        wall_secs,
    }
}

fn main() {
    let args = dummyloc_bench::parse_args();
    let out_path = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_baseline.json"));

    let telemetry = Telemetry::new(256);
    let started = Instant::now();
    let server = measure_server(args.seed, &telemetry);
    let server_v4 = measure_server_v4(args.seed, server.throughput_rps);
    let server_wal = measure_server_wal(args.seed, server.throughput_rps);
    let server_store = measure_server_store(args.seed, server_wal.throughput_rps);
    let server_overload = measure_server_overload(args.seed);
    let baseline = Baseline {
        seed: args.seed,
        sim: measure_sim(args.seed, args.threads, args.quick),
        experiments: vec![
            measure_experiment("fig7", args.seed),
            measure_experiment("fig8", args.seed),
        ],
        attack: measure_attack(args.seed, args.quick),
        server,
        server_v4,
        server_wal,
        server_store,
        server_overload,
        store_compaction: measure_store_compaction(args.seed),
        store_recovery: measure_store_recovery(args.seed),
    };

    let json = dummyloc_sim::report::to_json(&baseline).expect("serializing baseline");
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!(
        "baseline: sim {:.0} rounds/s serial, {:.0} rounds/s on {} thread(s) ({:.2}x), server {:.0} rps (p50 {}us, p99 {}us, p99.9 {}us)",
        baseline.sim.rounds_per_sec,
        baseline.sim.parallel_rounds_per_sec,
        baseline.sim.threads,
        baseline.sim.speedup,
        baseline.server.throughput_rps,
        baseline.server.p50_us,
        baseline.server.p99_us,
        baseline.server.p999_us,
    );
    println!(
        "baseline: attack ({} users, {:.1}s) {}",
        baseline.attack.users,
        baseline.attack.wall_secs,
        baseline
            .attack
            .points
            .iter()
            .map(|p| format!(
                "k={}: random {:.2}, mn {:.2}, mln {:.2} (chance {:.2})",
                p.k, p.random_rate, p.mn_rate, p.mln_rate, p.chance
            ))
            .collect::<Vec<_>>()
            .join("; "),
    );
    println!(
        "baseline: v4(binary) {:.0} rps at batch={} ({:.2}x vs v3 json); sweep {}",
        baseline.server_v4.throughput_rps,
        baseline.server_v4.best_batch,
        baseline.server_v4.speedup_vs_v3,
        baseline
            .server_v4
            .sweep
            .iter()
            .map(|p| format!("b{}={:.0}rps", p.batch, p.throughput_rps))
            .collect::<Vec<_>>()
            .join(", "),
    );
    println!(
        "baseline: wal(fsync=always) {:.0} rps (p50 {}us, p99 {}us), {:.2}x slower than no-WAL",
        baseline.server_wal.throughput_rps,
        baseline.server_wal.p50_us,
        baseline.server_wal.p99_us,
        baseline.server_wal.slowdown_vs_no_wal,
    );
    println!(
        "baseline: wal+store {:.0} rps ({} flushes, {:.2}x vs WAL-only)",
        baseline.server_store.throughput_rps,
        baseline.server_store.flushes,
        baseline.server_store.slowdown_vs_wal_only,
    );
    println!(
        "baseline: overload ({} workers @ {}ms -> {:.0} qps nominal): {}; goodput(2x)/goodput(1x) = {:.2}",
        baseline.server_overload.workers,
        baseline.server_overload.worker_delay_ms,
        baseline.server_overload.capacity_rps,
        baseline
            .server_overload
            .points
            .iter()
            .map(|p| format!(
                "{}x: {:.0} rps goodput, {} dropped, {} shed",
                p.offered_x,
                p.goodput_rps,
                p.dropped,
                p.rejects_admission + p.rejects_shed + p.rejects_queue_full
            ))
            .collect::<Vec<_>>()
            .join("; "),
        baseline.server_overload.goodput_2x_over_1x,
    );
    println!(
        "baseline: tiered compaction under fire: {} records, {} flushes -> {} merges \
         ({} segments in, {} bytes), {} segments left, {:.2}s",
        baseline.store_compaction.records,
        baseline.store_compaction.flushes,
        baseline.store_compaction.compactions,
        baseline.store_compaction.segments_in,
        baseline.store_compaction.bytes_merged,
        baseline.store_compaction.final_segments,
        baseline.store_compaction.wall_secs,
    );
    for p in &baseline.store_recovery {
        println!(
            "baseline: cold start @ {} records: wal replay {:.1} ms, store open {:.1} ms ({:.0}x)",
            p.records, p.wal_replay_ms, p.store_open_ms, p.speedup,
        );
    }
    eprintln!("wrote {}", out_path.display());

    if let Some(dir) = &args.telemetry {
        let manifest = RunManifest::capture(
            "bench-baseline",
            args.seed,
            &args.seed,
            &telemetry.registry,
            baseline.server.answered,
            started.elapsed(),
        );
        match telemetry.write_run(dir, "baseline", &manifest) {
            Ok(paths) => eprintln!("wrote {}", paths.manifest.display()),
            Err(e) => eprintln!("warning: telemetry manifest not written: {e}"),
        }
    }
}
