//! Extension X2: pseudonym-change mix zones layered on dummy generation.

fn main() {
    dummyloc_bench::run_named("mix-zones");
}
