//! Extension X2: pseudonym rotation / mix-zone linkability — how often an
//! observer re-links request streams across a pseudonym change.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_ext::experiments::{mix_zones, render_mix_zones};

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = mix_zones(args.seed, &fleet);
    emit(&args, &render_mix_zones(&result), &result);
}
