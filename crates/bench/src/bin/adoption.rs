//! Extension X4: partial adoption — what a lone adopter gets, and what
//! everyone gets from other people's dummies.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_ext::experiments::{adoption, render_adoption};

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = adoption(args.seed, &fleet);
    emit(&args, &render_adoption(&result), &result);
}
