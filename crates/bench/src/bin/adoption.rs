//! Extension X4: partial-adoption anonymity — crowd privacy as adoption rate varies.

fn main() {
    dummyloc_bench::run_named("adoption");
}
