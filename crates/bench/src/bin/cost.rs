//! Ablation A3: bandwidth & provider work vs dummy count.

fn main() {
    dummyloc_bench::run_named("cost");
}
