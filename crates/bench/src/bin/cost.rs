//! Ablation A3: per-request bandwidth and provider work vs dummy count.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::cost;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result =
        cost::run(args.seed, &fleet, &cost::CostParams::default()).expect("cost sweep failed");
    emit(&args, &cost::render(&result), &result);
}
