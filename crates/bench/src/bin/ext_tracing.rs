//! Extension X1: strongest-observer tracing — greedy vs optimal linking
//! plus graded belief metrics, across all dummy algorithms including
//! street-constrained dummies.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_ext::experiments::{ext_tracing, render_ext_tracing};

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = ext_tracing(args.seed, &fleet);
    emit(&args, &render_ext_tracing(&result), &result);
}
