//! Extension X1: strongest-observer tracing — greedy vs optimal linking plus graded belief metrics, across all dummy algorithms including street-constrained dummies.

fn main() {
    dummyloc_bench::run_named("ext-tracing");
}
