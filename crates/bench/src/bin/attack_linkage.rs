//! Adversary sweep: cross-pseudonym linkage across rotation boundaries.

fn main() {
    dummyloc_bench::run_named("attack-linkage");
}
