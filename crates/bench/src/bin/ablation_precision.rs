//! Ablation A4: wire precision — quantize reports to region centers.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::ablation_precision;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = ablation_precision::run(
        args.seed,
        &fleet,
        &ablation_precision::PrecisionParams::default(),
    )
    .expect("precision ablation failed");
    emit(&args, &ablation_precision::render(&result), &result);
}
