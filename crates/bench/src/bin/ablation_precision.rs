//! Ablation A4: wire-precision (quantization) sweep.

fn main() {
    dummyloc_bench::run_named("ablation-precision");
}
