//! Ablation A2: MLN retry budget / threshold sweep.

fn main() {
    dummyloc_bench::run_named("ablation-mln");
}
