//! Ablation A2: MLN retry budget and density threshold.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::ablation_mln;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = ablation_mln::run(args.seed, &fleet, &ablation_mln::MlnParams::default())
        .expect("mln ablation failed");
    emit(&args, &ablation_mln::render(&result), &result);
}
