//! Regenerates Figure 8: Shift(P) distribution for Random / MN / MLN.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::fig8;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = fig8::run(args.seed, &fleet, &fig8::Fig8Params::default())
        .expect("figure-8 comparison failed");
    emit(&args, &fig8::render(&result), &result);
}
