//! Regenerates Figure 8: Shift(P) bucket distribution for Random / MN / MLN.

fn main() {
    dummyloc_bench::run_named("fig8");
}
