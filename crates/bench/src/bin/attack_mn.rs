//! Adversary sweep: the attack pipeline against MN dummies.

fn main() {
    dummyloc_bench::run_named("attack-mn");
}
