//! Extension X3: dummy realism under a map-matching observer.

fn main() {
    dummyloc_bench::run_named("realism");
}
