//! Extension X3: motion-distribution realism of every dummy algorithm vs
//! the true fleet.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_ext::experiments::{realism, render_realism};

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = realism(args.seed, &fleet);
    emit(&args, &render_realism(&result), &result);
}
