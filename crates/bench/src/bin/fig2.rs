//! Regenerates Figure 2: the Anonymity-Set worked examples.

use dummyloc_bench::{emit, parse_args};
use dummyloc_sim::experiments::fig2;

fn main() {
    let args = parse_args();
    let result = fig2::run().expect("figure-2 examples failed");
    emit(&args, &fig2::render(&result), &result);
}
