//! Regenerates Figure 2: AS_F / AS_P worked anonymity-set examples.

fn main() {
    dummyloc_bench::run_named("fig2");
}
