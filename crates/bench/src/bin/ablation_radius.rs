//! Ablation A1: MN neighborhood half-extent m.

use dummyloc_bench::{emit, parse_args, workload_for};
use dummyloc_sim::experiments::ablation_radius;

fn main() {
    let args = parse_args();
    let fleet = workload_for(&args);
    let result = ablation_radius::run(args.seed, &fleet, &ablation_radius::RadiusParams::default())
        .expect("radius ablation failed");
    emit(&args, &ablation_radius::render(&result), &result);
}
