//! Ablation A1: neighborhood radius m sweep.

fn main() {
    dummyloc_bench::run_named("ablation-radius");
}
