//! Validated builders for the serve and loadgen entry points.
//!
//! CLI parsing and tests used to assemble `ServerConfig`/`LoadgenConfig`
//! structs field by field, each duplicating the same bounds checks (or
//! forgetting them). [`ServeOptions`] and [`LoadgenOptions`] are the one
//! shared front door: every setter is chainable, nothing is validated
//! until [`ServeOptions::build`]/[`LoadgenOptions::build`], and a bad knob
//! comes back as a typed [`ServerError::Config`] naming the offending
//! flag instead of a half-started server.

use std::time::Duration;

use dummyloc_lbs::query::QueryKind;

use crate::client::RetryPolicy;
use crate::codec::ProtoVersion;
use crate::error::Result;
use crate::fault::FaultPlan;
use crate::loadgen::{GeneratorChoice, LoadgenConfig};
use crate::server::ServerConfig;
use crate::wal::WalConfig;
use dummyloc_store::LogStoreConfig;

/// Chainable, validated builder for a [`ServerConfig`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    config: ServerConfig,
}

impl ServeOptions {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind address (`host:port`; port 0 lets the OS pick).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Worker threads answering queries.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Observer-log shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Bounded job-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Per-frame size cap in bytes.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.config.max_frame_bytes = bytes;
        self
    }

    /// Queries one connection may send before being cut off.
    pub fn max_requests_per_conn(mut self, max: u64) -> Self {
        self.config.max_requests_per_conn = max;
        self
    }

    /// Concurrent-connection cap (`Busy` past it).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.config.max_connections = max;
        self
    }

    /// Reap connections idle this long; `None` never reaps.
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.idle_timeout = timeout;
        self
    }

    /// Deadline for queries that carry none of their own.
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.default_deadline = deadline;
        self
    }

    /// Fault-injection plan for the outbound path.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Test hook: artificial per-job service time.
    pub fn worker_delay(mut self, delay: Option<Duration>) -> Self {
        self.config.worker_delay = delay;
        self
    }

    /// Observer write-ahead log (replayed at startup, appended to while
    /// serving). `None` keeps the observer log memory-only.
    pub fn wal(mut self, wal: Option<WalConfig>) -> Self {
        self.config.wal = wal;
        self
    }

    /// Durable observer store (recovered at startup, appended to while
    /// serving; each flush truncates the WAL). `None` leaves durability
    /// to the WAL alone.
    pub fn store(mut self, store: Option<LogStoreConfig>) -> Self {
        self.config.store = store;
        self
    }

    /// Test hook: panic the worker serving this pseudonym.
    pub fn panic_pseudonym(mut self, pseudonym: Option<String>) -> Self {
        self.config.panic_pseudonym = pseudonym;
        self
    }

    /// Newest protocol version the server will negotiate down from.
    /// [`ProtoVersion::V3Json`] pins a JSON-only server (binary openings
    /// are turned away with a typed version mismatch).
    pub fn max_proto(mut self, proto: ProtoVersion) -> Self {
        self.config.max_proto = proto;
        self
    }

    /// Deadline-aware admission control: reject a query at enqueue when
    /// the predicted queue wait already exceeds its deadline budget.
    /// On by default; it only ever fires for queries that *have* a
    /// deadline and after at least one answer has warmed the
    /// service-time estimate.
    pub fn admission(mut self, on: bool) -> Self {
        self.config.admission = on;
        self
    }

    /// Queue-aging (CoDel-style) sojourn target: a queued job older than
    /// this is shed with a hinted `Overloaded` instead of being computed.
    /// `None` (the default) disables shedding; `Some(0)` is rejected at
    /// build time.
    pub fn codel_target(mut self, target: Option<Duration>) -> Self {
        self.config.codel_target = target;
        self
    }

    /// Validates every knob and returns the finished configuration.
    pub fn build(self) -> Result<ServerConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Chainable, validated builder for a [`LoadgenConfig`].
#[derive(Debug, Clone, Default)]
pub struct LoadgenOptions {
    config: LoadgenConfig,
}

impl LoadgenOptions {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Server address (`host:port`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Concurrent simulated users.
    pub fn users(mut self, users: usize) -> Self {
        self.config.users = users;
        self
    }

    /// Service rounds per user.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.config.rounds = rounds;
        self
    }

    /// Dummies per request (`k`).
    pub fn dummy_count(mut self, k: usize) -> Self {
        self.config.dummy_count = k;
        self
    }

    /// Dummy-motion algorithm.
    pub fn generator(mut self, generator: GeneratorChoice) -> Self {
        self.config.generator = generator;
        self
    }

    /// MN/MLN neighborhood half-extent in metres.
    pub fn neighborhood_m(mut self, m: f64) -> Self {
        self.config.m = m;
        self
    }

    /// Simulated seconds between rounds.
    pub fn tick(mut self, tick: f64) -> Self {
        self.config.tick = tick;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The query every user issues each round.
    pub fn query(mut self, query: QueryKind) -> Self {
        self.config.query = query;
        self
    }

    /// Per-user retry behavior.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Per-query server-side deadline in milliseconds.
    pub fn deadline_ms(mut self, deadline_ms: Option<u64>) -> Self {
        self.config.deadline_ms = deadline_ms;
        self
    }

    /// Protocol version each user dials with (v4 falls back to v3 when
    /// the server refuses the binary handshake).
    pub fn proto(mut self, proto: ProtoVersion) -> Self {
        self.config.proto = proto;
        self
    }

    /// Rounds bundled per request (1 = classic lockstep).
    pub fn batch(mut self, batch: usize) -> Self {
        self.config.batch = batch;
        self
    }

    /// Open-loop pacing: total offered queries per second across all
    /// users. `None` (the default) is the classic closed loop. Requires
    /// `batch == 1`.
    pub fn rate(mut self, rate: Option<f64>) -> Self {
        self.config.rate = rate;
        self
    }

    /// Validates every knob and returns the finished configuration.
    pub fn build(self) -> Result<LoadgenConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServerError;

    #[test]
    fn serve_options_build_and_validate() {
        let cfg = ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(2)
            .shards(4)
            .queue_depth(64)
            .max_connections(16)
            .idle_timeout(Some(Duration::from_millis(500)))
            .default_deadline(Some(Duration::from_millis(250)))
            .wal(Some(WalConfig::new("/tmp/does-not-matter.wal")))
            .build()
            .unwrap();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.max_connections, 16);
        assert_eq!(cfg.idle_timeout, Some(Duration::from_millis(500)));

        let bad_store = LogStoreConfig {
            flush_threshold_bytes: 0,
            ..LogStoreConfig::new("/tmp/does-not-matter-store")
        };
        assert!(ServeOptions::new().store(Some(bad_store)).build().is_err());
        let ok_store = ServeOptions::new()
            .store(Some(LogStoreConfig::new("/tmp/does-not-matter-store")))
            .build()
            .unwrap();
        assert!(ok_store.store.is_some());

        let bad_wal = WalConfig {
            fsync: crate::wal::FsyncPolicy::EveryN(0),
            ..WalConfig::new("/tmp/x.wal")
        };
        assert!(ServeOptions::new().wal(Some(bad_wal)).build().is_err());
        let err = ServeOptions::new().workers(0).build().unwrap_err();
        assert!(matches!(err, ServerError::Config { .. }), "{err}");
        let bad_plan = FaultPlan {
            drop: 2.0,
            ..FaultPlan::none()
        };
        assert!(ServeOptions::new().faults(bad_plan).build().is_err());
    }

    #[test]
    fn loadgen_options_build_and_validate() {
        let cfg = LoadgenOptions::new()
            .users(4)
            .rounds(10)
            .dummy_count(3)
            .seed(9)
            .deadline_ms(Some(500))
            .retry(RetryPolicy::default())
            .proto(ProtoVersion::V3Json)
            .batch(5)
            .build()
            .unwrap();
        assert_eq!(cfg.users, 4);
        assert_eq!(cfg.deadline_ms, Some(500));
        assert_eq!(cfg.proto, ProtoVersion::V3Json);
        assert_eq!(cfg.batch, 5);

        assert!(LoadgenOptions::new().users(0).build().is_err());
        assert!(LoadgenOptions::new().batch(0).build().is_err());
        let bad = RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        };
        assert!(LoadgenOptions::new().retry(bad).build().is_err());
    }

    #[test]
    fn overload_knobs_validate() {
        // Admission is on by default and can be switched off.
        let cfg = ServeOptions::new().build().unwrap();
        assert!(cfg.admission);
        let cfg = ServeOptions::new().admission(false).build().unwrap();
        assert!(!cfg.admission);
        // A sojourn target must be positive; zero would shed everything.
        let cfg = ServeOptions::new()
            .codel_target(Some(Duration::from_millis(20)))
            .build()
            .unwrap();
        assert_eq!(cfg.codel_target, Some(Duration::from_millis(20)));
        assert!(ServeOptions::new()
            .codel_target(Some(Duration::ZERO))
            .build()
            .is_err());
        // An offered rate must be positive and paces single rounds only.
        let cfg = LoadgenOptions::new().rate(Some(250.0)).build().unwrap();
        assert_eq!(cfg.rate, Some(250.0));
        assert!(LoadgenOptions::new().rate(Some(0.0)).build().is_err());
        assert!(LoadgenOptions::new().rate(Some(f64::NAN)).build().is_err());
        assert!(LoadgenOptions::new()
            .rate(Some(100.0))
            .batch(4)
            .build()
            .is_err());
        // Breaker knobs ride the retry policy.
        let bad = RetryPolicy {
            breaker_threshold: 2,
            breaker_open_ms: 0,
            ..Default::default()
        };
        assert!(LoadgenOptions::new().retry(bad).build().is_err());
    }
}
