//! N-way sharded observer log.
//!
//! Worker threads append to the shard owning the request's pseudonym, so
//! writes for different users rarely contend; analysis folds the shards
//! back into one [`ObserverLog`] with [`ObserverLog::absorb`]. Requests
//! from one pseudonym always land in the same shard, which keeps each
//! per-pseudonym stream time-ordered as long as one user's requests are
//! serialized (true for one connection: its frames are parsed in order).

use dummyloc_core::client::Request;
use dummyloc_lbs::provider::ObserverLog;
use parking_lot::RwLock;

/// Stable FNV-1a shard assignment for a pseudonym.
pub fn shard_index(pseudonym: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in pseudonym.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// The server's write-side observer state.
#[derive(Debug)]
pub struct ShardedLog {
    shards: Vec<RwLock<ObserverLog>>,
}

impl ShardedLog {
    /// Creates `shards` independent logs (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedLog {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(ObserverLog::default()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records one request under its pseudonym's shard, taking ownership
    /// (no clone on the hot path).
    pub fn record_owned(&self, t: f64, request: Request) {
        let i = shard_index(&request.pseudonym, self.shards.len());
        self.shards[i].write().record_owned(t, request);
    }

    /// Total requests across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether nothing has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Folds every shard into one log — the honest-but-curious provider's
    /// complete view, ready for the adversaries in `dummyloc-core`.
    pub fn merged(&self) -> ObserverLog {
        let mut out = ObserverLog::default();
        for shard in &self.shards {
            out.absorb(shard.read().clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    fn req(pseudonym: &str, x: f64) -> Request {
        Request {
            pseudonym: pseudonym.into(),
            positions: vec![Point::new(x, x)],
        }
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1, 2, 8, 13] {
            for name in ["a", "user-17", "長い仮名"] {
                let i = shard_index(name, shards);
                assert!(i < shards);
                assert_eq!(i, shard_index(name, shards));
            }
        }
    }

    #[test]
    fn merged_log_sees_every_sharded_record() {
        let log = ShardedLog::new(4);
        for k in 0..40 {
            log.record_owned(k as f64, req(&format!("u{}", k % 10), k as f64));
        }
        assert_eq!(log.len(), 40);
        assert!(!log.is_empty());
        let merged = log.merged();
        assert_eq!(merged.len(), 40);
        assert_eq!(merged.pseudonyms().len(), 10);
        for u in 0..10 {
            let stream = merged.stream(&format!("u{u}")).unwrap();
            assert_eq!(stream.len(), 4);
            // Per-pseudonym time order survives the shard merge.
            let times = stream.times();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let log = ShardedLog::new(8);
        std::thread::scope(|s| {
            for w in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for k in 0..100 {
                        log.record_owned(k as f64, req(&format!("w{w}-u{}", k % 5), 1.0));
                    }
                });
            }
        });
        assert_eq!(log.len(), 400);
        assert_eq!(log.merged().pseudonyms().len(), 20);
    }
}
