//! N-way sharded observer log.
//!
//! Worker threads append to the shard owning the request's pseudonym, so
//! writes for different users rarely contend; analysis folds the shards
//! back into one [`ObserverLog`] with [`ObserverLog::absorb`]. Requests
//! from one pseudonym always land in the same shard, which keeps each
//! per-pseudonym stream time-ordered as long as one user's requests are
//! serialized (true for one connection: its frames are parsed in order).

use std::sync::atomic::{AtomicU64, Ordering};

use dummyloc_core::client::Request;
use dummyloc_lbs::provider::ObserverLog;
use parking_lot::RwLock;

/// Stable FNV-1a shard assignment for a pseudonym.
pub fn shard_index(pseudonym: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in pseudonym.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// The server's write-side observer state.
///
/// A single global arrival counter stamps every record with a sequence
/// number, so folding the shards back together reconstructs the exact
/// arrival order even when two shards logged the same timestamp.
#[derive(Debug)]
pub struct ShardedLog {
    shards: Vec<RwLock<ObserverLog>>,
    next_seq: AtomicU64,
}

impl ShardedLog {
    /// Creates `shards` independent logs (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedLog {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(ObserverLog::default()))
                .collect(),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records one request under its pseudonym's shard, taking ownership
    /// (no clone on the hot path).
    pub fn record_owned(&self, t: f64, request: Request) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let i = shard_index(&request.pseudonym, self.shards.len());
        self.shards[i].write().record_full(t, seq, None, request);
    }

    /// Records one request at most once per `(pseudonym, request_id)` pair.
    /// Returns `false` (recording nothing) when that id was already seen —
    /// this is how a retried query stays a single observer-log entry.
    pub fn record_unique(&self, t: f64, request_id: u64, request: Request) -> bool {
        self.record_unique_seq(t, request_id, request).is_some()
    }

    /// [`ShardedLog::record_unique`] returning the sequence stamp of a
    /// freshly recorded request — what the WAL persists so replay
    /// reconstructs the exact arrival order.
    pub fn record_unique_seq(&self, t: f64, request_id: u64, request: Request) -> Option<u64> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let i = shard_index(&request.pseudonym, self.shards.len());
        self.shards[i]
            .write()
            .record_full(t, seq, Some(request_id), request)
            .then_some(seq)
    }

    /// Re-applies one record restored from the WAL: same shard, same
    /// sequence stamp, same idempotency key as the original recording, so
    /// the rebuilt log is byte-identical to the pre-crash one. Advances
    /// the arrival counter past `seq` so post-replay traffic continues
    /// the sequence instead of colliding with it.
    pub fn replay(&self, t: f64, seq: u64, request_id: Option<u64>, request: Request) -> bool {
        let i = shard_index(&request.pseudonym, self.shards.len());
        let recorded = self.shards[i]
            .write()
            .record_full(t, seq, request_id, request);
        self.next_seq.fetch_max(seq + 1, Ordering::Relaxed);
        recorded
    }

    /// Marks `ids` of `pseudonym` as already recorded without adding any
    /// records — how durable-store recovery restores idempotency: the
    /// store holds the historical records, the live log only needs to
    /// refuse their retries.
    pub fn preload_stream(&self, pseudonym: &str, ids: &[u64]) {
        let i = shard_index(pseudonym, self.shards.len());
        self.shards[i]
            .write()
            .preload_seen(pseudonym, ids.iter().copied());
    }

    /// Moves the arrival counter to at least `next`, so traffic after a
    /// durable-store recovery continues the global sequence instead of
    /// re-issuing stamps the store already holds.
    pub fn advance_seq(&self, next: u64) {
        self.next_seq.fetch_max(next, Ordering::Relaxed);
    }

    /// Total requests across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether nothing has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Folds every shard into one log — the honest-but-curious provider's
    /// complete view, ready for the adversaries in `dummyloc-core`.
    pub fn merged(&self) -> ObserverLog {
        let mut out = ObserverLog::default();
        for shard in &self.shards {
            out.absorb(shard.read().clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    fn req(pseudonym: &str, x: f64) -> Request {
        Request {
            pseudonym: pseudonym.into(),
            positions: vec![Point::new(x, x)],
        }
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1, 2, 8, 13] {
            for name in ["a", "user-17", "長い仮名"] {
                let i = shard_index(name, shards);
                assert!(i < shards);
                assert_eq!(i, shard_index(name, shards));
            }
        }
    }

    #[test]
    fn merged_log_sees_every_sharded_record() {
        let log = ShardedLog::new(4);
        for k in 0..40 {
            log.record_owned(k as f64, req(&format!("u{}", k % 10), k as f64));
        }
        assert_eq!(log.len(), 40);
        assert!(!log.is_empty());
        let merged = log.merged();
        assert_eq!(merged.len(), 40);
        assert_eq!(merged.pseudonyms().len(), 10);
        for u in 0..10 {
            let stream = merged.stream(&format!("u{u}")).unwrap();
            assert_eq!(stream.len(), 4);
            // Per-pseudonym time order survives the shard merge.
            let times = stream.times();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn record_unique_skips_duplicate_request_ids() {
        let log = ShardedLog::new(4);
        assert!(log.record_unique(1.0, 7, req("u1", 1.0)));
        assert!(!log.record_unique(2.0, 7, req("u1", 2.0))); // retry of id 7
        assert!(log.record_unique(3.0, 8, req("u1", 3.0)));
        assert!(log.record_unique(4.0, 7, req("u2", 4.0))); // ids scoped per pseudonym
        assert_eq!(log.len(), 3);
        let merged = log.merged();
        assert_eq!(merged.stream("u1").unwrap().times(), &[1.0, 3.0]);
    }

    #[test]
    fn equal_timestamps_merge_in_arrival_order() {
        // Ten pseudonyms spread over 4 shards, all at t = 0: the merged
        // per-shard fold must reproduce global arrival order via the
        // sequence stamps, not shard iteration order.
        let log = ShardedLog::new(4);
        for k in 0..10 {
            log.record_owned(0.0, req("shared", k as f64));
        }
        let merged = log.merged();
        let stream = merged.stream("shared").unwrap();
        let xs: Vec<f64> = stream.requests().iter().map(|r| r.positions[0].x).collect();
        assert_eq!(xs, (0..10).map(|k| k as f64).collect::<Vec<_>>());
    }

    #[test]
    fn replay_reproduces_the_exact_log() {
        let log = ShardedLog::new(4);
        let mut wal: Vec<(f64, u64, Option<u64>, Request)> = Vec::new();
        for k in 0..30u64 {
            let r = req(&format!("u{}", k % 5), k as f64);
            if let Some(seq) = log.record_unique_seq(k as f64, k, r.clone()) {
                wal.push((k as f64, seq, Some(k), r));
            }
        }
        // A different shard count must not matter: the merge keys on the
        // sequence stamps, not shard layout.
        let rebuilt = ShardedLog::new(7);
        for (t, seq, id, r) in wal {
            assert!(rebuilt.replay(t, seq, id, r));
        }
        assert_eq!(
            log.merged().stream_digests(),
            rebuilt.merged().stream_digests()
        );
        // Replay advanced the arrival counter: new traffic extends the
        // sequence instead of colliding with restored stamps.
        assert!(rebuilt.record_unique(99.0, 999, req("u0", 9.0)));
        let merged = rebuilt.merged();
        let stream = merged.stream("u0").unwrap();
        assert_eq!(stream.times().last(), Some(&99.0));
    }

    #[test]
    fn preload_and_advance_restore_recovery_state() {
        // The durable-store recovery path: ids become duplicate-refusing
        // without any records, and new stamps continue past the durable
        // sequence.
        let log = ShardedLog::new(4);
        log.preload_stream("u1", &[7, 8]);
        log.advance_seq(100);
        assert!(log.is_empty());
        assert!(!log.record_unique(1.0, 7, req("u1", 1.0))); // replay of durable id
        assert_eq!(
            log.record_unique_seq(2.0, 9, req("u1", 2.0)),
            Some(101) // seq 100 was burned by the deduped attempt above
        );
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let log = ShardedLog::new(8);
        std::thread::scope(|s| {
            for w in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for k in 0..100 {
                        log.record_owned(k as f64, req(&format!("w{w}-u{}", k % 5), 1.0));
                    }
                });
            }
        });
        assert_eq!(log.len(), 400);
        assert_eq!(log.merged().pseudonyms().len(), 20);
    }
}
