//! Append-only write-ahead log for observer-log mutations.
//!
//! Every committed observer record — one per `(pseudonym, request id)`
//! pair the server actually logged — is appended here *before* the
//! `Answer` frame leaves the server, so a `kill -9` can never lose a
//! query the client saw acknowledged. Each record is length-prefixed and
//! checksummed:
//!
//! ```text
//! [u32 payload-len LE][u64 FNV-1a(payload) LE][payload JSON]
//! ```
//!
//! On startup the server replays the log through
//! [`ShardedLog::replay`](crate::shard::ShardedLog::replay), restoring
//! the exact sequence stamps and idempotency keys, so the rebuilt
//! [`ObserverLog`](dummyloc_lbs::provider::ObserverLog) is byte-identical
//! to the pre-crash one (verifiable via per-pseudonym stream digests). A
//! torn final record — the telltale of a crash mid-append — is truncated
//! away and counted; replay never panics and never drops a record whose
//! bytes were fully committed.

//!
//! Under [`FsyncPolicy::Always`] appends use *group commit*: the append
//! itself only writes the bytes and returns a [`WalTicket`]; durability
//! is reached in [`WalTicket::wait`], where one waiter (the *leader*)
//! issues a single `fsync` covering every record appended before it and
//! wakes the rest. Concurrent workers therefore pay one disk flush per
//! batch window instead of one per record — the difference between the
//! `server_wal` slowdown ratio and 1.0.

use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dummyloc_core::client::Request;
use dummyloc_store::vfs::{real_vfs, RealVfs, Vfs, VfsFile};
use serde::{Deserialize, Serialize};

/// Largest payload replay will attempt to read. A corrupted length
/// prefix must not make recovery allocate gigabytes.
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Bytes of framing before each payload: `u32` length + `u64` checksum.
const HEADER_BYTES: usize = 12;

/// When appended records are flushed to the disk platter, trading
/// durability against append latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged query survives power
    /// loss, not just process death.
    Always,
    /// `fsync` after every `n` records: bounded loss window under power
    /// failure, still zero loss on process crash.
    EveryN(u64),
    /// Never `fsync` explicitly; the OS page cache decides. Survives
    /// `kill -9` (the page cache belongs to the kernel) but not power
    /// loss.
    Os,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "os" => Ok(FsyncPolicy::Os),
            other => {
                if let Some(n) = other.strip_prefix("every-") {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("bad fsync interval in {other:?}"))?;
                    if n == 0 {
                        return Err("fsync interval must be at least 1".to_string());
                    }
                    return Ok(FsyncPolicy::EveryN(n));
                }
                Err(format!(
                    "unknown fsync policy {other:?} (expected always, every-N or os)"
                ))
            }
        }
    }
}

/// Where and how durably the observer WAL is written.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Log file; created if absent, replayed then appended to if present.
    pub path: PathBuf,
    /// Flush policy for appended records.
    pub fsync: FsyncPolicy,
    /// Filesystem every WAL syscall is routed through (the real one by
    /// default; fault suites substitute `FaultVfs`).
    pub vfs: Arc<dyn Vfs>,
}

// Equality compares what the config *asks for* (path + policy), not
// which filesystem object carries it out.
impl PartialEq for WalConfig {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path && self.fsync == other.fsync
    }
}

impl Eq for WalConfig {}

impl WalConfig {
    /// A WAL at `path` with the [`FsyncPolicy::Always`] safety default on
    /// the real filesystem.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalConfig {
            path: path.into(),
            fsync: FsyncPolicy::Always,
            vfs: real_vfs(),
        }
    }
}

/// One committed observer-log mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Service time of the round.
    pub t: f64,
    /// Global arrival sequence stamped by the sharded log.
    pub seq: u64,
    /// The query's idempotency key, when it had one.
    pub request_id: Option<u64>,
    /// The recorded message: pseudonym plus all `k+1` positions.
    pub request: Request,
}

/// FNV-1a over one encoded payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializes one record into its on-disk framing.
pub fn encode_record(record: &WalRecord) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_vec(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "wal record exceeds the size cap",
        ));
    }
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    Ok(buf)
}

/// What [`replay`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Intact records handed to the callback.
    pub records: u64,
    /// Whether a torn/corrupt tail was found (and truncated away).
    pub torn: bool,
    /// Bytes removed by the truncation.
    pub truncated_bytes: u64,
}

/// Decodes every intact record of `bytes`, returning the records and the
/// offset where decoding stopped (equal to `bytes.len()` iff the log is
/// clean). Never panics, whatever the input.
pub fn decode_all(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER_BYTES {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(
            bytes[offset + 4..offset + HEADER_BYTES]
                .try_into()
                .expect("8"),
        );
        if len > MAX_RECORD_BYTES {
            break;
        }
        let start = offset + HEADER_BYTES;
        let Some(end) = start.checked_add(len as usize) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if fnv1a(payload) != checksum {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<WalRecord>(text) else {
            break;
        };
        records.push(record);
        offset = end;
    }
    (records, offset)
}

/// [`replay_vfs`] on the real filesystem.
pub fn replay<F: FnMut(WalRecord)>(path: &Path, apply: F) -> io::Result<ReplaySummary> {
    replay_vfs(&RealVfs, path, apply)
}

/// Reads `path` through `vfs` (a missing file is an empty log), applies
/// every intact record in order, and truncates any torn tail in place so
/// the next append continues from a clean end-of-log. Runs before the
/// [`WalWriter`] exists, so the tail truncation cannot race a commit
/// group — the *writer's* own [`WalWriter::truncate`] is the one that
/// must (and does) go through the shared append handle.
pub fn replay_vfs<F: FnMut(WalRecord)>(
    vfs: &dyn Vfs,
    path: &Path,
    mut apply: F,
) -> io::Result<ReplaySummary> {
    let bytes = match vfs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(ReplaySummary::default());
        }
        Err(e) => return Err(e),
    };
    let (records, clean_end) = decode_all(&bytes);
    let summary = ReplaySummary {
        records: records.len() as u64,
        torn: clean_end < bytes.len(),
        truncated_bytes: (bytes.len() - clean_end) as u64,
    };
    if summary.torn {
        let f = vfs.open_write(path)?;
        f.set_len(clean_end as u64)?;
        f.sync_all()?;
    }
    for record in records {
        apply(record);
    }
    Ok(summary)
}

/// The group-commit rendezvous shared by a writer and its tickets.
///
/// `durable` is the count of appended records known to be on the platter;
/// `syncing` is true while some leader holds the `fsync` baton. `appended`
/// mirrors the writer's append count so a leader can mark *everything
/// written before its flush* durable, not just its own record.
#[derive(Debug)]
struct GroupSync {
    state: Mutex<GroupState>,
    cond: Condvar,
    appended: AtomicU64,
}

#[derive(Debug)]
struct GroupState {
    durable: u64,
    syncing: bool,
}

impl GroupSync {
    fn new() -> Self {
        GroupSync {
            state: Mutex::new(GroupState {
                durable: 0,
                syncing: false,
            }),
            cond: Condvar::new(),
            appended: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GroupState> {
        // A poisoned lock only means some thread panicked while holding
        // it; the counters it protects are always internally consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks every record appended so far durable (after a direct
    /// `sync_data`/truncate outside the ticket path).
    fn mark_all_durable(&self) {
        let mut state = self.lock();
        let frontier = self.appended.load(Ordering::Acquire);
        state.durable = state.durable.max(frontier);
        drop(state);
        self.cond.notify_all();
    }
}

/// A claim ticket for one appended record's durability. Returned by
/// [`WalWriter::append_group`]; the record is on the platter only after
/// [`WalTicket::wait`] returns `Ok`.
#[derive(Debug)]
pub struct WalTicket {
    /// Appended-record count this ticket needs the durable frontier to
    /// reach.
    target: u64,
    /// The rendezvous, present only when the policy requires a flush
    /// before acknowledging ([`FsyncPolicy::Always`]).
    sync: Option<(Arc<GroupSync>, Arc<dyn VfsFile>)>,
}

impl WalTicket {
    /// Blocks until this ticket's record is durable. Returns `Ok(true)`
    /// iff this call was the *leader* — the waiter that actually issued
    /// the `fsync` (one per commit group; feeds the sync counter).
    pub fn wait(&self) -> io::Result<bool> {
        let Some((group, file)) = &self.sync else {
            return Ok(false);
        };
        let mut led = false;
        let mut state = group.lock();
        loop {
            if state.durable >= self.target {
                return Ok(led);
            }
            if !state.syncing {
                // Become the leader: snapshot the append frontier, flush
                // outside the lock, then advance durable past everything
                // the flush covered and wake the group.
                state.syncing = true;
                let frontier = group.appended.load(Ordering::Acquire);
                drop(state);
                let flushed = file.sync_data();
                state = group.lock();
                state.syncing = false;
                group.cond.notify_all();
                match flushed {
                    Ok(()) => {
                        state.durable = state.durable.max(frontier);
                        led = true;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                state = group.cond.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// The append side of the log. One writer exists per server; appends are
/// serialized by the caller (the server's durability lock), while the
/// fsync rendezvous in [`WalTicket::wait`] runs outside that lock so
/// concurrent workers share flushes.
#[derive(Debug)]
pub struct WalWriter {
    file: Arc<dyn VfsFile>,
    policy: FsyncPolicy,
    since_sync: u64,
    appended: u64,
    group: Arc<GroupSync>,
}

impl WalWriter {
    /// Opens `path` for appending (creating it if needed). Call after
    /// [`replay`] so a torn tail has already been truncated away.
    pub fn open(config: &WalConfig) -> io::Result<Self> {
        let file = config.vfs.open_append(&config.path)?;
        Ok(WalWriter {
            file: Arc::from(file),
            policy: config.fsync,
            since_sync: 0,
            appended: 0,
            group: Arc::new(GroupSync::new()),
        })
    }

    /// Appends one record's bytes and returns the ticket that makes it
    /// durable. Under [`FsyncPolicy::Always`] no `fsync` happens here —
    /// the caller waits on the ticket *outside* its append lock, so
    /// overlapping waiters coalesce into one flush (group commit). The
    /// other policies behave as before (inline periodic / no flush) and
    /// return an already-satisfied ticket.
    pub fn append_group(&mut self, record: &WalRecord) -> io::Result<WalTicket> {
        let buf = encode_record(record)?;
        self.file.write_all(&buf)?;
        self.appended += 1;
        self.group.appended.store(self.appended, Ordering::Release);
        match self.policy {
            FsyncPolicy::Always => Ok(WalTicket {
                target: self.appended,
                sync: Some((Arc::clone(&self.group), Arc::clone(&self.file))),
            }),
            FsyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                if self.since_sync >= n {
                    self.file.sync_data()?;
                    self.since_sync = 0;
                    self.group.mark_all_durable();
                }
                Ok(WalTicket {
                    target: self.appended,
                    sync: None,
                })
            }
            FsyncPolicy::Os => Ok(WalTicket {
                target: self.appended,
                sync: None,
            }),
        }
    }

    /// Appends one record and waits out its ticket. On return with
    /// [`FsyncPolicy::Always`] the record is on the platter.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.append_group(record)?.wait().map(|_| ())
    }

    /// Records appended through this writer (excludes replayed history).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Forces everything appended so far onto the platter, whatever the
    /// policy; called on orderly shutdown.
    pub fn sync(&mut self) -> io::Result<()> {
        self.since_sync = 0;
        self.file.sync_data()?;
        self.group.mark_all_durable();
        Ok(())
    }

    /// Empties the log in place, once every record in it is durable
    /// elsewhere (a storage backend just flushed a segment covering it).
    /// The file stays open in append mode, so later appends land at the
    /// new (zero) end of file.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.since_sync = 0;
        self.file.sync_data()?;
        self.group.mark_all_durable();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            t: seq as f64 * 0.5,
            seq,
            request_id: Some(seq * 10),
            request: Request {
                pseudonym: format!("u{}", seq % 3),
                positions: vec![Point::new(seq as f64, 1.0), Point::new(2.0, seq as f64)],
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dummyloc-wal-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("os".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Os);
        assert_eq!(
            "every-128".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(128)
        );
        assert!("every-0".parse::<FsyncPolicy>().is_err());
        assert!("every-x".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let records: Vec<WalRecord> = (0..20).map(record).collect();
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&encode_record(r).unwrap());
        }
        let (back, end) = decode_all(&wire);
        assert_eq!(end, wire.len());
        assert_eq!(back, records);
    }

    #[test]
    fn truncation_at_every_offset_recovers_the_committed_prefix() {
        // The crash model: the final record may be torn at any byte. Every
        // cut must decode exactly the records whose bytes fully landed,
        // and never panic.
        let records: Vec<WalRecord> = (0..4).map(record).collect();
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            wire.extend_from_slice(&encode_record(r).unwrap());
            boundaries.push(wire.len());
        }
        for cut in 0..=wire.len() {
            let (back, end) = decode_all(&wire[..cut]);
            let committed = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(back.len(), committed, "cut at {cut}");
            assert_eq!(end, boundaries[committed], "cut at {cut}");
            assert_eq!(back, records[..committed], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_decoding() {
        let mut wire = encode_record(&record(1)).unwrap();
        wire.extend_from_slice(&encode_record(&record(2)).unwrap());
        // Flip one payload byte of the first record: both records are
        // unreachable (the log is a stream, not a directory).
        wire[HEADER_BYTES + 3] ^= 0xff;
        let (back, end) = decode_all(&wire);
        assert!(back.is_empty());
        assert_eq!(end, 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = vec![0u8; HEADER_BYTES];
        wire[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (back, end) = decode_all(&wire);
        assert!(back.is_empty());
        assert_eq!(end, 0);
    }

    #[test]
    fn replay_truncates_torn_tail_and_continues() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&WalConfig {
            fsync: FsyncPolicy::EveryN(2),
            ..WalConfig::new(path.clone())
        })
        .unwrap();
        for seq in 0..3 {
            writer.append(&record(seq)).unwrap();
        }
        writer.sync().unwrap();
        assert_eq!(writer.appended(), 3);
        drop(writer);

        // Tear the final record mid-payload.
        let full = std::fs::read(&path).unwrap();
        let (_, clean) = decode_all(&full[..full.len() - 5]);
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(summary.records, 2);
        assert!(summary.torn);
        assert_eq!(summary.truncated_bytes, (full.len() - 5 - clean) as u64);
        assert_eq!(seen, (0..2).map(record).collect::<Vec<_>>());

        // The tear is gone: appending resumes from a clean end-of-log.
        let mut writer = WalWriter::open(&WalConfig::new(path.clone())).unwrap();
        writer.append(&record(9)).unwrap();
        drop(writer);
        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert!(!summary.torn);
        assert_eq!(summary.records, 3);
        assert_eq!(seen[2], record(9));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_empties_the_log_and_appends_continue() {
        let path = temp_path("truncate");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&WalConfig::new(path.clone())).unwrap();
        for seq in 0..3 {
            writer.append(&record(seq)).unwrap();
        }
        writer.truncate().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // The open append handle keeps working after set_len(0).
        writer.append(&record(7)).unwrap();
        drop(writer);
        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert!(!summary.torn);
        assert_eq!(seen, vec![record(7)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_tickets_reach_durability_with_shared_leaders() {
        let path = temp_path("group");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&WalConfig::new(path.clone())).unwrap();

        // Append a burst first, wait the tickets afterwards — the shape
        // the server's worker batches produce. Every ticket must come
        // back durable, and at least one (at most all) must have led a
        // flush.
        let tickets: Vec<WalTicket> = (0..8)
            .map(|seq| writer.append_group(&record(seq)).unwrap())
            .collect();
        let mut leaders = 0;
        // Waiting out of order must also work: later tickets first.
        for t in tickets.iter().rev() {
            if t.wait().unwrap() {
                leaders += 1;
            }
        }
        assert!((1..=8).contains(&leaders), "leaders: {leaders}");
        // A second wait on a satisfied ticket is a cheap no-op.
        assert!(!tickets[0].wait().unwrap());
        drop(writer);

        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert!(!summary.torn);
        assert_eq!(seen, (0..8).map(record).collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_always_policies_return_satisfied_tickets() {
        let path = temp_path("group-osn");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&WalConfig {
            fsync: FsyncPolicy::EveryN(2),
            ..WalConfig::new(path.clone())
        })
        .unwrap();
        for seq in 0..4 {
            let ticket = writer.append_group(&record(seq)).unwrap();
            assert!(!ticket.wait().unwrap(), "no leader under every-N");
        }
        drop(writer);
        let mut count = 0u64;
        replay(&path, |_| count += 1).unwrap();
        assert_eq!(count, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_racing_commit_groups_never_loses_post_truncate_records() {
        // Regression (ISSUE 9 satellite): the truncate path must go
        // through the writer's shared append handle — never a separate
        // reopen — so a truncate racing a commit group leaves exactly
        // the records appended after the last truncate, all replayable,
        // with every ticket satisfied and no torn tail.
        let path = temp_path("truncate-race");
        let _ = std::fs::remove_file(&path);
        let writer = Arc::new(Mutex::new(
            WalWriter::open(&WalConfig::new(path.clone())).unwrap(),
        ));
        let epoch = Arc::new(AtomicU64::new(0));
        let appended: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let writer = Arc::clone(&writer);
            let epoch = Arc::clone(&epoch);
            let appended = Arc::clone(&appended);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let seq = t * 100 + i;
                    let ticket = {
                        let mut w = writer.lock().unwrap();
                        let ticket = w.append_group(&record(seq)).unwrap();
                        appended
                            .lock()
                            .unwrap()
                            .push((epoch.load(Ordering::SeqCst), seq));
                        ticket
                    };
                    // The fsync rendezvous runs outside the writer lock,
                    // exactly where a truncate can slip in.
                    ticket.wait().unwrap();
                }
            }));
        }
        {
            let writer = Arc::clone(&writer);
            let epoch = Arc::clone(&epoch);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let mut w = writer.lock().unwrap();
                    w.truncate().unwrap();
                    epoch.fetch_add(1, Ordering::SeqCst);
                    drop(w);
                    std::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_epoch = epoch.load(Ordering::SeqCst);
        let expected: Vec<u64> = appended
            .lock()
            .unwrap()
            .iter()
            .filter(|(e, _)| *e == final_epoch)
            .map(|(_, s)| *s)
            .collect();
        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r.seq)).unwrap();
        assert!(!summary.torn);
        assert_eq!(seen, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_vfs_truncates_torn_tails_through_the_vfs() {
        use dummyloc_store::vfs::FaultVfs;
        let vfs = FaultVfs::new();
        let path = PathBuf::from("/wal/log");
        let mut wire = Vec::new();
        for seq in 0..3 {
            wire.extend_from_slice(&encode_record(&record(seq)).unwrap());
        }
        let clean = wire.len();
        wire.extend_from_slice(&wire.clone()[..7]); // torn tail
        let f = vfs.create(&path).unwrap();
        f.write_all(&wire).unwrap();
        f.sync_all().unwrap();
        drop(f);
        let mut seen = Vec::new();
        let summary = replay_vfs(&vfs, &path, |r| seen.push(r.seq)).unwrap();
        assert_eq!(summary.records, 3);
        assert!(summary.torn);
        assert_eq!(summary.truncated_bytes, 7);
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(vfs.len(&path).unwrap(), clean as u64);
        // Missing files are an empty log through any vfs.
        let summary = replay_vfs(&vfs, Path::new("/wal/none"), |_| panic!()).unwrap();
        assert_eq!(summary, ReplaySummary::default());
    }

    #[test]
    fn replay_of_missing_file_is_an_empty_log() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let summary = replay(&path, |_| panic!("no records expected")).unwrap();
        assert_eq!(summary, ReplaySummary::default());
    }
}
