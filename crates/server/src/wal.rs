//! Append-only write-ahead log for observer-log mutations.
//!
//! Every committed observer record — one per `(pseudonym, request id)`
//! pair the server actually logged — is appended here *before* the
//! `Answer` frame leaves the server, so a `kill -9` can never lose a
//! query the client saw acknowledged. Each record is length-prefixed and
//! checksummed:
//!
//! ```text
//! [u32 payload-len LE][u64 FNV-1a(payload) LE][payload JSON]
//! ```
//!
//! On startup the server replays the log through
//! [`ShardedLog::replay`](crate::shard::ShardedLog::replay), restoring
//! the exact sequence stamps and idempotency keys, so the rebuilt
//! [`ObserverLog`](dummyloc_lbs::provider::ObserverLog) is byte-identical
//! to the pre-crash one (verifiable via per-pseudonym stream digests). A
//! torn final record — the telltale of a crash mid-append — is truncated
//! away and counted; replay never panics and never drops a record whose
//! bytes were fully committed.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use dummyloc_core::client::Request;
use serde::{Deserialize, Serialize};

/// Largest payload replay will attempt to read. A corrupted length
/// prefix must not make recovery allocate gigabytes.
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Bytes of framing before each payload: `u32` length + `u64` checksum.
const HEADER_BYTES: usize = 12;

/// When appended records are flushed to the disk platter, trading
/// durability against append latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged query survives power
    /// loss, not just process death.
    Always,
    /// `fsync` after every `n` records: bounded loss window under power
    /// failure, still zero loss on process crash.
    EveryN(u64),
    /// Never `fsync` explicitly; the OS page cache decides. Survives
    /// `kill -9` (the page cache belongs to the kernel) but not power
    /// loss.
    Os,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "os" => Ok(FsyncPolicy::Os),
            other => {
                if let Some(n) = other.strip_prefix("every-") {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("bad fsync interval in {other:?}"))?;
                    if n == 0 {
                        return Err("fsync interval must be at least 1".to_string());
                    }
                    return Ok(FsyncPolicy::EveryN(n));
                }
                Err(format!(
                    "unknown fsync policy {other:?} (expected always, every-N or os)"
                ))
            }
        }
    }
}

/// Where and how durably the observer WAL is written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Log file; created if absent, replayed then appended to if present.
    pub path: PathBuf,
    /// Flush policy for appended records.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A WAL at `path` with the [`FsyncPolicy::Always`] safety default.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalConfig {
            path: path.into(),
            fsync: FsyncPolicy::Always,
        }
    }
}

/// One committed observer-log mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Service time of the round.
    pub t: f64,
    /// Global arrival sequence stamped by the sharded log.
    pub seq: u64,
    /// The query's idempotency key, when it had one.
    pub request_id: Option<u64>,
    /// The recorded message: pseudonym plus all `k+1` positions.
    pub request: Request,
}

/// FNV-1a over one encoded payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializes one record into its on-disk framing.
pub fn encode_record(record: &WalRecord) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_vec(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "wal record exceeds the size cap",
        ));
    }
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    Ok(buf)
}

/// What [`replay`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Intact records handed to the callback.
    pub records: u64,
    /// Whether a torn/corrupt tail was found (and truncated away).
    pub torn: bool,
    /// Bytes removed by the truncation.
    pub truncated_bytes: u64,
}

/// Decodes every intact record of `bytes`, returning the records and the
/// offset where decoding stopped (equal to `bytes.len()` iff the log is
/// clean). Never panics, whatever the input.
pub fn decode_all(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER_BYTES {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(
            bytes[offset + 4..offset + HEADER_BYTES]
                .try_into()
                .expect("8"),
        );
        if len > MAX_RECORD_BYTES {
            break;
        }
        let start = offset + HEADER_BYTES;
        let Some(end) = start.checked_add(len as usize) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if fnv1a(payload) != checksum {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<WalRecord>(text) else {
            break;
        };
        records.push(record);
        offset = end;
    }
    (records, offset)
}

/// Reads `path` (a missing file is an empty log), applies every intact
/// record in order, and truncates any torn tail in place so the next
/// append continues from a clean end-of-log.
pub fn replay<F: FnMut(WalRecord)>(path: &Path, mut apply: F) -> io::Result<ReplaySummary> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(ReplaySummary::default());
        }
        Err(e) => return Err(e),
    }
    let (records, clean_end) = decode_all(&bytes);
    let summary = ReplaySummary {
        records: records.len() as u64,
        torn: clean_end < bytes.len(),
        truncated_bytes: (bytes.len() - clean_end) as u64,
    };
    if summary.torn {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(clean_end as u64)?;
        f.sync_all()?;
    }
    for record in records {
        apply(record);
    }
    Ok(summary)
}

/// The append side of the log. One writer exists per server; workers
/// serialize on it only for the duration of one `write_all`.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: FsyncPolicy,
    since_sync: u64,
    appended: u64,
}

impl WalWriter {
    /// Opens `path` for appending (creating it if needed). Call after
    /// [`replay`] so a torn tail has already been truncated away.
    pub fn open(config: &WalConfig) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&config.path)?;
        Ok(WalWriter {
            file,
            policy: config.fsync,
            since_sync: 0,
            appended: 0,
        })
    }

    /// Appends one record and applies the fsync policy. On return with
    /// [`FsyncPolicy::Always`] the record is on the platter.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let buf = encode_record(record)?;
        self.file.write_all(&buf)?;
        self.appended += 1;
        match self.policy {
            FsyncPolicy::Always => self.file.sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                if self.since_sync >= n {
                    self.file.sync_data()?;
                    self.since_sync = 0;
                }
            }
            FsyncPolicy::Os => {}
        }
        Ok(())
    }

    /// Records appended through this writer (excludes replayed history).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Forces everything appended so far onto the platter, whatever the
    /// policy; called on orderly shutdown.
    pub fn sync(&mut self) -> io::Result<()> {
        self.since_sync = 0;
        self.file.sync_data()
    }

    /// Empties the log in place, once every record in it is durable
    /// elsewhere (a storage backend just flushed a segment covering it).
    /// The file stays open in append mode, so later appends land at the
    /// new (zero) end of file.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.since_sync = 0;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            t: seq as f64 * 0.5,
            seq,
            request_id: Some(seq * 10),
            request: Request {
                pseudonym: format!("u{}", seq % 3),
                positions: vec![Point::new(seq as f64, 1.0), Point::new(2.0, seq as f64)],
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dummyloc-wal-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("os".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Os);
        assert_eq!(
            "every-128".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(128)
        );
        assert!("every-0".parse::<FsyncPolicy>().is_err());
        assert!("every-x".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let records: Vec<WalRecord> = (0..20).map(record).collect();
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&encode_record(r).unwrap());
        }
        let (back, end) = decode_all(&wire);
        assert_eq!(end, wire.len());
        assert_eq!(back, records);
    }

    #[test]
    fn truncation_at_every_offset_recovers_the_committed_prefix() {
        // The crash model: the final record may be torn at any byte. Every
        // cut must decode exactly the records whose bytes fully landed,
        // and never panic.
        let records: Vec<WalRecord> = (0..4).map(record).collect();
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            wire.extend_from_slice(&encode_record(r).unwrap());
            boundaries.push(wire.len());
        }
        for cut in 0..=wire.len() {
            let (back, end) = decode_all(&wire[..cut]);
            let committed = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(back.len(), committed, "cut at {cut}");
            assert_eq!(end, boundaries[committed], "cut at {cut}");
            assert_eq!(back, records[..committed], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_decoding() {
        let mut wire = encode_record(&record(1)).unwrap();
        wire.extend_from_slice(&encode_record(&record(2)).unwrap());
        // Flip one payload byte of the first record: both records are
        // unreachable (the log is a stream, not a directory).
        wire[HEADER_BYTES + 3] ^= 0xff;
        let (back, end) = decode_all(&wire);
        assert!(back.is_empty());
        assert_eq!(end, 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = vec![0u8; HEADER_BYTES];
        wire[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (back, end) = decode_all(&wire);
        assert!(back.is_empty());
        assert_eq!(end, 0);
    }

    #[test]
    fn replay_truncates_torn_tail_and_continues() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&WalConfig {
            path: path.clone(),
            fsync: FsyncPolicy::EveryN(2),
        })
        .unwrap();
        for seq in 0..3 {
            writer.append(&record(seq)).unwrap();
        }
        writer.sync().unwrap();
        assert_eq!(writer.appended(), 3);
        drop(writer);

        // Tear the final record mid-payload.
        let full = std::fs::read(&path).unwrap();
        let (_, clean) = decode_all(&full[..full.len() - 5]);
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(summary.records, 2);
        assert!(summary.torn);
        assert_eq!(summary.truncated_bytes, (full.len() - 5 - clean) as u64);
        assert_eq!(seen, (0..2).map(record).collect::<Vec<_>>());

        // The tear is gone: appending resumes from a clean end-of-log.
        let mut writer = WalWriter::open(&WalConfig::new(path.clone())).unwrap();
        writer.append(&record(9)).unwrap();
        drop(writer);
        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert!(!summary.torn);
        assert_eq!(summary.records, 3);
        assert_eq!(seen[2], record(9));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_empties_the_log_and_appends_continue() {
        let path = temp_path("truncate");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&WalConfig::new(path.clone())).unwrap();
        for seq in 0..3 {
            writer.append(&record(seq)).unwrap();
        }
        writer.truncate().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // The open append handle keeps working after set_len(0).
        writer.append(&record(7)).unwrap();
        drop(writer);
        let mut seen = Vec::new();
        let summary = replay(&path, |r| seen.push(r)).unwrap();
        assert!(!summary.torn);
        assert_eq!(seen, vec![record(7)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_of_missing_file_is_an_empty_log() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let summary = replay(&path, |_| panic!("no records expected")).unwrap();
        assert_eq!(summary, ReplaySummary::default());
    }
}
