//! Load generator: M concurrent simulated users against a live server.
//!
//! Each user owns one connection, one rickshaw track (the paper's Nara
//! workload substitute from `dummyloc-mobility`), one dummy generator and
//! one derived RNG stream, so a fixed master seed reproduces the exact
//! same request sequences — and, against a server with the same POI seed,
//! the exact same answers — run after run. The per-user answer digests in
//! the report make that checkable: two runs with the same seed must
//! produce identical `per_user_digest` vectors — *even against a server
//! injecting faults*, because every user drives a [`RetryingClient`] that
//! absorbs drops, stalls, garbled frames and `Overloaded`/`Deadline`
//! bounces. Retries make faults invisible to the application.

use std::time::{Duration, Instant};

use dummyloc_core::client::Client as CoreClient;
use dummyloc_core::generator::{
    DensityThreshold, DummyGenerator, MlnGenerator, MnGenerator, NoDensity, RandomGenerator,
};
use dummyloc_geo::rng::{derive_seed, rng_from_seed};
use dummyloc_lbs::query::QueryKind;
use dummyloc_mobility::{RickshawConfig, RickshawModel};
use dummyloc_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

use crate::client::{BatchItem, ClientBuilder, RetryPolicy, RetryStats, ServiceClient};
use crate::codec::ProtoVersion;
use crate::error::{Result, ServerError};
use crate::stats::StatsSnapshot;

/// How long the post-run stats snapshot fetch may wait before the report
/// ships without one.
const STATS_FETCH_TIMEOUT: Duration = Duration::from_millis(2000);

/// Which dummy algorithm the simulated users run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorChoice {
    /// Uniform redraw each round (the paper's strawman).
    Random,
    /// Moving in a Neighborhood.
    Mn,
    /// Moving in a Limited Neighborhood (density view: none — users are
    /// independent processes here).
    Mln,
}

impl GeneratorChoice {
    fn build(
        self,
        area: dummyloc_geo::BBox,
        m: f64,
    ) -> std::result::Result<Box<dyn DummyGenerator>, dummyloc_core::CoreError> {
        Ok(match self {
            GeneratorChoice::Random => Box::new(RandomGenerator::new(area)?),
            GeneratorChoice::Mn => Box::new(MnGenerator::new(area, m)?),
            GeneratorChoice::Mln => Box::new(MlnGenerator::with_options(
                area,
                m,
                DensityThreshold::MeanOccupied,
                6,
            )?),
        })
    }
}

/// Parameters of one load-generation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent simulated users (one thread + one connection each).
    pub users: usize,
    /// Service rounds per user.
    pub rounds: usize,
    /// Dummies per request (`k`; each request carries `k+1` positions).
    pub dummy_count: usize,
    /// Dummy-motion algorithm.
    pub generator: GeneratorChoice,
    /// MN/MLN neighborhood half-extent in metres.
    pub m: f64,
    /// Simulated seconds between rounds (logical time only; the load
    /// generator sends as fast as the server answers).
    pub tick: f64,
    /// Master seed; user `i` derives stream `i`.
    pub seed: u64,
    /// The query every user issues each round.
    pub query: QueryKind,
    /// Per-user retry behavior.
    pub retry: RetryPolicy,
    /// Per-query server-side deadline in milliseconds; `None` leaves it to
    /// the server's default.
    pub deadline_ms: Option<u64>,
    /// Protocol version to dial with (v4 binary falls back to v3 JSON if
    /// the server refuses).
    pub proto: ProtoVersion,
    /// Rounds bundled per request. `1` reproduces the classic lockstep
    /// client; larger values ship each group as one protocol-v4 `Batch`
    /// frame (or a v3 pipeline), trading per-round latency attribution
    /// for round-trips.
    pub batch: usize,
    /// Open-loop pacing: total offered queries per second across all
    /// users. `None` (the default) is the classic closed loop — each user
    /// sends as fast as the server answers, which silently slows the
    /// offered load when the server slows (coordinated omission). With a
    /// rate, every round has a *scheduled* send time the server cannot
    /// push back, latency is measured from that schedule, and a
    /// behind-schedule round is sent late (never skipped) with the
    /// backlog wait counted in its latency.
    pub rate: Option<f64>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            users: 8,
            rounds: 20,
            dummy_count: 3,
            generator: GeneratorChoice::Mn,
            m: 120.0,
            tick: 30.0,
            seed: 1,
            query: QueryKind::NextBus,
            retry: RetryPolicy::default(),
            deadline_ms: None,
            proto: ProtoVersion::V4Binary,
            batch: 1,
            rate: None,
        }
    }
}

impl LoadgenConfig {
    /// Rejects nonsensical knob values before any thread is spawned.
    pub fn validate(&self) -> Result<()> {
        let err = |message: String| Err(ServerError::Config { message });
        if self.users == 0 || self.rounds == 0 {
            return err("loadgen needs at least one user and one round".into());
        }
        if self.dummy_count > 64 {
            return err("dummy-count above 64 is surely a typo".into());
        }
        if self.batch == 0 {
            return err("batch must be at least 1".into());
        }
        if self.batch > 1_000 {
            return err("batch above 1000 would exceed frame limits".into());
        }
        if let Some(rate) = self.rate {
            if !rate.is_finite() || rate <= 0.0 {
                return err(format!("rate must be a positive number of rps, got {rate}"));
            }
            if self.batch != 1 {
                return err("rate paces individual rounds; it requires batch = 1".into());
            }
        }
        self.retry.validate()
    }
}

/// Latency percentiles over every answered query, in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile — the tail that distinguishes a run with a few
    /// slow retries from a uniformly slow one.
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// What one run produced (serialized as the `loadgen` subcommand output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Concurrent users driven.
    pub users: usize,
    /// Rounds attempted per user.
    pub rounds: usize,
    /// Queries sent.
    pub sent: u64,
    /// Queries answered in full (after any retries).
    pub answered: u64,
    /// `Overloaded` bounces absorbed by retries.
    pub overloaded: u64,
    /// Retry attempts beyond each query's first.
    pub retries: u64,
    /// Connections rebuilt after i/o or protocol failures.
    pub reconnects: u64,
    /// `Deadline` misses absorbed by retries.
    pub deadline_misses: u64,
    /// `Busy` bounces absorbed while connecting.
    pub busy_bounces: u64,
    /// Bounces (either kind) that carried a server `retry_after_ms` hint.
    pub hinted_bounces: u64,
    /// Hedged first attempts (abandoned at the p99 timeout and resent).
    pub hedges: u64,
    /// Client circuit breakers tripped open.
    pub breaker_opens: u64,
    /// Open→half-open breaker transitions (probes admitted).
    pub breaker_half_opens: u64,
    /// Half-open probes that succeeded and closed their breaker.
    pub breaker_closes: u64,
    /// Queries failed fast while a breaker was open (no network traffic).
    pub breaker_fast_fails: u64,
    /// Users whose session died on an error (retries exhausted).
    pub user_errors: u64,
    /// Rounds abandoned after their retries were exhausted in paced
    /// (open-loop) mode, where an error skips the round instead of
    /// killing the user — under deliberate overload, dropped rounds are
    /// data, not failures.
    pub round_errors: u64,
    /// Total wall-clock microseconds the retry machinery added on top of
    /// a fault-free run (backoff sleeps + failed attempts, all users).
    pub retry_overhead_us: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Answered queries per wall-clock second.
    pub throughput_rps: f64,
    /// Client-measured round-trip latency percentiles.
    pub latency: LatencySummary,
    /// FNV-1a digest (hex) of each user's answer sequence — identical
    /// across runs for a fixed seed against the same server database.
    pub per_user_digest: Vec<String>,
    /// Server counters fetched after the run, when reachable.
    pub server_stats: Option<StatsSnapshot>,
}

struct UserOutcome {
    digest: u64,
    latencies_us: Vec<u64>,
    sent: u64,
    answered: u64,
    round_errors: u64,
    retry: RetryStats,
    /// The error that ended this user's run early, if any. Kept inside
    /// the outcome (rather than an `Err` return) so the retry tallies a
    /// failing user accumulated still reach the aggregate report.
    error: Option<String>,
}

fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn drive_user(
    cfg: &LoadgenConfig,
    track: &dummyloc_trajectory::Trajectory,
    user: usize,
) -> Result<UserOutcome> {
    let area = RickshawConfig::nara().area;
    let generator = cfg
        .generator
        .build(area, cfg.m)
        .map_err(|e| ServerError::Protocol {
            message: format!("generator config invalid: {e}"),
        })?;
    let mut rng = rng_from_seed(derive_seed(cfg.seed, user as u64));
    let mut client = CoreClient::new(track.id().to_string(), generator, cfg.dummy_count);
    // Jitter gets its own derived stream so request generation and backoff
    // randomness cannot entangle.
    let mut svc = ClientBuilder::new(cfg.addr.as_str())
        .proto(cfg.proto)
        .retrying(
            cfg.retry.clone(),
            derive_seed(cfg.seed, 0xbac0ff ^ user as u64),
        )?;
    let mut out = UserOutcome {
        digest: 0xcbf2_9ce4_8422_2325,
        latencies_us: Vec::with_capacity(cfg.rounds),
        sent: 0,
        answered: 0,
        round_errors: 0,
        retry: RetryStats::default(),
        error: None,
    };
    // Open-loop pacing: round `k` of this user is *scheduled* at
    // `start + (user + k·users)/rate` — the fleet interleaves evenly at
    // the aggregate rate, and each user's own sends are `users/rate`
    // apart. The schedule is fixed up front; the server can make a round
    // late but never make the next one start later.
    let pace = cfg
        .rate
        .map(|rate| (Instant::now(), user as f64 / rate, cfg.users as f64 / rate));
    // The dummy-motion stream is response-independent (the paper's client
    // chooses dummies before the answer arrives), so a whole group of
    // rounds can be generated up front and shipped as one batch without
    // changing any request — batch size never changes the digests.
    'rounds: for chunk_start in (0..cfg.rounds).step_by(cfg.batch.max(1)) {
        let chunk = chunk_start..(chunk_start + cfg.batch).min(cfg.rounds);
        let mut items = Vec::with_capacity(chunk.len());
        for k in chunk {
            let t = k as f64 * cfg.tick;
            let pos = track
                .position_at(t)
                .expect("fleet tracks span the whole run");
            let round = match if k == 0 {
                client.begin(&mut rng, pos)
            } else {
                client.step(&mut rng, pos, &NoDensity)
            } {
                Ok(round) => round,
                Err(e) => {
                    out.error = Some(format!("client protocol error: {e}"));
                    break 'rounds;
                }
            };
            items.push(BatchItem {
                t,
                deadline_ms: cfg.deadline_ms,
                request: round.request,
                query: cfg.query,
            });
        }
        // Closed loop: the clock starts at the actual send. Open loop:
        // it starts at the *scheduled* send — waiting out a late schedule
        // is the server's fault and belongs in the latency (the
        // coordinated-omission correction); a round that is behind
        // schedule goes out immediately, never skipped.
        let start = match pace {
            None => Instant::now(),
            Some((pace_start, offset, interval)) => {
                let scheduled =
                    pace_start + Duration::from_secs_f64(offset + chunk_start as f64 * interval);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                scheduled
            }
        };
        out.sent += items.len() as u64;
        let responses = match svc.query_batch(&items) {
            Ok(responses) => responses,
            Err(e) => {
                // Open loop tolerates a lost round — under deliberate
                // overload, exhausted retries on some rounds are the
                // expected outcome, not a dead user. The closed loop
                // keeps its strict contract: any error ends the session.
                if pace.is_some() {
                    out.round_errors += items.len() as u64;
                    continue;
                }
                out.error = Some(e.to_string());
                break;
            }
        };
        // Every round in the group shares the group's wall-clock span:
        // they were all in flight from first send to last reply.
        let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        for response in responses {
            out.latencies_us.push(elapsed_us);
            out.answered += 1;
            match serde_json::to_string(&response) {
                Ok(rendered) => out.digest = fnv1a_fold(out.digest, rendered.as_bytes()),
                Err(e) => {
                    out.error = Some(e.to_string());
                    break 'rounds;
                }
            }
        }
    }
    out.retry = svc.finish();
    Ok(out)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the load and gathers the report. Deterministic in everything but
/// timing: the request streams and answer digests depend only on
/// `config.seed` (and the server's POI database).
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport> {
    run_instrumented(config, None)
}

/// [`run`] with an optional telemetry bundle: counters and latency land in
/// `telemetry.registry` under `loadgen.*`, one `user.done` event per
/// finished user lands in `telemetry.recorder`.
pub fn run_instrumented(
    config: &LoadgenConfig,
    telemetry: Option<&Telemetry>,
) -> Result<LoadgenReport> {
    config.validate()?;
    // The fleet is generated from the master seed alone, so track shapes —
    // and therefore every true position — reproduce across runs.
    let model = RickshawModel::new(RickshawConfig::nara(), derive_seed(config.seed, 1_000_003));
    let duration = config.rounds as f64 * config.tick;
    let fleet = model.generate_fleet(config.seed, config.users, 0.0, duration);

    let started = Instant::now();
    let results: Vec<Result<UserOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = fleet
            .tracks()
            .iter()
            .enumerate()
            .map(|(i, track)| s.spawn(move || drive_user(config, track, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(ServerError::Protocol {
                    message: "user thread panicked".to_string(),
                }),
            })
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut sent = 0;
    let mut answered = 0;
    let mut round_errors = 0;
    let mut retry = RetryStats::default();
    let mut user_errors = 0;
    let mut digests = Vec::with_capacity(config.users);
    let mut latencies: Vec<u64> = Vec::new();
    for (user, r) in results.into_iter().enumerate() {
        match r {
            Ok(u) => {
                sent += u.sent;
                answered += u.answered;
                round_errors += u.round_errors;
                retry.retries += u.retry.retries;
                retry.reconnects += u.retry.reconnects;
                retry.overloaded += u.retry.overloaded;
                retry.deadline_misses += u.retry.deadline_misses;
                retry.busy += u.retry.busy;
                retry.overhead_us += u.retry.overhead_us;
                retry.hinted += u.retry.hinted;
                retry.hedges += u.retry.hedges;
                retry.breaker_opens += u.retry.breaker_opens;
                retry.breaker_half_opens += u.retry.breaker_half_opens;
                retry.breaker_closes += u.retry.breaker_closes;
                retry.breaker_fast_fails += u.retry.breaker_fast_fails;
                if let Some(t) = telemetry {
                    let hist = t.registry.histogram_log2("loadgen.latency_us");
                    for &us in &u.latencies_us {
                        hist.record(us);
                    }
                    t.recorder.record(
                        "user.done",
                        vec![
                            ("user".to_string(), user.to_string()),
                            ("answered".to_string(), u.answered.to_string()),
                            ("digest".to_string(), format!("{:016x}", u.digest)),
                        ],
                    );
                }
                latencies.extend(u.latencies_us);
                if u.error.is_some() {
                    user_errors += 1;
                    digests.push("error".to_string());
                } else {
                    digests.push(format!("{:016x}", u.digest));
                }
            }
            // Setup failures (bad generator config) and panics: no
            // per-user tallies exist to salvage.
            Err(_) => {
                user_errors += 1;
                digests.push("error".to_string());
            }
        }
    }
    if let Some(t) = telemetry {
        t.registry.counter("loadgen.sent").add(sent);
        t.registry.counter("loadgen.answered").add(answered);
        t.registry.counter("loadgen.retries").add(retry.retries);
        t.registry
            .counter("loadgen.reconnects")
            .add(retry.reconnects);
        t.registry.counter("loadgen.user_errors").add(user_errors);
        t.registry
            .counter("loadgen.retry_overhead_us")
            .add(retry.overhead_us);
    }
    latencies.sort_unstable();
    let latency = LatencySummary {
        p50_us: percentile(&latencies, 50.0),
        p90_us: percentile(&latencies, 90.0),
        p99_us: percentile(&latencies, 99.0),
        p999_us: percentile(&latencies, 99.9),
        max_us: latencies.last().copied().unwrap_or(0),
        mean_us: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        },
    };
    // Bounded fetch: under fault injection the snapshot reply itself may
    // be dropped, and a missing snapshot must not hang the whole run.
    let server_stats =
        ServiceClient::connect_with_timeout(config.addr.as_str(), Some(STATS_FETCH_TIMEOUT))
            .and_then(|mut c| c.stats())
            .ok();
    Ok(LoadgenReport {
        users: config.users,
        rounds: config.rounds,
        sent,
        answered,
        overloaded: retry.overloaded,
        retries: retry.retries,
        reconnects: retry.reconnects,
        deadline_misses: retry.deadline_misses,
        busy_bounces: retry.busy,
        hinted_bounces: retry.hinted,
        hedges: retry.hedges,
        breaker_opens: retry.breaker_opens,
        breaker_half_opens: retry.breaker_half_opens,
        breaker_closes: retry.breaker_closes,
        breaker_fast_fails: retry.breaker_fast_fails,
        user_errors,
        round_errors,
        retry_overhead_us: retry.overhead_us,
        elapsed_secs: elapsed,
        throughput_rps: if elapsed > 0.0 {
            answered as f64 / elapsed
        } else {
            0.0
        },
        latency,
        per_user_digest: digests,
        server_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p999_separates_the_extreme_tail_from_p99() {
        // 2000 samples: all fast except the slowest three. p99 stays in
        // the bulk; p999 lands among the stragglers.
        let mut samples: Vec<u64> = vec![100; 1997];
        samples.extend([5_000, 6_000, 7_000]);
        samples.sort_unstable();
        assert_eq!(percentile(&samples, 99.0), 100);
        assert_eq!(percentile(&samples, 99.9), 5_000);
        assert_eq!(percentile(&samples, 100.0), 7_000);
        assert_eq!(percentile(&[], 99.9), 0);
    }
}
