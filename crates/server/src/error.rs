//! Error type for the server crate.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Anything that can go wrong serving or driving load.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame failed to encode or decode.
    Json(serde_json::Error),
    /// The peer violated the wire protocol.
    Protocol {
        /// What was violated.
        message: String,
    },
    /// The server rejected the opening handshake.
    Handshake {
        /// The server's complaint.
        message: String,
    },
    /// The server's accept gate was full (it sent a `Busy` frame).
    Busy {
        /// The server's advertised connection cap.
        limit: u64,
        /// Server-computed backoff hint, when the server provided one.
        retry_after_ms: Option<u64>,
    },
    /// The client-side circuit breaker is open: recent consecutive
    /// bounces crossed the threshold, so the call failed fast without
    /// touching the network. Retry after the breaker's open window.
    CircuitOpen {
        /// Milliseconds until the breaker admits a half-open probe.
        retry_after_ms: u64,
    },
    /// Every retry attempt failed.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The final attempt's failure, rendered.
        last: String,
    },
    /// A configuration value failed validation.
    Config {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Json(e) => write!(f, "frame codec error: {e}"),
            ServerError::Protocol { message } => write!(f, "protocol error: {message}"),
            ServerError::Handshake { message } => write!(f, "handshake rejected: {message}"),
            ServerError::Busy {
                limit,
                retry_after_ms,
            } => {
                write!(f, "server busy: connection cap {limit} reached")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms} ms)")?;
                }
                Ok(())
            }
            ServerError::CircuitOpen { retry_after_ms } => {
                write!(
                    f,
                    "circuit breaker open: failing fast, next probe in {retry_after_ms} ms"
                )
            }
            ServerError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ServerError::Config { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<serde_json::Error> for ServerError {
    fn from(e: serde_json::Error) -> Self {
        ServerError::Json(e)
    }
}

impl From<crate::codec::CodecError> for ServerError {
    fn from(e: crate::codec::CodecError) -> Self {
        match e {
            crate::codec::CodecError::Json(e) => ServerError::Json(e),
            other => ServerError::Protocol {
                message: other.to_string(),
            },
        }
    }
}
