//! Server counters and the snapshot served over the protocol.
//!
//! All tallies live in a shared [`MetricRegistry`] (DESIGN.md S14) so the
//! server exposes one coherent metric namespace: the legacy `Stats` frame
//! keeps its exact wire shape, while the `Metrics` frame serves the full
//! registry snapshot. `ServerStats` pre-registers every handle at
//! construction, so the record path is the registry's lock-free one.

use std::sync::Arc;
use std::time::Duration;

use dummyloc_lbs::query::QueryKind;
use dummyloc_telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricRegistry};
use serde::{Deserialize, Serialize};

/// Histogram bucket upper bounds in microseconds; one implicit overflow
/// bucket follows the last entry.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 100_000,
];

const KINDS: usize = 3;

const KIND_LABELS: [&str; KINDS] = ["nearest_poi", "pois_in_range", "next_bus"];

fn kind_index(query: &QueryKind) -> usize {
    match query {
        QueryKind::NearestPoi { .. } => 0,
        QueryKind::PoisInRange { .. } => 1,
        QueryKind::NextBus => 2,
    }
}

/// Why one query was turned away without being processed. All three
/// causes answer the same [`Overloaded`](crate::proto::ServerFrame)
/// frame on the wire; the cause only matters for the operator-facing
/// tallies (and for tests asserting *which* control loop fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// The bounded work queue had no slot (the pre-admission behavior).
    QueueFull,
    /// The admission controller predicted the deadline could not survive
    /// the queue wait and refused to enqueue.
    Admission,
    /// Queue aging (CoDel-style) shed the job at dequeue because its
    /// sojourn exceeded the target.
    Shed,
}

/// Counters shared by every worker and connection thread, backed by the
/// workspace metric registry. Recording touches only relaxed atomics
/// through pre-registered handles.
#[derive(Debug)]
pub struct ServerStats {
    registry: Arc<MetricRegistry>,
    requests: Arc<Counter>,
    positions: Arc<Counter>,
    rejects: Arc<Counter>,
    reject_queue_full: Arc<Counter>,
    reject_admission: Arc<Counter>,
    reject_shed: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    connections: Arc<Counter>,
    deadline_expired_queued: Arc<Counter>,
    deadline_expired_inflight: Arc<Counter>,
    busy_rejects: Arc<Counter>,
    idle_reaped: Arc<Counter>,
    dedup_hits: Arc<Counter>,
    faults_dropped: Arc<Counter>,
    faults_delayed: Arc<Counter>,
    faults_truncated: Arc<Counter>,
    faults_corrupted: Arc<Counter>,
    faults_stalled: Arc<Counter>,
    faults_refused_accepts: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    batches: Arc<Counter>,
    wal_appended: Arc<Counter>,
    wal_syncs: Arc<Counter>,
    wal_replayed: Arc<Counter>,
    wal_torn_truncations: Arc<Counter>,
    wal_truncated_bytes: Arc<Counter>,
    wal_errors: Arc<Counter>,
    store_appended: Arc<Counter>,
    store_replayed: Arc<Counter>,
    store_flushes: Arc<Counter>,
    store_compactions: Arc<Counter>,
    store_errors: Arc<Counter>,
    store_wal_truncations: Arc<Counter>,
    store_compact_runs: Arc<Counter>,
    store_compact_segments_in: Arc<Counter>,
    store_compact_bytes: Arc<Counter>,
    store_dir_fsync_errors: Arc<Gauge>,
    store_segments: Arc<Gauge>,
    store_memtable_bytes: Arc<Gauge>,
    store_recovery_ms: Arc<Gauge>,
    ewma_service_us: [Arc<Gauge>; KINDS],
    latency: [Arc<Histogram>; KINDS],
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh zeroed counters on a private registry.
    pub fn new() -> Self {
        Self::on_registry(Arc::new(MetricRegistry::new()))
    }

    /// Counters registered on `registry` under the `server.*` namespace,
    /// so the server's numbers appear in a shared run snapshot.
    pub fn on_registry(registry: Arc<MetricRegistry>) -> Self {
        let c = |name: &str| registry.counter(name);
        let latency = std::array::from_fn(|k| {
            registry.histogram(
                &format!("server.latency.{}", KIND_LABELS[k]),
                &LATENCY_BUCKETS_US,
            )
        });
        let ewma_service_us = std::array::from_fn(|k| {
            registry.gauge(&format!("server.ewma_service_us.{}", KIND_LABELS[k]))
        });
        ServerStats {
            requests: c("server.requests"),
            positions: c("server.positions"),
            rejects: c("server.rejects"),
            reject_queue_full: c("server.reject.queue_full"),
            reject_admission: c("server.reject.admission"),
            reject_shed: c("server.reject.shed"),
            protocol_errors: c("server.protocol_errors"),
            connections: c("server.connections"),
            deadline_expired_queued: c("server.deadline_expired_queued"),
            deadline_expired_inflight: c("server.deadline_expired_inflight"),
            busy_rejects: c("server.busy_rejects"),
            idle_reaped: c("server.idle_reaped"),
            dedup_hits: c("server.dedup_hits"),
            faults_dropped: c("server.faults.dropped"),
            faults_delayed: c("server.faults.delayed"),
            faults_truncated: c("server.faults.truncated"),
            faults_corrupted: c("server.faults.corrupted"),
            faults_stalled: c("server.faults.stalled"),
            faults_refused_accepts: c("server.faults.refused_accepts"),
            worker_restarts: c("server.worker.restarts"),
            batches: c("server.batches"),
            wal_appended: c("server.wal.appended"),
            wal_syncs: c("server.wal.syncs"),
            wal_replayed: c("server.wal.replayed"),
            wal_torn_truncations: c("server.wal.torn_truncations"),
            wal_truncated_bytes: c("server.wal.truncated_bytes"),
            wal_errors: c("server.wal.errors"),
            store_appended: c("server.store.appended"),
            store_replayed: c("server.store.replayed"),
            store_flushes: c("server.store.flushes"),
            store_compactions: c("server.store.compactions"),
            store_errors: c("server.store.errors"),
            store_wal_truncations: c("server.store.wal_truncations"),
            store_compact_runs: c("server.store.compact.runs"),
            store_compact_segments_in: c("server.store.compact.segments_in"),
            store_compact_bytes: c("server.store.compact.bytes"),
            store_dir_fsync_errors: registry.gauge("server.store.dir_fsync_errors"),
            store_segments: registry.gauge("server.store.segments"),
            store_memtable_bytes: registry.gauge("server.store.memtable_bytes"),
            store_recovery_ms: registry.gauge("server.store.recovery_ms"),
            ewma_service_us,
            latency,
            registry,
        }
    }

    /// The registry the counters live on — the payload source of the
    /// protocol's `Metrics` frame.
    pub fn registry(&self) -> &Arc<MetricRegistry> {
        &self.registry
    }

    /// One answered query: `positions` answers produced after `latency`
    /// in queue + service.
    pub fn record_answer(&self, query: &QueryKind, positions: usize, latency: Duration) {
        self.requests.inc();
        self.positions.add(positions as u64);
        self.latency[kind_index(query)].record_duration(latency);
    }

    /// One query turned away with an `Overloaded` frame. `server.rejects`
    /// stays the all-causes total (its historical meaning); the cause
    /// lands in its own `server.reject.*` counter.
    pub fn record_reject(&self, cause: RejectCause) {
        self.rejects.inc();
        match cause {
            RejectCause::QueueFull => self.reject_queue_full.inc(),
            RejectCause::Admission => self.reject_admission.inc(),
            RejectCause::Shed => self.reject_shed.inc(),
        }
    }

    /// Publishes the admission controller's current per-kind EWMA of
    /// service time, so the prediction feeding rejects is observable.
    pub fn set_ewma_service_us(&self, query: &QueryKind, us: u64) {
        self.ewma_service_us[kind_index(query)].set(us as i64);
    }

    /// One malformed / oversized / out-of-protocol frame.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.inc();
    }

    /// One accepted connection.
    pub fn record_connection(&self) {
        self.connections.inc();
    }

    /// One queued job cancelled because its deadline expired before a
    /// worker picked it up.
    pub fn record_deadline_queued(&self) {
        self.deadline_expired_queued.inc();
    }

    /// One job whose deadline expired while a worker was computing it.
    pub fn record_deadline_inflight(&self) {
        self.deadline_expired_inflight.inc();
    }

    /// One connection bounced off the accept gate with `Busy`.
    pub fn record_busy(&self) {
        self.busy_rejects.inc();
    }

    /// One idle connection reaped.
    pub fn record_idle_reap(&self) {
        self.idle_reaped.inc();
    }

    /// One retried query whose duplicate report the observer log skipped.
    pub fn record_dedup_hit(&self) {
        self.dedup_hits.inc();
    }

    /// One reply frame dropped by fault injection.
    pub fn record_fault_dropped(&self) {
        self.faults_dropped.inc();
    }

    /// One reply frame delayed by fault injection.
    pub fn record_fault_delayed(&self) {
        self.faults_delayed.inc();
    }

    /// One reply frame truncated by fault injection.
    pub fn record_fault_truncated(&self) {
        self.faults_truncated.inc();
    }

    /// One reply frame corrupted by fault injection.
    pub fn record_fault_corrupted(&self) {
        self.faults_corrupted.inc();
    }

    /// One connection stalled by fault injection.
    pub fn record_fault_stalled(&self) {
        self.faults_stalled.inc();
    }

    /// One accepted connection refused by fault injection.
    pub fn record_fault_refused(&self) {
        self.faults_refused_accepts.inc();
    }

    /// One worker panic contained and the worker respawned.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.inc();
    }

    /// One `Batch` frame fanned out into individual jobs.
    pub fn record_batch(&self) {
        self.batches.inc();
    }

    /// One observer record appended to the WAL.
    pub fn record_wal_append(&self) {
        self.wal_appended.inc();
    }

    /// One group-commit `fsync` led on behalf of a commit group. The
    /// ratio `wal.appended / wal.syncs` is the achieved group-commit
    /// amortization under `--wal-fsync always`.
    pub fn record_wal_sync(&self) {
        self.wal_syncs.inc();
    }

    /// One observer record restored from the WAL at startup.
    pub fn record_wal_replayed(&self) {
        self.wal_replayed.inc();
    }

    /// One torn WAL tail truncated away during replay.
    pub fn record_wal_torn(&self, truncated_bytes: u64) {
        self.wal_torn_truncations.inc();
        self.wal_truncated_bytes.add(truncated_bytes);
    }

    /// One WAL append that failed (the query was still answered; the
    /// record is lost if the server now crashes).
    pub fn record_wal_error(&self) {
        self.wal_errors.inc();
    }

    /// One observer record appended to the durable store's memtable.
    pub fn record_store_append(&self) {
        self.store_appended.inc();
    }

    /// One WAL-tail record re-applied to the store during recovery.
    pub fn record_store_replayed(&self) {
        self.store_replayed.inc();
    }

    /// One memtable flush that committed a segment.
    pub fn record_store_flush(&self) {
        self.store_flushes.inc();
    }

    /// One compaction that merged the segment set.
    pub fn record_store_compaction(&self) {
        self.store_compactions.inc();
    }

    /// One store operation that failed (the query was still answered;
    /// durability falls back to the WAL alone).
    pub fn record_store_error(&self) {
        self.store_errors.inc();
    }

    /// One WAL truncation after a successful flush made its records
    /// durable in the store.
    pub fn record_store_wal_truncation(&self) {
        self.store_wal_truncations.inc();
    }

    /// One background size-tiered compaction that committed: it merged
    /// `segments_in` input segments into one `bytes`-sized run.
    pub fn record_store_tiered_compaction(&self, segments_in: u64, bytes: u64) {
        self.store_compact_runs.inc();
        self.store_compact_segments_in.add(segments_in);
        self.store_compact_bytes.add(bytes);
    }

    /// Mirrors the store's cumulative count of manifest-commit directory
    /// fsyncs that failed (commit succeeded, durability unconfirmed).
    pub fn set_store_dir_fsync_errors(&self, errors: u64) {
        self.store_dir_fsync_errors.set(errors as i64);
    }

    /// Updates the store occupancy gauges after an append/flush/compact.
    pub fn set_store_occupancy(&self, segments: u64, memtable_bytes: u64) {
        self.store_segments.set(segments as i64);
        self.store_memtable_bytes.set(memtable_bytes as i64);
    }

    /// Records how long startup recovery (store open + preload + WAL
    /// tail replay) took.
    pub fn set_store_recovery_ms(&self, ms: u64) {
        self.store_recovery_ms.set(ms as i64);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.get(),
            positions: self.positions.get(),
            rejects: self.rejects.get(),
            rejections: RejectionCounters {
                queue_full: self.reject_queue_full.get(),
                admission: self.reject_admission.get(),
                shed: self.reject_shed.get(),
                accept_gate: self.busy_rejects.get(),
            },
            protocol_errors: self.protocol_errors.get(),
            connections: self.connections.get(),
            deadline_expired_queued: self.deadline_expired_queued.get(),
            deadline_expired_inflight: self.deadline_expired_inflight.get(),
            busy_rejects: self.busy_rejects.get(),
            idle_reaped: self.idle_reaped.get(),
            dedup_hits: self.dedup_hits.get(),
            faults: FaultCounters {
                dropped: self.faults_dropped.get(),
                delayed: self.faults_delayed.get(),
                truncated: self.faults_truncated.get(),
                corrupted: self.faults_corrupted.get(),
                stalled: self.faults_stalled.get(),
                refused_accepts: self.faults_refused_accepts.get(),
            },
            worker_restarts: self.worker_restarts.get(),
            batches: self.batches.get(),
            wal: WalCounters {
                appended: self.wal_appended.get(),
                replayed: self.wal_replayed.get(),
                torn_truncations: self.wal_torn_truncations.get(),
                truncated_bytes: self.wal_truncated_bytes.get(),
                errors: self.wal_errors.get(),
                syncs: self.wal_syncs.get(),
            },
            store: StoreCounters {
                appended: self.store_appended.get(),
                replayed: self.store_replayed.get(),
                flushes: self.store_flushes.get(),
                compactions: self.store_compactions.get(),
                errors: self.store_errors.get(),
                wal_truncations: self.store_wal_truncations.get(),
                compact_runs: self.store_compact_runs.get(),
                compact_segments_in: self.store_compact_segments_in.get(),
                compact_bytes: self.store_compact_bytes.get(),
                dir_fsync_errors: self.store_dir_fsync_errors.get() as u64,
            },
            latency: (0..KINDS)
                .map(|k| KindHistogram {
                    kind: KIND_LABELS[k].to_string(),
                    bucket_upper_us: LATENCY_BUCKETS_US.to_vec(),
                    counts: self.latency[k].snapshot().counts,
                })
                .collect(),
        }
    }
}

/// Serialized counter values (the payload of a `Stats` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Queries answered.
    pub requests: u64,
    /// Positions answered (truth and dummies alike — the paper's `k+1`
    /// cost multiplier shows up here).
    pub positions: u64,
    /// Queries rejected with `Overloaded` (all causes).
    pub rejects: u64,
    /// The same rejects split by cause, plus the accept gate's `Busy`
    /// bounces — the one place every way of turning work away is
    /// accounted. `rejections.accept_gate` mirrors `busy_rejects`; the
    /// three queue-side causes sum to `rejects`. Snapshots from builds
    /// that predate this block parse with all four causes zero (see the
    /// hand-written `Deserialize` on [`RejectionCounters`]).
    pub rejections: RejectionCounters,
    /// Malformed / oversized / out-of-protocol frames seen.
    pub protocol_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Queued jobs cancelled because their deadline expired before a
    /// worker picked them up.
    pub deadline_expired_queued: u64,
    /// Jobs whose deadline expired while a worker was computing them.
    pub deadline_expired_inflight: u64,
    /// Connections bounced off the accept gate with `Busy`.
    pub busy_rejects: u64,
    /// Idle connections reaped.
    pub idle_reaped: u64,
    /// Retried queries whose duplicate observer-log report was skipped.
    pub dedup_hits: u64,
    /// Injected-fault tallies (all zero when no fault plan is active).
    pub faults: FaultCounters,
    /// Worker panics contained (each one respawned its worker).
    pub worker_restarts: u64,
    /// `Batch` frames fanned out (protocol v4).
    pub batches: u64,
    /// Write-ahead-log tallies (all zero when the WAL is off).
    pub wal: WalCounters,
    /// Durable-store tallies (all zero when no `--store` is configured).
    pub store: StoreCounters,
    /// Per-query-kind latency histogram.
    pub latency: Vec<KindHistogram>,
}

/// Every way the server turns work away, in one block — the accept
/// gate's `Busy` and the three queue-side `Overloaded` causes were
/// previously counted in unrelated fields with nothing tying them
/// together.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RejectionCounters {
    /// `Overloaded` because the bounded work queue had no slot.
    pub queue_full: u64,
    /// `Overloaded` because admission predicted a doomed deadline.
    pub admission: u64,
    /// `Overloaded` because queue aging shed the job at dequeue.
    pub shed: u64,
    /// `Busy` bounces at the accept gate (mirrors `busy_rejects`).
    pub accept_gate: u64,
}

// Hand-written so snapshots serialized by builds that predate the block
// still parse: a missing `rejections` key reaches this impl as `Null`
// (the codec's missing-field convention) and zero-fills, which is the
// `#[serde(default)]` the derive layer doesn't offer.
impl serde::Deserialize for RejectionCounters {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
        if matches!(v, serde::value::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            queue_full: serde::__private::field(v, "queue_full")?,
            admission: serde::__private::field(v, "admission")?,
            shed: serde::__private::field(v, "shed")?,
            accept_gate: serde::__private::field(v, "accept_gate")?,
        })
    }
}

impl RejectionCounters {
    /// All rejections, every cause and both frame types.
    pub fn total(&self) -> u64 {
        self.queue_full + self.admission + self.shed + self.accept_gate
    }
}

/// Durability tallies of the observer write-ahead log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WalCounters {
    /// Records appended since this process started.
    pub appended: u64,
    /// Records restored by startup replay.
    pub replayed: u64,
    /// Torn tails truncated away during replay (0 or 1 per startup).
    pub torn_truncations: u64,
    /// Bytes removed by those truncations.
    pub truncated_bytes: u64,
    /// Appends that failed (answered anyway, durability lost).
    pub errors: u64,
    /// Group-commit `fsync`s issued; `appended / syncs` is the achieved
    /// amortization under `always`.
    pub syncs: u64,
}

/// Durability tallies of the pluggable observer store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Records appended to the store since this process started.
    pub appended: u64,
    /// WAL-tail records re-applied to the store during recovery.
    pub replayed: u64,
    /// Memtable flushes that committed a segment.
    pub flushes: u64,
    /// Compactions that merged the segment set.
    pub compactions: u64,
    /// Store operations that failed (answered anyway; the WAL still
    /// holds the record).
    pub errors: u64,
    /// WAL truncations performed after a successful flush.
    pub wal_truncations: u64,
    /// Background size-tiered compactions committed.
    pub compact_runs: u64,
    /// Input segments consumed by those compactions.
    pub compact_segments_in: u64,
    /// Bytes of merged output those compactions wrote.
    pub compact_bytes: u64,
    /// Manifest-commit directory fsyncs that failed (cumulative; the
    /// commits themselves succeeded).
    pub dir_fsync_errors: u64,
}

/// Tallies of injected faults, one per fault kind, so a chaos run can
/// assert every configured fault actually fired.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Reply frames silently dropped.
    pub dropped: u64,
    /// Reply frames delayed before transmission.
    pub delayed: u64,
    /// Reply frames truncated mid-line.
    pub truncated: u64,
    /// Reply frames with corrupted bytes.
    pub corrupted: u64,
    /// Connections that stopped transmitting (stalled).
    pub stalled: u64,
    /// Accepted connections refused (closed without a handshake).
    pub refused_accepts: u64,
}

/// Latency histogram of one query kind. `counts` has one entry per bound
/// in `bucket_upper_us` plus a final overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindHistogram {
    /// Query-kind label (`nearest_poi`, `pois_in_range`, `next_bus`).
    pub kind: String,
    /// Inclusive upper bounds in microseconds.
    pub bucket_upper_us: Vec<u64>,
    /// Observations per bucket (last entry = over the largest bound).
    pub counts: Vec<u64>,
}

impl KindHistogram {
    /// Upper-bound percentile estimate in microseconds (the last bound for
    /// observations in the overflow bucket; 0 when empty).
    pub fn percentile_us(&self, p: f64) -> u64 {
        HistogramSnapshot::from_parts(self.bucket_upper_us.clone(), self.counts.clone())
            .percentile(p)
    }
}

impl StatsSnapshot {
    /// Total histogram observations of one kind (should equal the number
    /// of answered queries of that kind).
    pub fn histogram_total(&self, kind: &str) -> u64 {
        self.latency
            .iter()
            .filter(|h| h.kind == kind)
            .flat_map(|h| h.counts.iter())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_bucket() {
        let s = ServerStats::new();
        s.record_connection();
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(30));
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(400));
        s.record_answer(
            &QueryKind::PoisInRange { radius: 10.0 },
            2,
            Duration::from_secs(5),
        );
        s.record_reject(RejectCause::QueueFull);
        s.record_reject(RejectCause::Admission);
        s.record_reject(RejectCause::Shed);
        s.set_ewma_service_us(&QueryKind::NextBus, 420);
        s.record_protocol_error();
        s.record_deadline_queued();
        s.record_deadline_inflight();
        s.record_busy();
        s.record_idle_reap();
        s.record_dedup_hit();
        s.record_fault_dropped();
        s.record_fault_delayed();
        s.record_fault_truncated();
        s.record_fault_corrupted();
        s.record_fault_stalled();
        s.record_fault_refused();
        s.record_worker_restart();
        s.record_batch();
        s.record_wal_append();
        s.record_wal_sync();
        s.record_wal_replayed();
        s.record_wal_torn(17);
        s.record_wal_error();
        s.record_store_append();
        s.record_store_replayed();
        s.record_store_flush();
        s.record_store_compaction();
        s.record_store_error();
        s.record_store_wal_truncation();
        s.record_store_tiered_compaction(4, 2048);
        s.set_store_dir_fsync_errors(2);
        s.set_store_occupancy(3, 4096);
        s.set_store_recovery_ms(12);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.positions, 10);
        assert_eq!(snap.rejects, 3);
        assert_eq!(
            snap.rejections,
            RejectionCounters {
                queue_full: 1,
                admission: 1,
                shed: 1,
                accept_gate: 1,
            }
        );
        assert_eq!(snap.rejections.total(), 4);
        assert_eq!(
            snap.rejections.queue_full + snap.rejections.admission + snap.rejections.shed,
            snap.rejects
        );
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.deadline_expired_queued, 1);
        assert_eq!(snap.deadline_expired_inflight, 1);
        assert_eq!(snap.busy_rejects, 1);
        assert_eq!(snap.idle_reaped, 1);
        assert_eq!(snap.dedup_hits, 1);
        let all_one = FaultCounters {
            dropped: 1,
            delayed: 1,
            truncated: 1,
            corrupted: 1,
            stalled: 1,
            refused_accepts: 1,
        };
        assert_eq!(snap.faults, all_one);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.batches, 1);
        let wal = WalCounters {
            appended: 1,
            replayed: 1,
            torn_truncations: 1,
            truncated_bytes: 17,
            errors: 1,
            syncs: 1,
        };
        assert_eq!(snap.wal, wal);
        let store = StoreCounters {
            appended: 1,
            replayed: 1,
            flushes: 1,
            compactions: 1,
            errors: 1,
            wal_truncations: 1,
            compact_runs: 1,
            compact_segments_in: 4,
            compact_bytes: 2048,
            dir_fsync_errors: 2,
        };
        assert_eq!(snap.store, store);
        let reg = s.registry().snapshot();
        assert_eq!(reg.counter("server.reject.queue_full"), Some(1));
        assert_eq!(reg.counter("server.reject.admission"), Some(1));
        assert_eq!(reg.counter("server.reject.shed"), Some(1));
        assert_eq!(reg.gauge("server.ewma_service_us.next_bus"), Some(420));
        assert_eq!(reg.counter("server.store.compact.runs"), Some(1));
        assert_eq!(reg.gauge("server.store.dir_fsync_errors"), Some(2));
        assert_eq!(reg.gauge("server.store.segments"), Some(3));
        assert_eq!(reg.gauge("server.store.memtable_bytes"), Some(4096));
        assert_eq!(reg.gauge("server.store.recovery_ms"), Some(12));
        assert_eq!(snap.histogram_total("next_bus"), 2);
        let bus = &snap.latency[2];
        assert_eq!(bus.counts[0], 1); // 30 µs ≤ 50 µs
        assert_eq!(bus.counts[3], 1); // 400 µs ≤ 500 µs
        let range = &snap.latency[1];
        assert_eq!(*range.counts.last().unwrap(), 1); // 5 s overflows
                                                      // Round-trips through the wire format.
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn old_snapshots_without_the_rejection_block_still_parse() {
        // A snapshot serialized by a pre-hint server has no `rejections`
        // key; the hand-written default on `RejectionCounters` must
        // zero-fill it instead of failing the whole Stats exchange
        // against an old peer.
        let snap = ServerStats::new().snapshot();
        let json = serde_json::to_value(&snap);
        let mut stripped = serde::value::Map::new();
        for (k, v) in json.as_object().expect("snapshot is an object").iter() {
            if k != "rejections" {
                stripped.insert(k.clone(), v.clone());
            }
        }
        let back: StatsSnapshot =
            serde_json::from_value(&serde::value::Value::Object(stripped)).unwrap();
        assert_eq!(back.rejections, RejectionCounters::default());
    }

    #[test]
    fn stats_share_the_registry_namespace() {
        let s = ServerStats::new();
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(30));
        s.record_busy();
        let reg = s.registry().snapshot();
        assert_eq!(reg.counter("server.requests"), Some(1));
        assert_eq!(reg.counter("server.positions"), Some(4));
        assert_eq!(reg.counter("server.busy_rejects"), Some(1));
        assert_eq!(reg.counter("server.faults.dropped"), Some(0));
        let lat = reg.histogram("server.latency.next_bus").unwrap();
        assert_eq!(lat.count, 1);
        assert_eq!(lat.bounds, LATENCY_BUCKETS_US.to_vec());
    }

    #[test]
    fn kind_histogram_percentiles_match_bucket_bounds() {
        let s = ServerStats::new();
        for _ in 0..98 {
            s.record_answer(&QueryKind::NextBus, 1, Duration::from_micros(40));
        }
        s.record_answer(&QueryKind::NextBus, 1, Duration::from_micros(900));
        s.record_answer(&QueryKind::NextBus, 1, Duration::from_micros(30_000));
        let snap = s.snapshot();
        let bus = &snap.latency[2];
        assert_eq!(bus.percentile_us(50.0), 50); // 40 µs → ≤ 50 µs bucket
        assert_eq!(bus.percentile_us(99.0), 1_000); // 900 µs → ≤ 1 ms bucket
        assert_eq!(bus.percentile_us(99.9), 50_000); // 30 ms → ≤ 50 ms bucket
        assert_eq!(bus.percentile_us(0.0), 50); // rank clamps to the first sample
        let empty = &snap.latency[0];
        assert_eq!(empty.percentile_us(99.0), 0);
    }
}
