//! Lock-free server counters and the snapshot served over the protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dummyloc_lbs::query::QueryKind;
use serde::{Deserialize, Serialize};

/// Histogram bucket upper bounds in microseconds; one implicit overflow
/// bucket follows the last entry.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 100_000,
];

const BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;
const KINDS: usize = 3;

const KIND_LABELS: [&str; KINDS] = ["nearest_poi", "pois_in_range", "next_bus"];

fn kind_index(query: &QueryKind) -> usize {
    match query {
        QueryKind::NearestPoi { .. } => 0,
        QueryKind::PoisInRange { .. } => 1,
        QueryKind::NextBus => 2,
    }
}

/// Counters shared by every worker and connection thread. All plain
/// relaxed atomics: the numbers are monotone tallies, not synchronization.
#[derive(Debug)]
pub struct ServerStats {
    requests: AtomicU64,
    positions: AtomicU64,
    rejects: AtomicU64,
    protocol_errors: AtomicU64,
    connections: AtomicU64,
    latency: [[AtomicU64; BUCKETS]; KINDS],
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            positions: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            latency: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One answered query: `positions` answers produced after `latency`
    /// in queue + service.
    pub fn record_answer(&self, query: &QueryKind, positions: usize, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.positions
            .fetch_add(positions as u64, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| us <= ub)
            .unwrap_or(BUCKETS - 1);
        self.latency[kind_index(query)][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// One query bounced off the full work queue.
    pub fn record_reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// One malformed / oversized / out-of-protocol frame.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            positions: self.positions.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            latency: (0..KINDS)
                .map(|k| KindHistogram {
                    kind: KIND_LABELS[k].to_string(),
                    bucket_upper_us: LATENCY_BUCKETS_US.to_vec(),
                    counts: self.latency[k]
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Serialized counter values (the payload of a `Stats` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Queries answered.
    pub requests: u64,
    /// Positions answered (truth and dummies alike — the paper's `k+1`
    /// cost multiplier shows up here).
    pub positions: u64,
    /// Queries rejected with `Overloaded`.
    pub rejects: u64,
    /// Malformed / oversized / out-of-protocol frames seen.
    pub protocol_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Per-query-kind latency histogram.
    pub latency: Vec<KindHistogram>,
}

/// Latency histogram of one query kind. `counts` has one entry per bound
/// in `bucket_upper_us` plus a final overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindHistogram {
    /// Query-kind label (`nearest_poi`, `pois_in_range`, `next_bus`).
    pub kind: String,
    /// Inclusive upper bounds in microseconds.
    pub bucket_upper_us: Vec<u64>,
    /// Observations per bucket (last entry = over the largest bound).
    pub counts: Vec<u64>,
}

impl StatsSnapshot {
    /// Total histogram observations of one kind (should equal the number
    /// of answered queries of that kind).
    pub fn histogram_total(&self, kind: &str) -> u64 {
        self.latency
            .iter()
            .filter(|h| h.kind == kind)
            .flat_map(|h| h.counts.iter())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_bucket() {
        let s = ServerStats::new();
        s.record_connection();
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(30));
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(400));
        s.record_answer(
            &QueryKind::PoisInRange { radius: 10.0 },
            2,
            Duration::from_secs(5),
        );
        s.record_reject();
        s.record_protocol_error();
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.positions, 10);
        assert_eq!(snap.rejects, 1);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.histogram_total("next_bus"), 2);
        let bus = &snap.latency[2];
        assert_eq!(bus.counts[0], 1); // 30 µs ≤ 50 µs
        assert_eq!(bus.counts[3], 1); // 400 µs ≤ 500 µs
        let range = &snap.latency[1];
        assert_eq!(*range.counts.last().unwrap(), 1); // 5 s overflows
                                                      // Round-trips through the wire format.
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
