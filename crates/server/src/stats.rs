//! Lock-free server counters and the snapshot served over the protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dummyloc_lbs::query::QueryKind;
use serde::{Deserialize, Serialize};

/// Histogram bucket upper bounds in microseconds; one implicit overflow
/// bucket follows the last entry.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 100_000,
];

const BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;
const KINDS: usize = 3;

const KIND_LABELS: [&str; KINDS] = ["nearest_poi", "pois_in_range", "next_bus"];

fn kind_index(query: &QueryKind) -> usize {
    match query {
        QueryKind::NearestPoi { .. } => 0,
        QueryKind::PoisInRange { .. } => 1,
        QueryKind::NextBus => 2,
    }
}

/// Counters shared by every worker and connection thread. All plain
/// relaxed atomics: the numbers are monotone tallies, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    positions: AtomicU64,
    rejects: AtomicU64,
    protocol_errors: AtomicU64,
    connections: AtomicU64,
    deadline_expired_queued: AtomicU64,
    deadline_expired_inflight: AtomicU64,
    busy_rejects: AtomicU64,
    idle_reaped: AtomicU64,
    dedup_hits: AtomicU64,
    faults_dropped: AtomicU64,
    faults_delayed: AtomicU64,
    faults_truncated: AtomicU64,
    faults_corrupted: AtomicU64,
    faults_stalled: AtomicU64,
    faults_refused_accepts: AtomicU64,
    latency: Latency,
}

/// Newtype so `ServerStats` can keep deriving `Default` (arrays of atomics
/// have no `Default` impl of their own).
#[derive(Debug)]
struct Latency([[AtomicU64; BUCKETS]; KINDS]);

impl Default for Latency {
    fn default() -> Self {
        Latency(std::array::from_fn(|_| {
            std::array::from_fn(|_| AtomicU64::new(0))
        }))
    }
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One answered query: `positions` answers produced after `latency`
    /// in queue + service.
    pub fn record_answer(&self, query: &QueryKind, positions: usize, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.positions
            .fetch_add(positions as u64, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| us <= ub)
            .unwrap_or(BUCKETS - 1);
        self.latency.0[kind_index(query)][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// One query bounced off the full work queue.
    pub fn record_reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// One malformed / oversized / out-of-protocol frame.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// One queued job cancelled because its deadline expired before a
    /// worker picked it up.
    pub fn record_deadline_queued(&self) {
        self.deadline_expired_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// One job whose deadline expired while a worker was computing it.
    pub fn record_deadline_inflight(&self) {
        self.deadline_expired_inflight
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One connection bounced off the accept gate with `Busy`.
    pub fn record_busy(&self) {
        self.busy_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// One idle connection reaped.
    pub fn record_idle_reap(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// One retried query whose duplicate report the observer log skipped.
    pub fn record_dedup_hit(&self) {
        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One reply frame dropped by fault injection.
    pub fn record_fault_dropped(&self) {
        self.faults_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// One reply frame delayed by fault injection.
    pub fn record_fault_delayed(&self) {
        self.faults_delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// One reply frame truncated by fault injection.
    pub fn record_fault_truncated(&self) {
        self.faults_truncated.fetch_add(1, Ordering::Relaxed);
    }

    /// One reply frame corrupted by fault injection.
    pub fn record_fault_corrupted(&self) {
        self.faults_corrupted.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection stalled by fault injection.
    pub fn record_fault_stalled(&self) {
        self.faults_stalled.fetch_add(1, Ordering::Relaxed);
    }

    /// One accepted connection refused by fault injection.
    pub fn record_fault_refused(&self) {
        self.faults_refused_accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            positions: self.positions.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            deadline_expired_queued: self.deadline_expired_queued.load(Ordering::Relaxed),
            deadline_expired_inflight: self.deadline_expired_inflight.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            faults: FaultCounters {
                dropped: self.faults_dropped.load(Ordering::Relaxed),
                delayed: self.faults_delayed.load(Ordering::Relaxed),
                truncated: self.faults_truncated.load(Ordering::Relaxed),
                corrupted: self.faults_corrupted.load(Ordering::Relaxed),
                stalled: self.faults_stalled.load(Ordering::Relaxed),
                refused_accepts: self.faults_refused_accepts.load(Ordering::Relaxed),
            },
            latency: (0..KINDS)
                .map(|k| KindHistogram {
                    kind: KIND_LABELS[k].to_string(),
                    bucket_upper_us: LATENCY_BUCKETS_US.to_vec(),
                    counts: self.latency.0[k]
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Serialized counter values (the payload of a `Stats` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Queries answered.
    pub requests: u64,
    /// Positions answered (truth and dummies alike — the paper's `k+1`
    /// cost multiplier shows up here).
    pub positions: u64,
    /// Queries rejected with `Overloaded`.
    pub rejects: u64,
    /// Malformed / oversized / out-of-protocol frames seen.
    pub protocol_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Queued jobs cancelled because their deadline expired before a
    /// worker picked them up.
    pub deadline_expired_queued: u64,
    /// Jobs whose deadline expired while a worker was computing them.
    pub deadline_expired_inflight: u64,
    /// Connections bounced off the accept gate with `Busy`.
    pub busy_rejects: u64,
    /// Idle connections reaped.
    pub idle_reaped: u64,
    /// Retried queries whose duplicate observer-log report was skipped.
    pub dedup_hits: u64,
    /// Injected-fault tallies (all zero when no fault plan is active).
    pub faults: FaultCounters,
    /// Per-query-kind latency histogram.
    pub latency: Vec<KindHistogram>,
}

/// Tallies of injected faults, one per fault kind, so a chaos run can
/// assert every configured fault actually fired.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Reply frames silently dropped.
    pub dropped: u64,
    /// Reply frames delayed before transmission.
    pub delayed: u64,
    /// Reply frames truncated mid-line.
    pub truncated: u64,
    /// Reply frames with corrupted bytes.
    pub corrupted: u64,
    /// Connections that stopped transmitting (stalled).
    pub stalled: u64,
    /// Accepted connections refused (closed without a handshake).
    pub refused_accepts: u64,
}

/// Latency histogram of one query kind. `counts` has one entry per bound
/// in `bucket_upper_us` plus a final overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindHistogram {
    /// Query-kind label (`nearest_poi`, `pois_in_range`, `next_bus`).
    pub kind: String,
    /// Inclusive upper bounds in microseconds.
    pub bucket_upper_us: Vec<u64>,
    /// Observations per bucket (last entry = over the largest bound).
    pub counts: Vec<u64>,
}

impl StatsSnapshot {
    /// Total histogram observations of one kind (should equal the number
    /// of answered queries of that kind).
    pub fn histogram_total(&self, kind: &str) -> u64 {
        self.latency
            .iter()
            .filter(|h| h.kind == kind)
            .flat_map(|h| h.counts.iter())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_bucket() {
        let s = ServerStats::new();
        s.record_connection();
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(30));
        s.record_answer(&QueryKind::NextBus, 4, Duration::from_micros(400));
        s.record_answer(
            &QueryKind::PoisInRange { radius: 10.0 },
            2,
            Duration::from_secs(5),
        );
        s.record_reject();
        s.record_protocol_error();
        s.record_deadline_queued();
        s.record_deadline_inflight();
        s.record_busy();
        s.record_idle_reap();
        s.record_dedup_hit();
        s.record_fault_dropped();
        s.record_fault_delayed();
        s.record_fault_truncated();
        s.record_fault_corrupted();
        s.record_fault_stalled();
        s.record_fault_refused();
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.positions, 10);
        assert_eq!(snap.rejects, 1);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.deadline_expired_queued, 1);
        assert_eq!(snap.deadline_expired_inflight, 1);
        assert_eq!(snap.busy_rejects, 1);
        assert_eq!(snap.idle_reaped, 1);
        assert_eq!(snap.dedup_hits, 1);
        let all_one = FaultCounters {
            dropped: 1,
            delayed: 1,
            truncated: 1,
            corrupted: 1,
            stalled: 1,
            refused_accepts: 1,
        };
        assert_eq!(snap.faults, all_one);
        assert_eq!(snap.histogram_total("next_bus"), 2);
        let bus = &snap.latency[2];
        assert_eq!(bus.counts[0], 1); // 30 µs ≤ 50 µs
        assert_eq!(bus.counts[3], 1); // 400 µs ≤ 500 µs
        let range = &snap.latency[1];
        assert_eq!(*range.counts.last().unwrap(), 1); // 5 s overflows
                                                      // Round-trips through the wire format.
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
