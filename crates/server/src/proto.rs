//! The typed protocol vocabulary and its version story.
//!
//! A connection opens with a `Hello` exchange carrying the client's
//! protocol version; the server negotiates down to any version in
//! [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and echoes the
//! version it accepted. The server answers queries out of order (frames
//! carry client-chosen `id`s), rejects work it cannot queue with a typed
//! [`ServerFrame::Overloaded`], and reports protocol violations with
//! [`ServerFrame::Error`] frames. Frames longer than the configured cap
//! are rejected *before* being buffered in full, so a hostile peer
//! cannot balloon server memory with one giant frame.
//!
//! The *bytes* of a frame are the [`crate::codec`] module's business:
//! protocol v3 carries these frames as newline-delimited JSON lines,
//! protocol v4 as length-prefixed checksummed binary. The JSON helpers
//! re-exported here ([`write_frame`], [`FrameReader`]) are kept as the
//! stable v3 surface — they are thin wrappers over the codec pinned to
//! the JSON transport.

use std::io::{self, Read, Write};

use dummyloc_core::client::Request;
use dummyloc_lbs::query::{QueryKind, ServiceResponse};
use dummyloc_telemetry::RegistrySnapshot;
use serde::{Deserialize, Serialize};

use crate::codec::{self, RawEvent, RawFrame};
use crate::stats::StatsSnapshot;

/// Version spoken by this build. Bumped on any incompatible frame change.
/// Version 2 added per-query deadlines plus the `Deadline` and `Busy`
/// server frames. Version 3 added the `Metrics` exchange serving the full
/// telemetry registry snapshot. Version 4 is the binary transport: the
/// same frames length-prefix-framed and checksummed instead of JSON-on-a-
/// line, plus first-class request batching ([`ClientFrame::Batch`]).
///
/// Within v4, the `retry_after_ms` hint on [`ServerFrame::Overloaded`]
/// and [`ServerFrame::Busy`] is a *compatible* extension: JSON omits the
/// field when absent and ignores it when unknown, and the binary decoder
/// accepts both the old short payload and the extended one — so the
/// version number did not move.
pub const PROTOCOL_VERSION: u32 = 4;

/// Oldest version the server still serves. Version 3 clients speak JSON
/// and never send `Batch`; both remain fully supported via negotiation.
pub const MIN_PROTOCOL_VERSION: u32 = 3;

/// Default per-frame size cap (bytes, excluding the newline).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// Frames a client may send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Opening handshake; must be the first frame on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// One service round: answer every position of `request`.
    Query {
        /// Client-chosen correlation id, echoed in the reply. Doubles as
        /// the *idempotency key*: a retried query resends the same id, and
        /// the server's observer log records each `(pseudonym, id)` pair
        /// at most once. Clients must therefore never reuse an id for a
        /// different logical request of the same pseudonym.
        id: u64,
        /// Service time of the round (seconds).
        t: f64,
        /// Time budget in wall-clock milliseconds from server receipt;
        /// work not finished inside it is answered with
        /// [`ServerFrame::Deadline`] instead (queued jobs are cancelled).
        /// `None` leaves the budget to the server's default.
        deadline_ms: Option<u64>,
        /// The paper's message `S`: pseudonym plus `k+1` positions.
        request: Request,
        /// What to ask about each position.
        query: QueryKind,
    },
    /// Several independent queries in one frame (protocol v4). Each entry
    /// is answered individually — `Answer`/`Overloaded`/`Deadline` frames
    /// per id, in any order — so a batch amortizes framing and syscalls
    /// without changing reply semantics. The paper's 1+k-positions
    /// message for a whole fleet tick maps naturally onto one `Batch`.
    Batch {
        /// The batched queries; ids follow the same idempotency rules as
        /// [`ClientFrame::Query`].
        queries: Vec<QuerySpec>,
    },
    /// Request a counters snapshot.
    Stats,
    /// Request the full telemetry registry snapshot (every named counter,
    /// gauge and histogram) — what `dummyloc metrics <addr>` scrapes.
    Metrics,
    /// Orderly goodbye.
    Bye,
}

/// One query inside a [`ClientFrame::Batch`] — the same fields as
/// [`ClientFrame::Query`], as a standalone value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Client-chosen correlation id / idempotency key.
    pub id: u64,
    /// Service time of the round (seconds).
    pub t: f64,
    /// Per-query deadline in milliseconds; `None` uses the server default.
    pub deadline_ms: Option<u64>,
    /// The paper's message `S`: pseudonym plus `k+1` positions.
    pub request: Request,
    /// What to ask about each position.
    pub query: QueryKind,
}

/// Frames the server may send.
// Frames are transient wire objects, decoded, handled and dropped one at a
// time — the size skew from the inline `StatsSnapshot` never sits in a hot
// collection, so boxing it would only complicate every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Handshake acknowledgement.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Reply to a [`ClientFrame::Query`] — one answer per position.
    Answer {
        /// The query's correlation id.
        id: u64,
        /// One [`dummyloc_lbs::query::Answer`] per reported position.
        response: ServiceResponse,
    },
    /// Reply to [`ClientFrame::Stats`].
    Stats {
        /// Counter values at snapshot time.
        snapshot: StatsSnapshot,
    },
    /// Reply to [`ClientFrame::Metrics`].
    Metrics {
        /// The server's full metric registry at snapshot time.
        snapshot: RegistrySnapshot,
    },
    /// The query was rejected without being processed — the bounded work
    /// queue was full, the admission controller predicted its deadline
    /// could not survive the queue wait, or queue aging shed it. Safe to
    /// retry after the hinted delay.
    Overloaded {
        /// The rejected query's correlation id.
        id: u64,
        /// Server-computed backoff hint in milliseconds: the predicted
        /// time until the queue has drained enough for a retry to be
        /// worth sending. `None` from pre-hint servers (the JSON key is
        /// absent and the binary payload ends early — both decode to
        /// `None`); clients fall back to their own exponential backoff.
        retry_after_ms: Option<u64>,
    },
    /// The query's deadline expired before an answer was produced. Queued
    /// work is cancelled; either way no answer follows for this id and the
    /// request is safe to retry.
    Deadline {
        /// The expired query's correlation id.
        id: u64,
    },
    /// The accept gate is full; the connection is closed immediately after
    /// this frame. Reconnect after a backoff.
    Busy {
        /// The server's connection cap.
        limit: u64,
        /// Server-computed backoff hint in milliseconds (same contract as
        /// [`ServerFrame::Overloaded::retry_after_ms`]).
        retry_after_ms: Option<u64>,
    },
    /// The peer broke the protocol.
    Error {
        /// The offending query id, when one could be parsed.
        id: Option<u64>,
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Categories of [`ServerFrame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The frame was not valid JSON or not a known frame.
    Malformed,
    /// The frame exceeded the server's size cap.
    FrameTooLarge,
    /// Handshake version differs from the server's.
    VersionMismatch,
    /// The connection exceeded its per-connection request budget.
    TooManyRequests,
    /// The connection sat idle past the server's reap timeout and was
    /// closed.
    IdleTimeout,
    /// The worker answering this query panicked. The panic was contained,
    /// the worker respawned, and only this query was lost; it is safe to
    /// retry under the same id.
    Internal,
}

/// Serializes one frame and writes it as a single JSON line (the v3
/// transport). Delegates to [`codec::write_json_frame`].
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, frame: &T) -> io::Result<()> {
    codec::write_json_frame(w, frame)
}

/// What [`FrameReader::next_frame`] produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// One complete line (without the newline).
    Frame(String),
    /// The peer closed the connection cleanly.
    Eof,
    /// The current line exceeded the size cap; the stream is no longer
    /// line-synchronized and the connection should be closed.
    TooLarge,
}

/// Incremental *JSON line* reader: [`codec::FrameReader`] pinned to the
/// JSON transport. It enforces the frame-size cap *while* reading,
/// survives read timeouts (a timeout leaves any partial line buffered for
/// the next call — the server uses this to poll its shutdown flag without
/// dropping bytes), and never errors on arbitrary input bytes: any byte
/// soup is just lines. For transport auto-detection (v4 binary) use
/// [`codec::FrameReader::auto`].
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: codec::FrameReader<R>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, capping frames at `max_frame_bytes`.
    pub fn new(inner: R, max_frame_bytes: usize) -> Self {
        FrameReader {
            inner: codec::FrameReader::json(inner, max_frame_bytes),
        }
    }

    /// The wrapped stream (e.g. to set socket options).
    pub fn get_ref(&self) -> &R {
        self.inner.get_ref()
    }

    /// Reads until one full line, EOF, or the cap is hit. Timeout errors
    /// (`WouldBlock`/`TimedOut`) propagate as `Err` with the partial line
    /// retained.
    pub fn next_frame(&mut self) -> io::Result<FrameEvent> {
        Ok(match self.inner.next_frame()? {
            RawEvent::Frame(RawFrame::Json(line)) => FrameEvent::Frame(line),
            RawEvent::Frame(RawFrame::Binary(_)) => {
                unreachable!("json-pinned reader produced a binary frame")
            }
            RawEvent::Eof => FrameEvent::Eof,
            RawEvent::TooLarge => FrameEvent::TooLarge,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        use dummyloc_geo::Point;
        let frames = vec![
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ClientFrame::Query {
                id: 7,
                t: 30.0,
                deadline_ms: Some(250),
                request: Request {
                    pseudonym: "p1".into(),
                    positions: vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)],
                },
                query: QueryKind::NextBus,
            },
            ClientFrame::Batch {
                queries: vec![QuerySpec {
                    id: 8,
                    t: 60.0,
                    deadline_ms: None,
                    request: Request {
                        pseudonym: "p2".into(),
                        positions: vec![Point::new(5.0, 6.0)],
                    },
                    query: QueryKind::NearestPoi { category: None },
                }],
            },
            ClientFrame::Stats,
            ClientFrame::Metrics,
            ClientFrame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut reader = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        for f in &frames {
            let FrameEvent::Frame(line) = reader.next_frame().unwrap() else {
                panic!("expected frame");
            };
            let back: ClientFrame = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, f);
        }
        assert!(matches!(reader.next_frame().unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn oversized_line_is_rejected_without_buffering_it_all() {
        // 1 MiB of garbage on one line against a 1 KiB cap: rejected after
        // roughly one cap's worth of reading, not after swallowing the MiB.
        let big = vec![b'x'; 1 << 20];
        let mut reader = FrameReader::new(&big[..], 1024);
        assert!(matches!(reader.next_frame().unwrap(), FrameEvent::TooLarge));
    }

    #[test]
    fn partial_lines_survive_split_reads() {
        struct TwoChunks<'a>(Vec<&'a [u8]>);
        impl Read for TwoChunks<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                let c = self.0.remove(0);
                buf[..c.len()].copy_from_slice(c);
                Ok(c.len())
            }
        }
        let mut reader = FrameReader::new(TwoChunks(vec![b"hel", b"lo\nwor", b"ld\n"]), 64);
        let FrameEvent::Frame(a) = reader.next_frame().unwrap() else {
            panic!()
        };
        let FrameEvent::Frame(b) = reader.next_frame().unwrap() else {
            panic!()
        };
        assert_eq!(a, "hello");
        assert_eq!(b, "world");
        assert!(matches!(reader.next_frame().unwrap(), FrameEvent::Eof));
    }
}
