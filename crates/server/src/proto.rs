//! The wire protocol: newline-delimited, length-checked JSON frames.
//!
//! Every frame is one JSON value on one line. A connection opens with a
//! `Hello` exchange carrying [`PROTOCOL_VERSION`]; the server answers
//! queries out of order (frames carry client-chosen `id`s), rejects work
//! it cannot queue with a typed [`ServerFrame::Overloaded`], and reports
//! protocol violations with [`ServerFrame::Error`] frames. Frames longer
//! than the configured cap are rejected *before* being buffered in full,
//! so a hostile peer cannot balloon server memory with one giant line.

use std::io::{self, Read, Write};

use dummyloc_core::client::Request;
use dummyloc_lbs::query::{QueryKind, ServiceResponse};
use dummyloc_telemetry::RegistrySnapshot;
use serde::{Deserialize, Serialize};

use crate::stats::StatsSnapshot;

/// Version spoken by this build. Bumped on any incompatible frame change.
/// Version 2 added per-query deadlines plus the `Deadline` and `Busy`
/// server frames. Version 3 added the `Metrics` exchange serving the full
/// telemetry registry snapshot. Version 4 added the `Internal` error kind
/// (a contained worker panic) and the WAL / worker-restart counters in
/// the `Stats` snapshot.
pub const PROTOCOL_VERSION: u32 = 4;

/// Default per-frame size cap (bytes, excluding the newline).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// Frames a client may send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Opening handshake; must be the first frame on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// One service round: answer every position of `request`.
    Query {
        /// Client-chosen correlation id, echoed in the reply. Doubles as
        /// the *idempotency key*: a retried query resends the same id, and
        /// the server's observer log records each `(pseudonym, id)` pair
        /// at most once. Clients must therefore never reuse an id for a
        /// different logical request of the same pseudonym.
        id: u64,
        /// Service time of the round (seconds).
        t: f64,
        /// Time budget in wall-clock milliseconds from server receipt;
        /// work not finished inside it is answered with
        /// [`ServerFrame::Deadline`] instead (queued jobs are cancelled).
        /// `None` leaves the budget to the server's default.
        deadline_ms: Option<u64>,
        /// The paper's message `S`: pseudonym plus `k+1` positions.
        request: Request,
        /// What to ask about each position.
        query: QueryKind,
    },
    /// Request a counters snapshot.
    Stats,
    /// Request the full telemetry registry snapshot (every named counter,
    /// gauge and histogram) — what `dummyloc metrics <addr>` scrapes.
    Metrics,
    /// Orderly goodbye.
    Bye,
}

/// Frames the server may send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Handshake acknowledgement.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Reply to a [`ClientFrame::Query`] — one answer per position.
    Answer {
        /// The query's correlation id.
        id: u64,
        /// One [`dummyloc_lbs::query::Answer`] per reported position.
        response: ServiceResponse,
    },
    /// Reply to [`ClientFrame::Stats`].
    Stats {
        /// Counter values at snapshot time.
        snapshot: StatsSnapshot,
    },
    /// Reply to [`ClientFrame::Metrics`].
    Metrics {
        /// The server's full metric registry at snapshot time.
        snapshot: RegistrySnapshot,
    },
    /// The bounded work queue was full; the query was *not* processed.
    Overloaded {
        /// The rejected query's correlation id.
        id: u64,
    },
    /// The query's deadline expired before an answer was produced. Queued
    /// work is cancelled; either way no answer follows for this id and the
    /// request is safe to retry.
    Deadline {
        /// The expired query's correlation id.
        id: u64,
    },
    /// The accept gate is full; the connection is closed immediately after
    /// this frame. Reconnect after a backoff.
    Busy {
        /// The server's connection cap.
        limit: u64,
    },
    /// The peer broke the protocol.
    Error {
        /// The offending query id, when one could be parsed.
        id: Option<u64>,
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Categories of [`ServerFrame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The frame was not valid JSON or not a known frame.
    Malformed,
    /// The frame exceeded the server's size cap.
    FrameTooLarge,
    /// Handshake version differs from the server's.
    VersionMismatch,
    /// The connection exceeded its per-connection request budget.
    TooManyRequests,
    /// The connection sat idle past the server's reap timeout and was
    /// closed.
    IdleTimeout,
    /// The worker answering this query panicked. The panic was contained,
    /// the worker respawned, and only this query was lost; it is safe to
    /// retry under the same id.
    Internal,
}

/// Serializes one frame and writes it as a single line.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, frame: &T) -> io::Result<()> {
    let line = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// What [`FrameReader::next_frame`] produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// One complete line (without the newline).
    Frame(String),
    /// The peer closed the connection cleanly.
    Eof,
    /// The current line exceeded the size cap; the stream is no longer
    /// line-synchronized and the connection should be closed.
    TooLarge,
}

/// Incremental line reader that enforces the frame-size cap *while*
/// reading and survives read timeouts (a timeout leaves any partial line
/// buffered for the next call — the server uses this to poll its shutdown
/// flag without dropping bytes).
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    max: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, capping frames at `max_frame_bytes`.
    pub fn new(inner: R, max_frame_bytes: usize) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            max: max_frame_bytes,
        }
    }

    /// The wrapped stream (e.g. to set socket options).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads until one full line, EOF, or the cap is hit. Timeout errors
    /// (`WouldBlock`/`TimedOut`) propagate as `Err` with the partial line
    /// retained.
    pub fn next_frame(&mut self) -> io::Result<FrameEvent> {
        loop {
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + nl;
                let line = String::from_utf8_lossy(&self.buf[self.start..end]).into_owned();
                self.start = end + 1;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                return Ok(FrameEvent::Frame(line));
            }
            if self.buf.len() - self.start > self.max {
                return Ok(FrameEvent::TooLarge);
            }
            // Compact consumed bytes before growing the buffer.
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.len() > self.start {
                        // Final unterminated line: deliver it.
                        let line = String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
                        self.buf.clear();
                        self.start = 0;
                        return Ok(FrameEvent::Frame(line));
                    }
                    return Ok(FrameEvent::Eof);
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        use dummyloc_geo::Point;
        let frames = vec![
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ClientFrame::Query {
                id: 7,
                t: 30.0,
                deadline_ms: Some(250),
                request: Request {
                    pseudonym: "p1".into(),
                    positions: vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)],
                },
                query: QueryKind::NextBus,
            },
            ClientFrame::Stats,
            ClientFrame::Metrics,
            ClientFrame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut reader = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        for f in &frames {
            let FrameEvent::Frame(line) = reader.next_frame().unwrap() else {
                panic!("expected frame");
            };
            let back: ClientFrame = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, f);
        }
        assert!(matches!(reader.next_frame().unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn oversized_line_is_rejected_without_buffering_it_all() {
        // 1 MiB of garbage on one line against a 1 KiB cap: rejected after
        // roughly one cap's worth of reading, not after swallowing the MiB.
        let big = vec![b'x'; 1 << 20];
        let mut reader = FrameReader::new(&big[..], 1024);
        assert!(matches!(reader.next_frame().unwrap(), FrameEvent::TooLarge));
    }

    #[test]
    fn partial_lines_survive_split_reads() {
        struct TwoChunks<'a>(Vec<&'a [u8]>);
        impl Read for TwoChunks<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                let c = self.0.remove(0);
                buf[..c.len()].copy_from_slice(c);
                Ok(c.len())
            }
        }
        let mut reader = FrameReader::new(TwoChunks(vec![b"hel", b"lo\nwor", b"ld\n"]), 64);
        let FrameEvent::Frame(a) = reader.next_frame().unwrap() else {
            panic!()
        };
        let FrameEvent::Frame(b) = reader.next_frame().unwrap() else {
            panic!()
        };
        assert_eq!(a, "hello");
        assert_eq!(b, "world");
        assert!(matches!(reader.next_frame().unwrap(), FrameEvent::Eof));
    }
}
