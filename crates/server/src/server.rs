//! The concurrent query service.
//!
//! One acceptor thread hands each connection to its own reader thread; a
//! fixed pool of worker threads consumes a single bounded job queue and
//! answers against a shared read-only [`PoiDatabase`], recording into the
//! [`ShardedLog`]. When the queue is full the reader bounces the query
//! with a typed `Overloaded` frame instead of buffering — backpressure is
//! explicit and memory stays bounded. Shutdown stops accepting, lets
//! readers wind down, and drains every job already queued before workers
//! exit (reply channels stay open while any queued job holds a sender).
//!
//! Two robustness layers ride on top: an optional observer
//! [write-ahead log](crate::wal) makes every acknowledged query durable
//! across a crash (startup replay rebuilds the exact
//! [`ShardedLog`] state), and every worker runs under a supervision loop
//! that contains panics — the affected connection gets a typed
//! [`ErrorKind::Internal`] frame, the worker is respawned, and
//! `server.worker.restarts` counts the incident.
//!
//! Protocol v4 reshapes the hot path without changing those contracts:
//! the per-connection reader auto-detects the transport (binary magic vs
//! JSON) via [`codec::FrameReader::auto`], `Batch` frames fan out into
//! individual jobs, jobs route to *per-worker* queues keyed by pseudonym
//! shard (no multi-consumer contention on one queue), and each worker
//! drains a micro-batch per wakeup so overlapping WAL tickets coalesce
//! into one group-commit `fsync`.

use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use dummyloc_core::client::Request;
use dummyloc_lbs::provider::{answer_request, ObserverLog};
use dummyloc_lbs::query::QueryKind;
use dummyloc_lbs::PoiDatabase;
use dummyloc_store::{
    LogStore, LogStoreConfig, RecoveryInfo, Storage, StoreRecord, StoreStats as BackendStats,
};

use crate::codec::{self, ProtoVersion, RawEvent, Transport};
use crate::error::{Result, ServerError};
use crate::fault::{FaultInjector, FaultPlan, FrameBytes, FrameFate};
use crate::proto::{
    write_frame, ClientFrame, ErrorKind, QuerySpec, ServerFrame, DEFAULT_MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION,
};
use crate::shard::{shard_index, ShardedLog};
use crate::stats::{RejectCause, ServerStats, StatsSnapshot};
use crate::wal::{self, WalConfig, WalRecord, WalTicket, WalWriter};

/// Most jobs one worker drains per wakeup. Bounds reply-latency skew
/// inside a micro-batch while still coalescing WAL flushes.
const WORKER_MICRO_BATCH: usize = 64;

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering queries.
    pub workers: usize,
    /// Observer-log shards.
    pub shards: usize,
    /// Bounded job-queue depth; a full queue answers `Overloaded`.
    pub queue_depth: usize,
    /// Per-frame size cap in bytes.
    pub max_frame_bytes: usize,
    /// Queries one connection may send before being cut off.
    pub max_requests_per_conn: u64,
    /// Concurrent-connection cap; accepts past it are answered with a
    /// `Busy` frame and closed.
    pub max_connections: usize,
    /// Reap connections that sit idle this long. `None` never reaps.
    pub idle_timeout: Option<Duration>,
    /// Deadline applied to queries that carry no `deadline_ms` of their
    /// own. `None` means such queries never expire.
    pub default_deadline: Option<Duration>,
    /// Seeded fault-injection plan for the outbound path (replies and
    /// accepts). The default all-zero plan injects nothing.
    pub faults: FaultPlan,
    /// Test hook: artificial per-job service time, used to provoke
    /// overload deterministically.
    pub worker_delay: Option<Duration>,
    /// Observer write-ahead log. `None` keeps the log memory-only;
    /// `Some` replays the file at startup and appends every committed
    /// observer record before its `Answer` frame is sent.
    pub wal: Option<WalConfig>,
    /// Durable observer store. `None` keeps durability WAL-only (or off).
    /// `Some` opens a [`LogStore`] at startup, recovers the observer
    /// state from its manifest, replays only the WAL records *past* the
    /// store's last durable sequence, and from then on appends every
    /// committed observer record to both; each successful memtable flush
    /// truncates the WAL, so the WAL stays a short tail instead of the
    /// full history.
    pub store: Option<LogStoreConfig>,
    /// Test hook: a worker panics when it serves a query whose pseudonym
    /// equals this value — the deterministic trigger the supervision
    /// tests use.
    pub panic_pseudonym: Option<String>,
    /// Newest protocol level this server negotiates. The default
    /// ([`ProtoVersion::V4Binary`]) serves both transports; pinning
    /// [`ProtoVersion::V3Json`] refuses binary connections with a typed
    /// `VersionMismatch`, which is how `serve --proto v3` behaves.
    pub max_proto: ProtoVersion,
    /// Deadline-aware admission control. When on (the default), a query
    /// whose deadline budget is smaller than the predicted queue wait —
    /// the per-kind EWMA of service time times the target worker's queue
    /// depth — is bounced with `Overloaded` *at enqueue time*, before it
    /// can waste a queue slot and a worker wakeup only to expire.
    /// Queries without a deadline are never admission-rejected.
    pub admission: bool,
    /// CoDel-style queue aging: a queued job whose sojourn exceeded this
    /// target is shed with `Overloaded` at dequeue (as long as newer work
    /// is waiting behind it), bounding how stale the work a worker spends
    /// time on can get. `None` (the default) disables shedding.
    pub codel_target: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 8,
            queue_depth: 1024,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_requests_per_conn: u64::MAX,
            max_connections: 1024,
            idle_timeout: None,
            default_deadline: None,
            faults: FaultPlan::none(),
            worker_delay: None,
            wal: None,
            store: None,
            panic_pseudonym: None,
            max_proto: ProtoVersion::V4Binary,
            admission: true,
            codel_target: None,
        }
    }
}

impl ServerConfig {
    /// Rejects nonsensical knob values before any socket is bound.
    pub fn validate(&self) -> Result<()> {
        let err = |message: String| Err(ServerError::Config { message });
        if self.workers == 0 {
            return err("workers must be at least 1".into());
        }
        if self.queue_depth == 0 {
            return err("queue-depth must be at least 1".into());
        }
        if self.max_connections == 0 {
            return err("max-connections must be at least 1".into());
        }
        if self.max_frame_bytes < 64 {
            return err("max-frame-bytes must be at least 64".into());
        }
        if let Err(message) = self.faults.validate() {
            return err(message);
        }
        if let Some(wal) = &self.wal {
            if wal.fsync == crate::wal::FsyncPolicy::EveryN(0) {
                return err("wal fsync interval must be at least 1".into());
            }
        }
        if let Some(store) = &self.store {
            if let Err(e) = store.validate() {
                return err(format!("store: {e}"));
            }
        }
        if self.codel_target == Some(Duration::ZERO) {
            return err("codel-target must be positive (omit it to disable shedding)".into());
        }
        Ok(())
    }
}

/// Backoff hints never promise a retry sooner than this…
const MIN_RETRY_HINT_MS: u64 = 1;
/// …or later than this.
const MAX_RETRY_HINT_MS: u64 = 5_000;
/// EWMA smoothing: `new = old + (sample - old) / 8`.
const EWMA_SHIFT: u32 = 3;

/// The shared overload state: per-kind service-time EWMAs feeding the
/// admission predictor and every `retry_after_ms` hint, plus the drain
/// flag that flips the whole plane into go-away mode.
#[derive(Debug, Default)]
struct OverloadControl {
    /// EWMA of service time per query kind, microseconds, updated by
    /// workers as they finish jobs. Zero = no sample yet (cold start
    /// admits everything — the controller only ever rejects on evidence).
    ewma_us: [AtomicU64; 3],
    draining: AtomicBool,
}

fn kind_slot(query: &QueryKind) -> usize {
    match query {
        QueryKind::NearestPoi { .. } => 0,
        QueryKind::PoisInRange { .. } => 1,
        QueryKind::NextBus => 2,
    }
}

impl OverloadControl {
    /// Folds one measured service time into the kind's EWMA and returns
    /// the new value.
    fn observe(&self, query: &QueryKind, service_us: u64) -> u64 {
        let slot = &self.ewma_us[kind_slot(query)];
        // Racy read-modify-write is fine: the EWMA is a heuristic and
        // every lost update is replaced by the next sample.
        let old = slot.load(Ordering::Relaxed);
        let new = if old == 0 {
            service_us
        } else {
            old + (service_us >> EWMA_SHIFT) - (old >> EWMA_SHIFT)
        };
        slot.store(new, Ordering::Relaxed);
        new
    }

    /// Current EWMA for a kind (microseconds; 0 = cold).
    fn ewma_us(&self, query: &QueryKind) -> u64 {
        self.ewma_us[kind_slot(query)].load(Ordering::Relaxed)
    }

    /// Slowest kind's EWMA — the pessimistic horizon used where no kind
    /// is known (the accept gate).
    fn max_ewma_us(&self) -> u64 {
        self.ewma_us
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Predicted queue wait for a job landing behind `depth` queued jobs
    /// of the same shard: EWMA service time × depth.
    fn predicted_wait(&self, query: &QueryKind, depth: usize) -> Duration {
        Duration::from_micros(self.ewma_us(query).saturating_mul(depth as u64))
    }

    /// The `retry_after_ms` hint for a bounce seen at queue depth
    /// `depth`: the predicted time for the backlog (plus the bounced job)
    /// to drain, clamped into a sane band so a cold EWMA still hints a
    /// minimal pause and a catastrophic backlog does not banish a client.
    fn retry_hint_ms(&self, ewma_us: u64, depth: usize) -> u64 {
        (ewma_us.saturating_mul(depth as u64 + 1) / 1_000)
            .clamp(MIN_RETRY_HINT_MS, MAX_RETRY_HINT_MS)
    }

    fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// One unit of work: a parsed query plus the channel its reply goes to.
struct Job {
    id: u64,
    t: f64,
    request: Request,
    query: QueryKind,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: Sender<ServerFrame>,
}

/// The durability sinks, held under one mutex so the WAL append, the
/// store append and any flush-triggered WAL truncation happen atomically
/// with respect to other workers. Sequence stamps are taken *inside*
/// this lock (see `serve_job`), which is what guarantees both files see
/// records in nondecreasing `seq` order — the contract tail replay and
/// [`Storage::append`] rely on.
#[derive(Debug, Default)]
struct Durable {
    wal: Option<WalWriter>,
    store: Option<LogStore>,
    /// Set when a store append failed: the WAL is then the only complete
    /// copy of the history and must never be truncated again.
    store_missed: bool,
}

impl Durable {
    /// Persists one committed observer record to whichever sinks are
    /// configured, returning the WAL ticket the caller must wait out
    /// *outside* the durability lock — that hand-off is what lets
    /// concurrent workers share one group-commit `fsync`. A flush that
    /// made the memtable durable lets the WAL be emptied: everything in
    /// it up to this record is now in a committed segment.
    fn append(&mut self, record: &WalRecord, stats: &ServerStats) -> Option<WalTicket> {
        let mut ticket = None;
        if let Some(w) = &mut self.wal {
            match w.append_group(record) {
                Ok(t) => {
                    stats.record_wal_append();
                    ticket = Some(t);
                }
                Err(_) => stats.record_wal_error(),
            }
        }
        let Some(s) = &mut self.store else {
            return ticket;
        };
        let out = s.append(StoreRecord {
            t: record.t,
            seq: record.seq,
            request_id: record.request_id,
            request: record.request.clone(),
        });
        let st = s.store_stats();
        stats.set_store_occupancy(st.segments, st.memtable_bytes);
        stats.set_store_dir_fsync_errors(st.dir_fsync_errors);
        match out {
            Ok(outcome) => {
                stats.record_store_append();
                if outcome.flushed {
                    stats.record_store_flush();
                    self.truncate_wal(stats);
                }
            }
            Err(_) => {
                self.store_missed = true;
                stats.record_store_error();
            }
        }
        ticket
    }

    /// Empties the WAL after its contents became durable in the store.
    fn truncate_wal(&mut self, stats: &ServerStats) {
        if self.store_missed {
            return;
        }
        if let Some(w) = &mut self.wal {
            match w.truncate() {
                Ok(()) => stats.record_store_wal_truncation(),
                Err(_) => stats.record_wal_error(),
            }
        }
    }
}

/// A running server. Dropping the handle leaves the server running
/// detached; call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    overload: Arc<OverloadControl>,
    stats: Arc<ServerStats>,
    log: Arc<ShardedLog>,
    durable: Option<Arc<Mutex<Durable>>>,
    store_recovery: Option<StoreRecoverySummary>,
    // Held only to observe queue occupancy during a drain; dropped in
    // `shutdown` before the workers are joined so their queues close.
    job_txs: Vec<Sender<Job>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

/// What startup recovery restored — the numbers the CLI prints on boot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreRecoverySummary {
    /// Records already durable in store segments (not re-read; the
    /// manifest alone restores their digests and idempotency keys).
    pub durable_records: u64,
    /// Segment files referenced by the committed manifest.
    pub segments: u64,
    /// Pseudonym streams with durable state.
    pub streams: u64,
    /// Orphan segment files (crash leftovers) deleted at open.
    pub orphans_removed: u64,
    /// WAL-tail records replayed on top of the durable state.
    pub tail_replayed: u64,
    /// Wall-clock milliseconds the whole recovery took.
    pub recovery_ms: u64,
}

/// Maps a store failure at startup into the server's error type.
fn store_error(e: dummyloc_store::StoreError) -> ServerError {
    ServerError::Config {
        message: format!("store: {e}"),
    }
}

/// Final state returned by [`ServerHandle::shutdown`] after the drain.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Counter values after every queued job completed.
    pub stats: StatsSnapshot,
    /// The complete merged observer log.
    pub log: ObserverLog,
    /// Sorted per-pseudonym digests as the (flushed) durable store sees
    /// them; `None` when no store was configured. Equal to the merged
    /// log's digests whenever the store kept up (the invariant the
    /// equivalence tests pin down).
    pub store_digests: Option<Vec<(String, u64)>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The telemetry registry the server's counters live on — the same
    /// snapshot the protocol's `Metrics` frame serves.
    pub fn registry(&self) -> &Arc<dummyloc_telemetry::MetricRegistry> {
        self.stats.registry()
    }

    /// Merged copy of the observer log as recorded so far.
    pub fn observer_log(&self) -> ObserverLog {
        self.log.merged()
    }

    /// Per-pseudonym stream digests as the durable store sees them
    /// (memtable included), sorted by pseudonym. `None` when no store is
    /// configured. When a store is on, this is the durability authority
    /// the crash tests compare against.
    pub fn store_digests(&self) -> Option<Vec<(String, u64)>> {
        let durable = self.durable.as_ref()?;
        let guard = durable.lock();
        let store = guard.store.as_ref()?;
        let mut digests = store.stream_digests();
        digests.sort();
        Some(digests)
    }

    /// Occupancy snapshot of the durable store (`None` without one).
    pub fn store_stats(&self) -> Option<BackendStats> {
        let durable = self.durable.as_ref()?;
        let guard = durable.lock();
        Some(guard.store.as_ref()?.store_stats())
    }

    /// What startup recovery restored (`None` without a store).
    pub fn store_recovery(&self) -> Option<StoreRecoverySummary> {
        self.store_recovery
    }

    /// Flips the server into drain mode without stopping it: the accept
    /// gate answers every new connection `Busy` (with a retry hint), and
    /// established connections bounce *new* queries with hinted
    /// `Overloaded` frames while in-flight and queued work is still
    /// answered. Idempotent; [`ServerHandle::drain`] calls it.
    pub fn start_drain(&self) {
        self.overload.set_draining();
    }

    /// Whether drain mode is on.
    pub fn is_draining(&self) -> bool {
        self.overload.is_draining()
    }

    /// Graceful drain: stop admitting work ([`ServerHandle::start_drain`]),
    /// wait up to `grace` for the queues to empty — every job already
    /// accepted is answered — then run the full [`ServerHandle::shutdown`]
    /// sequence, which flushes the store, truncates and syncs the WAL,
    /// and joins every thread. On a quiet server this returns as soon as
    /// the backlog clears, not after the full grace period.
    pub fn drain(self, grace: Duration) -> ShutdownReport {
        self.start_drain();
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline {
            if self.job_txs.iter().all(|tx| tx.is_empty()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shutdown()
    }

    /// Graceful stop: stop accepting, let connections wind down, drain
    /// every queued job, then join all threads.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        // The acceptor's sender clones died with it; releasing the
        // handle's own lets the worker queues close and drain out.
        self.job_txs.clear();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        // The compactor checks the shutdown flag between merges; joining
        // it before the final flush means no background manifest swap
        // races the orderly-stop flush below.
        if let Some(c) = self.compactor.take() {
            let _ = c.join();
        }
        // Whatever the fsync policy, an orderly stop leaves every durable
        // sink consistent: the store flushes its memtable into a
        // committed segment (emptying the WAL), and the WAL is synced.
        if let Some(d) = &self.durable {
            let mut d = d.lock();
            match d.store.as_mut().map(|s| s.flush()) {
                None => {}
                Some(Ok(out)) => {
                    if out.segment.is_some() {
                        self.stats.record_store_flush();
                    }
                    d.truncate_wal(&self.stats);
                }
                Some(Err(_)) => {
                    d.store_missed = true;
                    self.stats.record_store_error();
                }
            }
            if let Some(w) = &mut d.wal {
                let _ = w.sync();
            }
        }
        let store_digests = self.store_digests();
        ShutdownReport {
            stats: self.stats.snapshot(),
            log: self.log.merged(),
            store_digests,
        }
    }
}

/// Binds and starts a server over `pois`, returning once it accepts
/// connections.
pub fn spawn(config: ServerConfig, pois: PoiDatabase) -> Result<ServerHandle> {
    config.validate()?;
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let overload = Arc::new(OverloadControl::default());
    let stats = Arc::new(ServerStats::new());
    let log = Arc::new(ShardedLog::new(config.shards));
    let pois = Arc::new(pois);
    // Per-worker bounded queues, routed by pseudonym shard: one producer
    // set, one consumer each, no cross-worker contention, and a user's
    // queries always serialize onto the same worker (so per-pseudonym
    // observer-log order is the arrival order).
    let worker_count = config.workers.max(1);
    let per_worker_depth = (config.queue_depth.max(1) / worker_count).max(1);
    let (job_txs, job_rxs): (Vec<Sender<Job>>, Vec<Receiver<Job>>) = (0..worker_count)
        .map(|_| channel::bounded::<Job>(per_worker_depth))
        .unzip();

    // Recovery runs before the first connection is accepted, in two
    // layers. With a store, its committed manifest restores the durable
    // state — stream digests, idempotency keys and the arrival sequence
    // — without reading one record payload, and the WAL then replays
    // only the short tail past the store's last durable sequence.
    // Without a store, the WAL replays the full history as before.
    let recovery_started = Instant::now();
    let mut store_recovery = None;
    let durable = if config.wal.is_none() && config.store.is_none() {
        None
    } else {
        let mut summary = StoreRecoverySummary::default();
        let mut store = match &config.store {
            None => None,
            Some(sc) => {
                let (store, info) = LogStore::open(sc.clone()).map_err(store_error)?;
                for (pseudonym, ids) in store.seen_ids() {
                    log.preload_stream(&pseudonym, &ids);
                }
                if let Some(last) = store.last_durable_seq() {
                    log.advance_seq(last + 1);
                }
                let RecoveryInfo {
                    durable_records,
                    segments,
                    streams,
                    orphans_removed,
                } = info;
                summary.durable_records = durable_records;
                summary.segments = segments;
                summary.streams = streams;
                summary.orphans_removed = orphans_removed;
                Some(store)
            }
        };
        let store_last_durable = store.as_ref().and_then(|s| s.last_durable_seq());
        let wal_writer = match &config.wal {
            None => None,
            Some(wc) => {
                let replay_summary = wal::replay_vfs(&*wc.vfs, &wc.path, |r| {
                    // Records at or below the store's durable frontier are
                    // already in a committed segment (the crash landed
                    // between a flush and the WAL truncation); only the
                    // tail past it is news.
                    if store_last_durable.is_some_and(|last| r.seq <= last) {
                        return;
                    }
                    // The store's copy is built as a typed record *before*
                    // `log.replay` consumes the request, so the two sinks
                    // can never disagree about what was replayed and no
                    // ordering change here can leave the store arm holding
                    // nothing to append.
                    let for_store = store.as_ref().map(|_| StoreRecord {
                        t: r.t,
                        seq: r.seq,
                        request_id: r.request_id,
                        request: r.request.clone(),
                    });
                    if log.replay(r.t, r.seq, r.request_id, r.request) {
                        stats.record_wal_replayed();
                        summary.tail_replayed += 1;
                        if let (Some(s), Some(record)) = (&mut store, for_store) {
                            match s.append(record) {
                                Ok(_) => stats.record_store_replayed(),
                                Err(_) => stats.record_store_error(),
                            }
                        }
                    }
                })?;
                if replay_summary.torn {
                    stats.record_wal_torn(replay_summary.truncated_bytes);
                }
                Some(WalWriter::open(wc)?)
            }
        };
        let mut durable = Durable {
            wal: wal_writer,
            store,
            store_missed: false,
        };
        // The whole tail is in the store now: flush it into a committed
        // segment and reset the WAL, so the next crash replays only
        // records newer than this boot.
        match durable.store.as_mut().map(|s| s.flush()) {
            None => {}
            Some(Ok(out)) => {
                if out.segment.is_some() {
                    stats.record_store_flush();
                }
                durable.truncate_wal(&stats);
            }
            Some(Err(_)) => {
                durable.store_missed = true;
                stats.record_store_error();
            }
        }
        if let Some(s) = &durable.store {
            let st = s.store_stats();
            stats.set_store_occupancy(st.segments, st.memtable_bytes);
            stats.set_store_dir_fsync_errors(st.dir_fsync_errors);
            summary.recovery_ms = recovery_started.elapsed().as_millis() as u64;
            stats.set_store_recovery_ms(summary.recovery_ms);
            store_recovery = Some(summary);
        }
        Some(Arc::new(Mutex::new(durable)))
    };

    let workers = job_rxs
        .into_iter()
        .map(|rx| {
            let pois = Arc::clone(&pois);
            let log = Arc::clone(&log);
            let stats = Arc::clone(&stats);
            let delay = config.worker_delay;
            let durable = durable.clone();
            let panic_pseudonym = config.panic_pseudonym.clone();
            let overload = Arc::clone(&overload);
            let codel = config.codel_target;
            std::thread::spawn(move || {
                // Supervision loop: one `worker_loop` call is one worker
                // incarnation. A contained panic retires it and the next
                // iteration is the respawned replacement over the same
                // queue — no job other than the panicking one is lost.
                while let WorkerExit::Panicked = worker_loop(
                    &rx,
                    &pois,
                    &log,
                    &stats,
                    delay,
                    durable.as_ref(),
                    panic_pseudonym.as_deref(),
                    &overload,
                    codel,
                ) {}
            })
        })
        .collect();

    // Background size-tiered compactor: only when a store is on and the
    // policy is enabled. Same supervision contract as the workers — a
    // contained panic respawns the loop and bumps `worker.restarts`.
    let compact_tiers = config.store.as_ref().map_or(0, |s| s.compact_tiers);
    let compactor = match (&durable, compact_tiers) {
        (Some(durable), tiers) if tiers > 0 => {
            let durable = Arc::clone(durable);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            Some(std::thread::spawn(move || {
                while let WorkerExit::Panicked = compactor_loop(&durable, &stats, &shutdown) {}
            }))
        }
        _ => None,
    };

    let accept = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let overload = Arc::clone(&overload);
        let job_txs = job_txs.clone();
        std::thread::spawn(move || {
            accept_loop(listener, config, job_txs, stats, shutdown, overload)
        })
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        overload,
        stats,
        log,
        durable,
        store_recovery,
        job_txs,
        accept: Some(accept),
        workers,
        compactor,
    })
}

/// How long the compactor sleeps when no tier is full. Short enough that
/// a burst of flushes is folded down promptly, long enough to stay off
/// the durability lock on an idle server.
const COMPACTOR_IDLE: Duration = Duration::from_millis(10);

/// One incarnation of the background compactor. Split-phase: the plan is
/// taken under the durability lock, the merge I/O runs with the lock
/// *released* (segment files are immutable and the output is invisible
/// until committed), and only the manifest swap re-takes the lock. A
/// plan invalidated while unlocked (an explicit `compact()` ran
/// underneath) commits as `Ok(None)` and simply retries.
fn compactor_loop(
    durable: &Arc<Mutex<Durable>>,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
) -> WorkerExit {
    let exit = panic::catch_unwind(AssertUnwindSafe(|| {
        while !shutdown.load(Ordering::SeqCst) {
            let plan = {
                let mut d = durable.lock();
                d.store.as_mut().and_then(|s| s.tiered_plan())
            };
            let Some(plan) = plan else {
                std::thread::sleep(COMPACTOR_IDLE);
                continue;
            };
            let segments_in = plan.inputs() as u64;
            let merged = plan.merge();
            let mut d = durable.lock();
            let Some(s) = d.store.as_mut() else { continue };
            match merged.and_then(|m| s.commit_tiered(m)) {
                Ok(Some(out)) => {
                    stats.record_store_tiered_compaction(segments_in, out.bytes);
                    let st = s.store_stats();
                    stats.set_store_occupancy(st.segments, st.memtable_bytes);
                    stats.set_store_dir_fsync_errors(st.dir_fsync_errors);
                }
                Ok(None) => {}
                Err(_) => stats.record_store_error(),
            }
        }
    }));
    match exit {
        Ok(()) => WorkerExit::Drained,
        Err(_) => {
            stats.record_worker_restart();
            WorkerExit::Panicked
        }
    }
}

/// Why one worker incarnation ended.
enum WorkerExit {
    /// The job queue closed and drained — orderly shutdown.
    Drained,
    /// A job panicked; the supervision loop should respawn the worker.
    Panicked,
}

/// Best-effort text of a panic payload (`panic!` with a literal or a
/// formatted string covers practically all of them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: &Receiver<Job>,
    pois: &Arc<PoiDatabase>,
    log: &Arc<ShardedLog>,
    stats: &Arc<ServerStats>,
    delay: Option<Duration>,
    durable: Option<&Arc<Mutex<Durable>>>,
    panic_pseudonym: Option<&str>,
    overload: &Arc<OverloadControl>,
    codel_target: Option<Duration>,
) -> WorkerExit {
    // One iteration = one micro-batch: block for the first job, opportun-
    // istically drain more, prepare them all (appending WAL bytes under
    // the durability lock but *not* flushing), then wait out the WAL
    // tickets together — overlapping tickets coalesce into one leader
    // `fsync` — and only then release the reply frames. Durability still
    // strictly precedes acknowledgement; it is just amortized.
    //
    // The loop ends when every job sender (acceptor + connections) is
    // gone and the queue is drained — exactly the shutdown contract.
    let mut panicked = false;
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while jobs.len() < WORKER_MICRO_BATCH {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        let mut replies: Vec<(Sender<ServerFrame>, ServerFrame, Option<WalTicket>)> =
            Vec::with_capacity(jobs.len());
        let batch_len = jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            let id = job.id;
            let reply = job.reply.clone();
            // CoDel-flavoured queue aging: a job that sat queued longer
            // than the sojourn target is shed with a hinted `Overloaded`
            // instead of being computed — stale work is the first thing a
            // saturated server should stop doing. Two carve-outs keep the
            // policy safe: a job whose *deadline* already expired goes
            // through `prepare_job` so it is counted (and answered) as a
            // deadline miss, not a shed; and the very last pending job is
            // always served so a drained queue makes forward progress —
            // shedding everything would collapse goodput to zero.
            if let Some(target) = codel_target {
                let more_pending = i + 1 < batch_len || !rx.is_empty();
                let expired = job.deadline.is_some_and(|dl| Instant::now() > dl);
                if job.enqueued.elapsed() > target && more_pending && !expired {
                    stats.record_reject(RejectCause::Shed);
                    let hint = overload.retry_hint_ms(overload.ewma_us(&job.query), rx.len());
                    replies.push((
                        reply,
                        ServerFrame::Overloaded {
                            id,
                            retry_after_ms: Some(hint),
                        },
                        None,
                    ));
                    continue;
                }
            }
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                prepare_job(
                    job,
                    pois,
                    log,
                    stats,
                    delay,
                    durable,
                    panic_pseudonym,
                    overload,
                )
            }));
            match outcome {
                Ok((frame, ticket)) => replies.push((reply, frame, ticket)),
                Err(payload) => {
                    // The panic reaches exactly one connection, as a typed
                    // frame; the rest of the batch is still served before
                    // the supervision loop respawns this worker.
                    stats.record_worker_restart();
                    replies.push((
                        reply,
                        ServerFrame::Error {
                            id: Some(id),
                            kind: ErrorKind::Internal,
                            message: format!("worker panicked: {}", panic_message(&*payload)),
                        },
                        None,
                    ));
                    panicked = true;
                }
            }
        }
        for (_, _, ticket) in &replies {
            if let Some(t) = ticket {
                match t.wait() {
                    Ok(true) => stats.record_wal_sync(),
                    Ok(false) => {}
                    Err(_) => stats.record_wal_error(),
                }
            }
        }
        for (reply, frame, _) in replies {
            let _ = reply.send(frame);
        }
        if panicked {
            return WorkerExit::Panicked;
        }
    }
    WorkerExit::Drained
}

/// Computes one job's reply frame and stages its durability, *without*
/// sending anything: the caller owns ticket waiting and frame delivery so
/// a whole micro-batch shares the flush.
#[allow(clippy::too_many_arguments)]
fn prepare_job(
    job: Job,
    pois: &PoiDatabase,
    log: &ShardedLog,
    stats: &ServerStats,
    delay: Option<Duration>,
    durable: Option<&Arc<Mutex<Durable>>>,
    panic_pseudonym: Option<&str>,
    overload: &OverloadControl,
) -> (ServerFrame, Option<WalTicket>) {
    // Queued-expiry cancellation: a job whose deadline passed while it
    // waited is answered with `Deadline` and never computed or logged.
    if job.deadline.is_some_and(|dl| Instant::now() > dl) {
        stats.record_deadline_queued();
        return (ServerFrame::Deadline { id: job.id }, None);
    }
    if panic_pseudonym.is_some_and(|p| p == job.request.pseudonym) {
        panic!("injected panic for pseudonym {:?}", job.request.pseudonym);
    }
    let service_start = Instant::now();
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    let response = answer_request(pois, job.t, &job.request, &job.query);
    // Feed the admission predictor: per-kind EWMA of observed service
    // time (injected delay included — it models compute cost).
    let service_us = u64::try_from(service_start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let ewma = overload.observe(&job.query, service_us);
    stats.set_ewma_service_us(&job.query, ewma);
    // In-flight expiry: the answer exists but arrived too late to send.
    // It is not logged either — the observer sees only what was served.
    if job.deadline.is_some_and(|dl| Instant::now() > dl) {
        stats.record_deadline_inflight();
        return (ServerFrame::Deadline { id: job.id }, None);
    }
    let positions = job.request.positions.len();
    // The query id doubles as the idempotency key: a retried query is
    // answered again but recorded in the observer log (and the durable
    // sinks) only once — which is what makes replay-after-crash
    // dedup-safe.
    let mut ticket = None;
    match durable {
        None => {
            if log.record_unique_seq(job.t, job.id, job.request).is_none() {
                stats.record_dedup_hit();
            }
        }
        Some(d) => {
            let record_request = job.request.clone();
            // The durable lock is held *across* the sequence-stamping
            // record call, so the WAL and the store see records in the
            // same nondecreasing seq order the stamps were issued in —
            // the contract store recovery (tail replay past the durable
            // frontier) depends on. The flush wait happens on the ticket
            // *outside* this lock, in the worker's batch pass.
            let mut d = d.lock();
            match log.record_unique_seq(job.t, job.id, job.request) {
                None => stats.record_dedup_hit(),
                Some(seq) => {
                    let record = WalRecord {
                        t: job.t,
                        seq,
                        request_id: Some(job.id),
                        request: record_request,
                    };
                    ticket = d.append(&record, stats);
                }
            }
        }
    }
    stats.record_answer(&job.query, positions, job.enqueued.elapsed());
    (
        ServerFrame::Answer {
            id: job.id,
            response,
        },
        ticket,
    )
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    job_txs: Vec<Sender<Job>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    overload: Arc<OverloadControl>,
) {
    let injector = FaultInjector::from_plan(&config.faults);
    let active = Arc::new(AtomicUsize::new(0));
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = incoming else { continue };
        if let Some(inj) = &injector {
            if inj.refuse_accept(&stats) {
                // Refused-accept fault: close without a word, like a
                // listener whose SYN backlog overflowed.
                continue;
            }
        }
        // Both refusal paths carry a server-computed backoff hint: the
        // predicted time to work off everything currently queued, which
        // is exactly how long a well-behaved client should stay away.
        let queued: usize = job_txs.iter().map(|tx| tx.len()).sum();
        let hint = overload.retry_hint_ms(overload.max_ewma_us(), queued);
        if overload.is_draining() {
            // Draining: in-flight work is still being answered but no new
            // connection may join. `Busy` (not a hard error) tells a
            // retrying client to find another replica or come back later.
            stats.record_busy();
            let _ = write_frame(
                &mut stream,
                &ServerFrame::Busy {
                    limit: config.max_connections as u64,
                    retry_after_ms: Some(hint),
                },
            );
            continue;
        }
        if active.load(Ordering::SeqCst) >= config.max_connections {
            stats.record_busy();
            let _ = write_frame(
                &mut stream,
                &ServerFrame::Busy {
                    limit: config.max_connections as u64,
                    retry_after_ms: Some(hint),
                },
            );
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        stats.record_connection();
        let cfg = config.clone();
        let job_txs = job_txs.clone();
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let injector = injector.clone();
        let active = Arc::clone(&active);
        let overload = Arc::clone(&overload);
        conns.push(std::thread::spawn(move || {
            connection_loop(stream, cfg, job_txs, stats, shutdown, injector, overload);
            active.fetch_sub(1, Ordering::SeqCst);
        }));
        conns.retain(|h| !h.is_finished());
    }
    drop(job_txs);
    for c in conns {
        let _ = c.join();
    }
}

/// Writer-side transport flag values (`AtomicU8`): the reader thread
/// publishes the detected transport, the writer thread encodes per it.
/// Unknown encodes as JSON — the only frames sent pre-detection are
/// handshake-phase errors a JSON peer can read and a binary peer's
/// auto-detecting reply reader tolerates.
const TRANSPORT_UNKNOWN: u8 = 0;
const TRANSPORT_JSON: u8 = 1;
const TRANSPORT_BINARY: u8 = 2;

#[allow(clippy::too_many_arguments)]
fn connection_loop(
    stream: TcpStream,
    cfg: ServerConfig,
    job_txs: Vec<Sender<Job>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    injector: Option<Arc<FaultInjector>>,
    overload: Arc<OverloadControl>,
) {
    let _ = stream.set_nodelay(true);
    // Short read timeout so the reader can poll the shutdown flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let transport_flag = Arc::new(AtomicU8::new(TRANSPORT_UNKNOWN));
    let (reply_tx, reply_rx) = channel::unbounded::<ServerFrame>();
    let writer = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let transport_flag = Arc::clone(&transport_flag);
        std::thread::spawn(move || {
            let mut w = BufWriter::new(write_half);
            // Once a stall fault fires, the connection withholds this frame
            // and every later one while the socket stays open — the reply
            // channel keeps draining so queued workers never block on it.
            let mut stalled = false;
            let mut magic_sent = false;
            for frame in reply_rx.iter() {
                if stalled {
                    continue;
                }
                let transport = if transport_flag.load(Ordering::Acquire) == TRANSPORT_BINARY {
                    Transport::Binary
                } else {
                    Transport::Json
                };
                // The reply stream mirrors the request stream's preamble:
                // one magic sequence before the first binary frame flips
                // the client's auto-detecting reader into binary mode.
                // JSON frames only precede it on connections the server
                // is about to close (Busy, handshake refusals), so a
                // surviving binary reply stream always opens with magic.
                if transport == Transport::Binary && !magic_sent {
                    if w.write_all(&codec::BINARY_MAGIC).is_err() {
                        break;
                    }
                    magic_sent = true;
                }
                let Ok(bytes) = codec::encode_server_frame(&frame, transport) else {
                    break;
                };
                match &injector {
                    None => {
                        if w.write_all(&bytes).and_then(|_| w.flush()).is_err() {
                            break;
                        }
                    }
                    Some(inj) => {
                        let fb = match transport {
                            Transport::Binary => FrameBytes::Binary(&bytes),
                            Transport::Json => {
                                // Strip the trailing newline: the injector
                                // owns JSON line termination.
                                let Ok(line) = std::str::from_utf8(&bytes[..bytes.len() - 1])
                                else {
                                    break;
                                };
                                FrameBytes::Json(line)
                            }
                        };
                        match inj.transmit(&mut w, fb, &stats, &shutdown) {
                            Ok(FrameFate::Stall) => stalled = true,
                            Ok(_) => {}
                            Err(_) => break,
                        }
                    }
                }
            }
        })
    };

    let mut reader = codec::FrameReader::auto(stream, cfg.max_frame_bytes);
    let mut greeted = false;
    let mut served: u64 = 0;
    let mut last_activity = Instant::now();
    'conn: loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let event = match reader.next_frame() {
            Ok(ev) => ev,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(idle) = cfg.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        stats.record_idle_reap();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: None,
                            kind: ErrorKind::IdleTimeout,
                            message: format!("idle longer than {} ms", idle.as_millis()),
                        });
                        break;
                    }
                }
                continue;
            }
            // Framing-level binary errors (bad magic, checksum mismatch):
            // the stream is not trustworthy, close without a frame.
            Err(_) => break,
        };
        // Publish the transport the reader detected. A binary connection
        // against a JSON-pinned server is refused right here, before any
        // frame is decoded — the refusal itself goes out as JSON, which
        // the client's auto-detecting reply reader handles.
        match reader.transport() {
            Some(Transport::Binary) => {
                if cfg.max_proto != ProtoVersion::V4Binary {
                    stats.record_protocol_error();
                    let _ = reply_tx.send(ServerFrame::Error {
                        id: None,
                        kind: ErrorKind::VersionMismatch,
                        message: format!(
                            "server speaks protocol {} (json); binary framing needs v4",
                            cfg.max_proto
                        ),
                    });
                    break;
                }
                transport_flag.store(TRANSPORT_BINARY, Ordering::Release);
            }
            Some(Transport::Json) => {
                transport_flag.store(TRANSPORT_JSON, Ordering::Release);
            }
            None => {}
        }
        last_activity = Instant::now();
        let raw = match event {
            RawEvent::Eof => break,
            RawEvent::TooLarge => {
                stats.record_protocol_error();
                let _ = reply_tx.send(ServerFrame::Error {
                    id: None,
                    kind: ErrorKind::FrameTooLarge,
                    message: format!("frame exceeds {} bytes", cfg.max_frame_bytes),
                });
                break;
            }
            RawEvent::Frame(raw) => raw,
        };
        match codec::decode_client_frame(&raw) {
            Err(e) => {
                stats.record_protocol_error();
                let _ = reply_tx.send(ServerFrame::Error {
                    id: None,
                    kind: ErrorKind::Malformed,
                    message: e.to_string(),
                });
                break;
            }
            Ok(ClientFrame::Hello { version }) => {
                let max = cfg.max_proto.version();
                if !(MIN_PROTOCOL_VERSION..=max).contains(&version) {
                    stats.record_protocol_error();
                    let _ = reply_tx.send(ServerFrame::Error {
                        id: None,
                        kind: ErrorKind::VersionMismatch,
                        message: format!(
                            "server speaks versions {MIN_PROTOCOL_VERSION}..={max}, client sent {version}"
                        ),
                    });
                    break;
                }
                greeted = true;
                // Echo the *client's* version: the negotiated level is
                // the one both ends speak.
                let _ = reply_tx.send(ServerFrame::Hello { version });
            }
            Ok(ClientFrame::Stats) => {
                let _ = reply_tx.send(ServerFrame::Stats {
                    snapshot: stats.snapshot(),
                });
            }
            Ok(ClientFrame::Metrics) => {
                let _ = reply_tx.send(ServerFrame::Metrics {
                    snapshot: stats.registry().snapshot(),
                });
            }
            Ok(ClientFrame::Bye) => break,
            Ok(ClientFrame::Query {
                id,
                t,
                deadline_ms,
                request,
                query,
            }) => {
                let spec = QuerySpec {
                    id,
                    t,
                    deadline_ms,
                    request,
                    query,
                };
                if enqueue_query(
                    spec,
                    &cfg,
                    &job_txs,
                    &reply_tx,
                    &stats,
                    &overload,
                    &mut greeted,
                    &mut served,
                )
                .is_break()
                {
                    break 'conn;
                }
            }
            Ok(ClientFrame::Batch { queries }) => {
                stats.record_batch();
                for spec in queries {
                    if enqueue_query(
                        spec,
                        &cfg,
                        &job_txs,
                        &reply_tx,
                        &stats,
                        &overload,
                        &mut greeted,
                        &mut served,
                    )
                    .is_break()
                    {
                        break 'conn;
                    }
                }
            }
        }
    }
    // In-flight jobs still hold reply senders; the writer drains every
    // queued answer before exiting.
    drop(reply_tx);
    let _ = writer.join();
}

/// Validates and enqueues one query (standalone or batch member) onto its
/// pseudonym shard's worker queue. `Break` means the connection must
/// close (protocol violation or a dead queue).
#[allow(clippy::too_many_arguments)]
fn enqueue_query(
    spec: QuerySpec,
    cfg: &ServerConfig,
    job_txs: &[Sender<Job>],
    reply_tx: &Sender<ServerFrame>,
    stats: &ServerStats,
    overload: &OverloadControl,
    greeted: &mut bool,
    served: &mut u64,
) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow;
    if !*greeted {
        stats.record_protocol_error();
        let _ = reply_tx.send(ServerFrame::Error {
            id: Some(spec.id),
            kind: ErrorKind::Malformed,
            message: "Hello must precede Query".to_string(),
        });
        return ControlFlow::Break(());
    }
    *served += 1;
    if *served > cfg.max_requests_per_conn {
        stats.record_protocol_error();
        let _ = reply_tx.send(ServerFrame::Error {
            id: Some(spec.id),
            kind: ErrorKind::TooManyRequests,
            message: format!("connection exceeded {} requests", cfg.max_requests_per_conn),
        });
        return ControlFlow::Break(());
    }
    let budget = spec
        .deadline_ms
        .map(Duration::from_millis)
        .or(cfg.default_deadline);
    let worker = shard_index(&spec.request.pseudonym, job_txs.len());
    let depth = job_txs[worker].len();
    // A drain-mode server answers what it already accepted but takes on
    // nothing new, even on established connections. Counted under the
    // admission cause: the decision is "don't enqueue", same as below.
    if overload.is_draining() {
        stats.record_reject(RejectCause::Admission);
        let hint = overload.retry_hint_ms(overload.ewma_us(&spec.query), depth);
        let _ = reply_tx.send(ServerFrame::Overloaded {
            id: spec.id,
            retry_after_ms: Some(hint),
        });
        return ControlFlow::Continue(());
    }
    // Deadline-aware admission: if the predicted queue wait (per-kind
    // service-time EWMA × shard depth) already exceeds the deadline
    // budget, the request is doomed — reject it *now*, before it wastes
    // a queue slot and a worker's time producing a `Deadline` miss. A
    // cold EWMA (no observations yet) predicts zero and admits
    // everything, so an idle server never speculatively bounces.
    if cfg.admission {
        if let Some(budget) = budget {
            if overload.predicted_wait(&spec.query, depth) > budget {
                stats.record_reject(RejectCause::Admission);
                let hint = overload.retry_hint_ms(overload.ewma_us(&spec.query), depth);
                let _ = reply_tx.send(ServerFrame::Overloaded {
                    id: spec.id,
                    retry_after_ms: Some(hint),
                });
                return ControlFlow::Continue(());
            }
        }
    }
    let job = Job {
        id: spec.id,
        t: spec.t,
        request: spec.request,
        query: spec.query,
        enqueued: Instant::now(),
        deadline: budget.map(|d| Instant::now() + d),
        reply: reply_tx.clone(),
    };
    match job_txs[worker].try_send(job) {
        Ok(()) => ControlFlow::Continue(()),
        Err(TrySendError::Full(job)) => {
            stats.record_reject(RejectCause::QueueFull);
            let hint = overload.retry_hint_ms(overload.ewma_us(&job.query), depth);
            let _ = reply_tx.send(ServerFrame::Overloaded {
                id: job.id,
                retry_after_ms: Some(hint),
            });
            ControlFlow::Continue(())
        }
        Err(TrySendError::Disconnected(_)) => ControlFlow::Break(()),
    }
}
