//! The concurrent query service.
//!
//! One acceptor thread hands each connection to its own reader thread; a
//! fixed pool of worker threads consumes a single bounded job queue and
//! answers against a shared read-only [`PoiDatabase`], recording into the
//! [`ShardedLog`]. When the queue is full the reader bounces the query
//! with a typed `Overloaded` frame instead of buffering — backpressure is
//! explicit and memory stays bounded. Shutdown stops accepting, lets
//! readers wind down, and drains every job already queued before workers
//! exit (reply channels stay open while any queued job holds a sender).
//!
//! Two robustness layers ride on top: an optional observer
//! [write-ahead log](crate::wal) makes every acknowledged query durable
//! across a crash (startup replay rebuilds the exact
//! [`ShardedLog`] state), and every worker runs under a supervision loop
//! that contains panics — the affected connection gets a typed
//! [`ErrorKind::Internal`] frame, the worker is respawned, and
//! `server.worker.restarts` counts the incident.

use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use dummyloc_core::client::Request;
use dummyloc_lbs::provider::{answer_request, ObserverLog};
use dummyloc_lbs::query::QueryKind;
use dummyloc_lbs::PoiDatabase;
use dummyloc_store::{
    LogStore, LogStoreConfig, RecoveryInfo, Storage, StoreRecord, StoreStats as BackendStats,
};

use crate::error::{Result, ServerError};
use crate::fault::{FaultInjector, FaultPlan, FrameFate};
use crate::proto::{
    write_frame, ClientFrame, ErrorKind, FrameEvent, FrameReader, ServerFrame,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::shard::ShardedLog;
use crate::stats::{ServerStats, StatsSnapshot};
use crate::wal::{self, WalConfig, WalRecord, WalWriter};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering queries.
    pub workers: usize,
    /// Observer-log shards.
    pub shards: usize,
    /// Bounded job-queue depth; a full queue answers `Overloaded`.
    pub queue_depth: usize,
    /// Per-frame size cap in bytes.
    pub max_frame_bytes: usize,
    /// Queries one connection may send before being cut off.
    pub max_requests_per_conn: u64,
    /// Concurrent-connection cap; accepts past it are answered with a
    /// `Busy` frame and closed.
    pub max_connections: usize,
    /// Reap connections that sit idle this long. `None` never reaps.
    pub idle_timeout: Option<Duration>,
    /// Deadline applied to queries that carry no `deadline_ms` of their
    /// own. `None` means such queries never expire.
    pub default_deadline: Option<Duration>,
    /// Seeded fault-injection plan for the outbound path (replies and
    /// accepts). The default all-zero plan injects nothing.
    pub faults: FaultPlan,
    /// Test hook: artificial per-job service time, used to provoke
    /// overload deterministically.
    pub worker_delay: Option<Duration>,
    /// Observer write-ahead log. `None` keeps the log memory-only;
    /// `Some` replays the file at startup and appends every committed
    /// observer record before its `Answer` frame is sent.
    pub wal: Option<WalConfig>,
    /// Durable observer store. `None` keeps durability WAL-only (or off).
    /// `Some` opens a [`LogStore`] at startup, recovers the observer
    /// state from its manifest, replays only the WAL records *past* the
    /// store's last durable sequence, and from then on appends every
    /// committed observer record to both; each successful memtable flush
    /// truncates the WAL, so the WAL stays a short tail instead of the
    /// full history.
    pub store: Option<LogStoreConfig>,
    /// Test hook: a worker panics when it serves a query whose pseudonym
    /// equals this value — the deterministic trigger the supervision
    /// tests use.
    pub panic_pseudonym: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 8,
            queue_depth: 1024,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_requests_per_conn: u64::MAX,
            max_connections: 1024,
            idle_timeout: None,
            default_deadline: None,
            faults: FaultPlan::none(),
            worker_delay: None,
            wal: None,
            store: None,
            panic_pseudonym: None,
        }
    }
}

impl ServerConfig {
    /// Rejects nonsensical knob values before any socket is bound.
    pub fn validate(&self) -> Result<()> {
        let err = |message: String| Err(ServerError::Config { message });
        if self.workers == 0 {
            return err("workers must be at least 1".into());
        }
        if self.queue_depth == 0 {
            return err("queue-depth must be at least 1".into());
        }
        if self.max_connections == 0 {
            return err("max-connections must be at least 1".into());
        }
        if self.max_frame_bytes < 64 {
            return err("max-frame-bytes must be at least 64".into());
        }
        if let Err(message) = self.faults.validate() {
            return err(message);
        }
        if let Some(wal) = &self.wal {
            if wal.fsync == crate::wal::FsyncPolicy::EveryN(0) {
                return err("wal fsync interval must be at least 1".into());
            }
        }
        if let Some(store) = &self.store {
            if let Err(e) = store.validate() {
                return err(format!("store: {e}"));
            }
        }
        Ok(())
    }
}

/// One unit of work: a parsed query plus the channel its reply goes to.
struct Job {
    id: u64,
    t: f64,
    request: Request,
    query: QueryKind,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: Sender<ServerFrame>,
}

/// The durability sinks, held under one mutex so the WAL append, the
/// store append and any flush-triggered WAL truncation happen atomically
/// with respect to other workers. Sequence stamps are taken *inside*
/// this lock (see `serve_job`), which is what guarantees both files see
/// records in nondecreasing `seq` order — the contract tail replay and
/// [`Storage::append`] rely on.
#[derive(Debug, Default)]
struct Durable {
    wal: Option<WalWriter>,
    store: Option<LogStore>,
    /// Set when a store append failed: the WAL is then the only complete
    /// copy of the history and must never be truncated again.
    store_missed: bool,
}

impl Durable {
    /// Persists one committed observer record to whichever sinks are
    /// configured. A flush that made the memtable durable lets the WAL
    /// be emptied: everything in it up to this record is now in a
    /// committed segment.
    fn append(&mut self, record: &WalRecord, stats: &ServerStats) {
        if let Some(w) = &mut self.wal {
            match w.append(record) {
                Ok(()) => stats.record_wal_append(),
                Err(_) => stats.record_wal_error(),
            }
        }
        let Some(s) = &mut self.store else { return };
        let out = s.append(StoreRecord {
            t: record.t,
            seq: record.seq,
            request_id: record.request_id,
            request: record.request.clone(),
        });
        let st = s.store_stats();
        stats.set_store_occupancy(st.segments, st.memtable_bytes);
        match out {
            Ok(outcome) => {
                stats.record_store_append();
                if outcome.flushed {
                    stats.record_store_flush();
                    self.truncate_wal(stats);
                }
            }
            Err(_) => {
                self.store_missed = true;
                stats.record_store_error();
            }
        }
    }

    /// Empties the WAL after its contents became durable in the store.
    fn truncate_wal(&mut self, stats: &ServerStats) {
        if self.store_missed {
            return;
        }
        if let Some(w) = &mut self.wal {
            match w.truncate() {
                Ok(()) => stats.record_store_wal_truncation(),
                Err(_) => stats.record_wal_error(),
            }
        }
    }
}

/// A running server. Dropping the handle leaves the server running
/// detached; call [`ServerHandle::shutdown`] for an orderly stop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    log: Arc<ShardedLog>,
    durable: Option<Arc<Mutex<Durable>>>,
    store_recovery: Option<StoreRecoverySummary>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// What startup recovery restored — the numbers the CLI prints on boot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreRecoverySummary {
    /// Records already durable in store segments (not re-read; the
    /// manifest alone restores their digests and idempotency keys).
    pub durable_records: u64,
    /// Segment files referenced by the committed manifest.
    pub segments: u64,
    /// Pseudonym streams with durable state.
    pub streams: u64,
    /// Orphan segment files (crash leftovers) deleted at open.
    pub orphans_removed: u64,
    /// WAL-tail records replayed on top of the durable state.
    pub tail_replayed: u64,
    /// Wall-clock milliseconds the whole recovery took.
    pub recovery_ms: u64,
}

/// Maps a store failure at startup into the server's error type.
fn store_error(e: dummyloc_store::StoreError) -> ServerError {
    ServerError::Config {
        message: format!("store: {e}"),
    }
}

/// Final state returned by [`ServerHandle::shutdown`] after the drain.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Counter values after every queued job completed.
    pub stats: StatsSnapshot,
    /// The complete merged observer log.
    pub log: ObserverLog,
    /// Sorted per-pseudonym digests as the (flushed) durable store sees
    /// them; `None` when no store was configured. Equal to the merged
    /// log's digests whenever the store kept up (the invariant the
    /// equivalence tests pin down).
    pub store_digests: Option<Vec<(String, u64)>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The telemetry registry the server's counters live on — the same
    /// snapshot the protocol's `Metrics` frame serves.
    pub fn registry(&self) -> &Arc<dummyloc_telemetry::MetricRegistry> {
        self.stats.registry()
    }

    /// Merged copy of the observer log as recorded so far.
    pub fn observer_log(&self) -> ObserverLog {
        self.log.merged()
    }

    /// Per-pseudonym stream digests as the durable store sees them
    /// (memtable included), sorted by pseudonym. `None` when no store is
    /// configured. When a store is on, this is the durability authority
    /// the crash tests compare against.
    pub fn store_digests(&self) -> Option<Vec<(String, u64)>> {
        let durable = self.durable.as_ref()?;
        let guard = durable.lock();
        let store = guard.store.as_ref()?;
        let mut digests = store.stream_digests();
        digests.sort();
        Some(digests)
    }

    /// Occupancy snapshot of the durable store (`None` without one).
    pub fn store_stats(&self) -> Option<BackendStats> {
        let durable = self.durable.as_ref()?;
        let guard = durable.lock();
        Some(guard.store.as_ref()?.store_stats())
    }

    /// What startup recovery restored (`None` without a store).
    pub fn store_recovery(&self) -> Option<StoreRecoverySummary> {
        self.store_recovery
    }

    /// Graceful stop: stop accepting, let connections wind down, drain
    /// every queued job, then join all threads.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        // Whatever the fsync policy, an orderly stop leaves every durable
        // sink consistent: the store flushes its memtable into a
        // committed segment (emptying the WAL), and the WAL is synced.
        if let Some(d) = &self.durable {
            let mut d = d.lock();
            match d.store.as_mut().map(|s| s.flush()) {
                None => {}
                Some(Ok(out)) => {
                    if out.segment.is_some() {
                        self.stats.record_store_flush();
                    }
                    d.truncate_wal(&self.stats);
                }
                Some(Err(_)) => {
                    d.store_missed = true;
                    self.stats.record_store_error();
                }
            }
            if let Some(w) = &mut d.wal {
                let _ = w.sync();
            }
        }
        let store_digests = self.store_digests();
        ShutdownReport {
            stats: self.stats.snapshot(),
            log: self.log.merged(),
            store_digests,
        }
    }
}

/// Binds and starts a server over `pois`, returning once it accepts
/// connections.
pub fn spawn(config: ServerConfig, pois: PoiDatabase) -> Result<ServerHandle> {
    config.validate()?;
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::new());
    let log = Arc::new(ShardedLog::new(config.shards));
    let pois = Arc::new(pois);
    let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_depth.max(1));

    // Recovery runs before the first connection is accepted, in two
    // layers. With a store, its committed manifest restores the durable
    // state — stream digests, idempotency keys and the arrival sequence
    // — without reading one record payload, and the WAL then replays
    // only the short tail past the store's last durable sequence.
    // Without a store, the WAL replays the full history as before.
    let recovery_started = Instant::now();
    let mut store_recovery = None;
    let durable = if config.wal.is_none() && config.store.is_none() {
        None
    } else {
        let mut summary = StoreRecoverySummary::default();
        let mut store = match &config.store {
            None => None,
            Some(sc) => {
                let (store, info) = LogStore::open(sc.clone()).map_err(store_error)?;
                for (pseudonym, ids) in store.seen_ids() {
                    log.preload_stream(&pseudonym, &ids);
                }
                if let Some(last) = store.last_durable_seq() {
                    log.advance_seq(last + 1);
                }
                let RecoveryInfo {
                    durable_records,
                    segments,
                    streams,
                    orphans_removed,
                } = info;
                summary.durable_records = durable_records;
                summary.segments = segments;
                summary.streams = streams;
                summary.orphans_removed = orphans_removed;
                Some(store)
            }
        };
        let store_last_durable = store.as_ref().and_then(|s| s.last_durable_seq());
        let wal_writer = match &config.wal {
            None => None,
            Some(wc) => {
                let replay_summary = wal::replay(&wc.path, |r| {
                    // Records at or below the store's durable frontier are
                    // already in a committed segment (the crash landed
                    // between a flush and the WAL truncation); only the
                    // tail past it is news.
                    if store_last_durable.is_some_and(|last| r.seq <= last) {
                        return;
                    }
                    let for_store = store.as_ref().map(|_| r.request.clone());
                    if log.replay(r.t, r.seq, r.request_id, r.request) {
                        stats.record_wal_replayed();
                        summary.tail_replayed += 1;
                        if let Some(s) = &mut store {
                            match s.append(StoreRecord {
                                t: r.t,
                                seq: r.seq,
                                request_id: r.request_id,
                                request: for_store.expect("cloned when the store is on"),
                            }) {
                                Ok(_) => stats.record_store_replayed(),
                                Err(_) => stats.record_store_error(),
                            }
                        }
                    }
                })?;
                if replay_summary.torn {
                    stats.record_wal_torn(replay_summary.truncated_bytes);
                }
                Some(WalWriter::open(wc)?)
            }
        };
        let mut durable = Durable {
            wal: wal_writer,
            store,
            store_missed: false,
        };
        // The whole tail is in the store now: flush it into a committed
        // segment and reset the WAL, so the next crash replays only
        // records newer than this boot.
        match durable.store.as_mut().map(|s| s.flush()) {
            None => {}
            Some(Ok(out)) => {
                if out.segment.is_some() {
                    stats.record_store_flush();
                }
                durable.truncate_wal(&stats);
            }
            Some(Err(_)) => {
                durable.store_missed = true;
                stats.record_store_error();
            }
        }
        if let Some(s) = &durable.store {
            let st = s.store_stats();
            stats.set_store_occupancy(st.segments, st.memtable_bytes);
            summary.recovery_ms = recovery_started.elapsed().as_millis() as u64;
            stats.set_store_recovery_ms(summary.recovery_ms);
            store_recovery = Some(summary);
        }
        Some(Arc::new(Mutex::new(durable)))
    };

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let rx = job_rx.clone();
            let pois = Arc::clone(&pois);
            let log = Arc::clone(&log);
            let stats = Arc::clone(&stats);
            let delay = config.worker_delay;
            let durable = durable.clone();
            let panic_pseudonym = config.panic_pseudonym.clone();
            std::thread::spawn(move || {
                // Supervision loop: one `worker_loop` call is one worker
                // incarnation. A contained panic retires it and the next
                // iteration is the respawned replacement over the same
                // queue — no job other than the panicking one is lost.
                while let WorkerExit::Panicked = worker_loop(
                    &rx,
                    &pois,
                    &log,
                    &stats,
                    delay,
                    durable.as_ref(),
                    panic_pseudonym.as_deref(),
                ) {}
            })
        })
        .collect();
    drop(job_rx);

    let accept = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, config, job_tx, stats, shutdown))
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        stats,
        log,
        durable,
        store_recovery,
        accept: Some(accept),
        workers,
    })
}

/// Why one worker incarnation ended.
enum WorkerExit {
    /// The job queue closed and drained — orderly shutdown.
    Drained,
    /// A job panicked; the supervision loop should respawn the worker.
    Panicked,
}

/// Best-effort text of a panic payload (`panic!` with a literal or a
/// formatted string covers practically all of them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

fn worker_loop(
    rx: &Receiver<Job>,
    pois: &Arc<PoiDatabase>,
    log: &Arc<ShardedLog>,
    stats: &Arc<ServerStats>,
    delay: Option<Duration>,
    durable: Option<&Arc<Mutex<Durable>>>,
    panic_pseudonym: Option<&str>,
) -> WorkerExit {
    // Ends when every job sender (acceptor + connections) is gone and the
    // queue is drained — exactly the shutdown contract.
    while let Ok(job) = rx.recv() {
        let id = job.id;
        let reply = job.reply.clone();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            serve_job(job, pois, log, stats, delay, durable, panic_pseudonym)
        }));
        if let Err(payload) = outcome {
            // The panic reaches exactly one connection, as a typed frame;
            // every other connection never notices.
            stats.record_worker_restart();
            let _ = reply.send(ServerFrame::Error {
                id: Some(id),
                kind: ErrorKind::Internal,
                message: format!("worker panicked: {}", panic_message(&*payload)),
            });
            return WorkerExit::Panicked;
        }
    }
    WorkerExit::Drained
}

fn serve_job(
    job: Job,
    pois: &PoiDatabase,
    log: &ShardedLog,
    stats: &ServerStats,
    delay: Option<Duration>,
    durable: Option<&Arc<Mutex<Durable>>>,
    panic_pseudonym: Option<&str>,
) {
    // Queued-expiry cancellation: a job whose deadline passed while it
    // waited is answered with `Deadline` and never computed or logged.
    if job.deadline.is_some_and(|dl| Instant::now() > dl) {
        stats.record_deadline_queued();
        let _ = job.reply.send(ServerFrame::Deadline { id: job.id });
        return;
    }
    if panic_pseudonym.is_some_and(|p| p == job.request.pseudonym) {
        panic!("injected panic for pseudonym {:?}", job.request.pseudonym);
    }
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    let response = answer_request(pois, job.t, &job.request, &job.query);
    // In-flight expiry: the answer exists but arrived too late to send.
    // It is not logged either — the observer sees only what was served.
    if job.deadline.is_some_and(|dl| Instant::now() > dl) {
        stats.record_deadline_inflight();
        let _ = job.reply.send(ServerFrame::Deadline { id: job.id });
        return;
    }
    let positions = job.request.positions.len();
    // The query id doubles as the idempotency key: a retried query is
    // answered again but recorded in the observer log (and the durable
    // sinks) only once — which is what makes replay-after-crash
    // dedup-safe.
    match durable {
        None => {
            if log.record_unique_seq(job.t, job.id, job.request).is_none() {
                stats.record_dedup_hit();
            }
        }
        Some(d) => {
            let record_request = job.request.clone();
            // The durable lock is held *across* the sequence-stamping
            // record call, so the WAL and the store see records in the
            // same nondecreasing seq order the stamps were issued in —
            // the contract store recovery (tail replay past the durable
            // frontier) depends on. Durability before acknowledgement:
            // the record hits the sinks before the Answer frame is
            // queued below.
            let mut d = d.lock();
            match log.record_unique_seq(job.t, job.id, job.request) {
                None => stats.record_dedup_hit(),
                Some(seq) => {
                    let record = WalRecord {
                        t: job.t,
                        seq,
                        request_id: Some(job.id),
                        request: record_request,
                    };
                    d.append(&record, stats);
                }
            }
        }
    }
    stats.record_answer(&job.query, positions, job.enqueued.elapsed());
    let _ = job.reply.send(ServerFrame::Answer {
        id: job.id,
        response,
    });
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    job_tx: Sender<Job>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
) {
    let injector = FaultInjector::from_plan(&config.faults);
    let active = Arc::new(AtomicUsize::new(0));
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = incoming else { continue };
        if let Some(inj) = &injector {
            if inj.refuse_accept(&stats) {
                // Refused-accept fault: close without a word, like a
                // listener whose SYN backlog overflowed.
                continue;
            }
        }
        if active.load(Ordering::SeqCst) >= config.max_connections {
            stats.record_busy();
            let _ = write_frame(
                &mut stream,
                &ServerFrame::Busy {
                    limit: config.max_connections as u64,
                },
            );
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        stats.record_connection();
        let cfg = config.clone();
        let job_tx = job_tx.clone();
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let injector = injector.clone();
        let active = Arc::clone(&active);
        conns.push(std::thread::spawn(move || {
            connection_loop(stream, cfg, job_tx, stats, shutdown, injector);
            active.fetch_sub(1, Ordering::SeqCst);
        }));
        conns.retain(|h| !h.is_finished());
    }
    drop(job_tx);
    for c in conns {
        let _ = c.join();
    }
}

fn connection_loop(
    stream: TcpStream,
    cfg: ServerConfig,
    job_tx: Sender<Job>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    injector: Option<Arc<FaultInjector>>,
) {
    let _ = stream.set_nodelay(true);
    // Short read timeout so the reader can poll the shutdown flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::unbounded::<ServerFrame>();
    let writer = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut w = BufWriter::new(write_half);
            // Once a stall fault fires, the connection withholds this frame
            // and every later one while the socket stays open — the reply
            // channel keeps draining so queued workers never block on it.
            let mut stalled = false;
            for frame in reply_rx.iter() {
                if stalled {
                    continue;
                }
                match &injector {
                    None => {
                        if write_frame(&mut w, &frame).is_err() {
                            break;
                        }
                    }
                    Some(inj) => {
                        let Ok(line) = serde_json::to_string(&frame) else {
                            break;
                        };
                        match inj.transmit(&mut w, &line, &stats, &shutdown) {
                            Ok(FrameFate::Stall) => stalled = true,
                            Ok(_) => {}
                            Err(_) => break,
                        }
                    }
                }
            }
        })
    };

    let mut reader = FrameReader::new(stream, cfg.max_frame_bytes);
    let mut greeted = false;
    let mut served: u64 = 0;
    let mut last_activity = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let event = match reader.next_frame() {
            Ok(ev) => ev,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(idle) = cfg.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        stats.record_idle_reap();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: None,
                            kind: ErrorKind::IdleTimeout,
                            message: format!("idle longer than {} ms", idle.as_millis()),
                        });
                        break;
                    }
                }
                continue;
            }
            Err(_) => break,
        };
        last_activity = Instant::now();
        match event {
            FrameEvent::Eof => break,
            FrameEvent::TooLarge => {
                stats.record_protocol_error();
                let _ = reply_tx.send(ServerFrame::Error {
                    id: None,
                    kind: ErrorKind::FrameTooLarge,
                    message: format!("frame exceeds {} bytes", cfg.max_frame_bytes),
                });
                break;
            }
            FrameEvent::Frame(line) => match serde_json::from_str::<ClientFrame>(&line) {
                Err(e) => {
                    stats.record_protocol_error();
                    let _ = reply_tx.send(ServerFrame::Error {
                        id: None,
                        kind: ErrorKind::Malformed,
                        message: e.to_string(),
                    });
                    break;
                }
                Ok(ClientFrame::Hello { version }) => {
                    if version != PROTOCOL_VERSION {
                        stats.record_protocol_error();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: None,
                            kind: ErrorKind::VersionMismatch,
                            message: format!(
                                "server speaks version {PROTOCOL_VERSION}, client sent {version}"
                            ),
                        });
                        break;
                    }
                    greeted = true;
                    let _ = reply_tx.send(ServerFrame::Hello {
                        version: PROTOCOL_VERSION,
                    });
                }
                Ok(ClientFrame::Stats) => {
                    let _ = reply_tx.send(ServerFrame::Stats {
                        snapshot: stats.snapshot(),
                    });
                }
                Ok(ClientFrame::Metrics) => {
                    let _ = reply_tx.send(ServerFrame::Metrics {
                        snapshot: stats.registry().snapshot(),
                    });
                }
                Ok(ClientFrame::Bye) => break,
                Ok(ClientFrame::Query {
                    id,
                    t,
                    deadline_ms,
                    request,
                    query,
                }) => {
                    if !greeted {
                        stats.record_protocol_error();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: Some(id),
                            kind: ErrorKind::Malformed,
                            message: "Hello must precede Query".to_string(),
                        });
                        break;
                    }
                    served += 1;
                    if served > cfg.max_requests_per_conn {
                        stats.record_protocol_error();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: Some(id),
                            kind: ErrorKind::TooManyRequests,
                            message: format!(
                                "connection exceeded {} requests",
                                cfg.max_requests_per_conn
                            ),
                        });
                        break;
                    }
                    let budget = deadline_ms
                        .map(Duration::from_millis)
                        .or(cfg.default_deadline);
                    let job = Job {
                        id,
                        t,
                        request,
                        query,
                        enqueued: Instant::now(),
                        deadline: budget.map(|d| Instant::now() + d),
                        reply: reply_tx.clone(),
                    };
                    match job_tx.try_send(job) {
                        Ok(()) => {}
                        Err(TrySendError::Full(job)) => {
                            stats.record_reject();
                            let _ = reply_tx.send(ServerFrame::Overloaded { id: job.id });
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            },
        }
    }
    // In-flight jobs still hold reply senders; the writer drains every
    // queued answer before exiting.
    drop(reply_tx);
    let _ = writer.join();
}
