//! The concurrent query service.
//!
//! One acceptor thread hands each connection to its own reader thread; a
//! fixed pool of worker threads consumes a single bounded job queue and
//! answers against a shared read-only [`PoiDatabase`], recording into the
//! [`ShardedLog`]. When the queue is full the reader bounces the query
//! with a typed `Overloaded` frame instead of buffering — backpressure is
//! explicit and memory stays bounded. Shutdown stops accepting, lets
//! readers wind down, and drains every job already queued before workers
//! exit (reply channels stay open while any queued job holds a sender).
//!
//! Two robustness layers ride on top: an optional observer
//! [write-ahead log](crate::wal) makes every acknowledged query durable
//! across a crash (startup replay rebuilds the exact
//! [`ShardedLog`] state), and every worker runs under a supervision loop
//! that contains panics — the affected connection gets a typed
//! [`ErrorKind::Internal`] frame, the worker is respawned, and
//! `server.worker.restarts` counts the incident.

use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use dummyloc_core::client::Request;
use dummyloc_lbs::provider::{answer_request, ObserverLog};
use dummyloc_lbs::query::QueryKind;
use dummyloc_lbs::PoiDatabase;

use crate::error::{Result, ServerError};
use crate::fault::{FaultInjector, FaultPlan, FrameFate};
use crate::proto::{
    write_frame, ClientFrame, ErrorKind, FrameEvent, FrameReader, ServerFrame,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::shard::ShardedLog;
use crate::stats::{ServerStats, StatsSnapshot};
use crate::wal::{self, WalConfig, WalRecord, WalWriter};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering queries.
    pub workers: usize,
    /// Observer-log shards.
    pub shards: usize,
    /// Bounded job-queue depth; a full queue answers `Overloaded`.
    pub queue_depth: usize,
    /// Per-frame size cap in bytes.
    pub max_frame_bytes: usize,
    /// Queries one connection may send before being cut off.
    pub max_requests_per_conn: u64,
    /// Concurrent-connection cap; accepts past it are answered with a
    /// `Busy` frame and closed.
    pub max_connections: usize,
    /// Reap connections that sit idle this long. `None` never reaps.
    pub idle_timeout: Option<Duration>,
    /// Deadline applied to queries that carry no `deadline_ms` of their
    /// own. `None` means such queries never expire.
    pub default_deadline: Option<Duration>,
    /// Seeded fault-injection plan for the outbound path (replies and
    /// accepts). The default all-zero plan injects nothing.
    pub faults: FaultPlan,
    /// Test hook: artificial per-job service time, used to provoke
    /// overload deterministically.
    pub worker_delay: Option<Duration>,
    /// Observer write-ahead log. `None` keeps the log memory-only;
    /// `Some` replays the file at startup and appends every committed
    /// observer record before its `Answer` frame is sent.
    pub wal: Option<WalConfig>,
    /// Test hook: a worker panics when it serves a query whose pseudonym
    /// equals this value — the deterministic trigger the supervision
    /// tests use.
    pub panic_pseudonym: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 8,
            queue_depth: 1024,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_requests_per_conn: u64::MAX,
            max_connections: 1024,
            idle_timeout: None,
            default_deadline: None,
            faults: FaultPlan::none(),
            worker_delay: None,
            wal: None,
            panic_pseudonym: None,
        }
    }
}

impl ServerConfig {
    /// Rejects nonsensical knob values before any socket is bound.
    pub fn validate(&self) -> Result<()> {
        let err = |message: String| Err(ServerError::Config { message });
        if self.workers == 0 {
            return err("workers must be at least 1".into());
        }
        if self.queue_depth == 0 {
            return err("queue-depth must be at least 1".into());
        }
        if self.max_connections == 0 {
            return err("max-connections must be at least 1".into());
        }
        if self.max_frame_bytes < 64 {
            return err("max-frame-bytes must be at least 64".into());
        }
        if let Err(message) = self.faults.validate() {
            return err(message);
        }
        if let Some(wal) = &self.wal {
            if wal.fsync == crate::wal::FsyncPolicy::EveryN(0) {
                return err("wal fsync interval must be at least 1".into());
            }
        }
        Ok(())
    }
}

/// One unit of work: a parsed query plus the channel its reply goes to.
struct Job {
    id: u64,
    t: f64,
    request: Request,
    query: QueryKind,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: Sender<ServerFrame>,
}

/// A running server. Dropping the handle leaves the server running
/// detached; call [`ServerHandle::shutdown`] for an orderly stop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    log: Arc<ShardedLog>,
    wal: Option<Arc<Mutex<WalWriter>>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Final state returned by [`ServerHandle::shutdown`] after the drain.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Counter values after every queued job completed.
    pub stats: StatsSnapshot,
    /// The complete merged observer log.
    pub log: ObserverLog,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The telemetry registry the server's counters live on — the same
    /// snapshot the protocol's `Metrics` frame serves.
    pub fn registry(&self) -> &Arc<dummyloc_telemetry::MetricRegistry> {
        self.stats.registry()
    }

    /// Merged copy of the observer log as recorded so far.
    pub fn observer_log(&self) -> ObserverLog {
        self.log.merged()
    }

    /// Graceful stop: stop accepting, let connections wind down, drain
    /// every queued job, then join all threads.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        // Whatever the fsync policy, an orderly stop leaves the WAL on
        // the platter.
        if let Some(w) = &self.wal {
            let _ = w.lock().sync();
        }
        ShutdownReport {
            stats: self.stats.snapshot(),
            log: self.log.merged(),
        }
    }
}

/// Binds and starts a server over `pois`, returning once it accepts
/// connections.
pub fn spawn(config: ServerConfig, pois: PoiDatabase) -> Result<ServerHandle> {
    config.validate()?;
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::new());
    let log = Arc::new(ShardedLog::new(config.shards));
    let pois = Arc::new(pois);
    let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_depth.max(1));

    // Replay-then-append: the WAL is restored into the sharded log before
    // the first connection is accepted, so a restarted server continues
    // the observer streams (and the arrival sequence) where the crashed
    // one stopped.
    let wal_writer = match &config.wal {
        None => None,
        Some(wc) => {
            let summary = wal::replay(&wc.path, |r| {
                if log.replay(r.t, r.seq, r.request_id, r.request) {
                    stats.record_wal_replayed();
                }
            })?;
            if summary.torn {
                stats.record_wal_torn(summary.truncated_bytes);
            }
            Some(Arc::new(Mutex::new(WalWriter::open(wc)?)))
        }
    };

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let rx = job_rx.clone();
            let pois = Arc::clone(&pois);
            let log = Arc::clone(&log);
            let stats = Arc::clone(&stats);
            let delay = config.worker_delay;
            let wal = wal_writer.clone();
            let panic_pseudonym = config.panic_pseudonym.clone();
            std::thread::spawn(move || {
                // Supervision loop: one `worker_loop` call is one worker
                // incarnation. A contained panic retires it and the next
                // iteration is the respawned replacement over the same
                // queue — no job other than the panicking one is lost.
                while let WorkerExit::Panicked = worker_loop(
                    &rx,
                    &pois,
                    &log,
                    &stats,
                    delay,
                    wal.as_ref(),
                    panic_pseudonym.as_deref(),
                ) {}
            })
        })
        .collect();
    drop(job_rx);

    let accept = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, config, job_tx, stats, shutdown))
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        stats,
        log,
        wal: wal_writer,
        accept: Some(accept),
        workers,
    })
}

/// Why one worker incarnation ended.
enum WorkerExit {
    /// The job queue closed and drained — orderly shutdown.
    Drained,
    /// A job panicked; the supervision loop should respawn the worker.
    Panicked,
}

/// Best-effort text of a panic payload (`panic!` with a literal or a
/// formatted string covers practically all of them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

fn worker_loop(
    rx: &Receiver<Job>,
    pois: &Arc<PoiDatabase>,
    log: &Arc<ShardedLog>,
    stats: &Arc<ServerStats>,
    delay: Option<Duration>,
    wal: Option<&Arc<Mutex<WalWriter>>>,
    panic_pseudonym: Option<&str>,
) -> WorkerExit {
    // Ends when every job sender (acceptor + connections) is gone and the
    // queue is drained — exactly the shutdown contract.
    while let Ok(job) = rx.recv() {
        let id = job.id;
        let reply = job.reply.clone();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            serve_job(job, pois, log, stats, delay, wal, panic_pseudonym)
        }));
        if let Err(payload) = outcome {
            // The panic reaches exactly one connection, as a typed frame;
            // every other connection never notices.
            stats.record_worker_restart();
            let _ = reply.send(ServerFrame::Error {
                id: Some(id),
                kind: ErrorKind::Internal,
                message: format!("worker panicked: {}", panic_message(&*payload)),
            });
            return WorkerExit::Panicked;
        }
    }
    WorkerExit::Drained
}

fn serve_job(
    job: Job,
    pois: &PoiDatabase,
    log: &ShardedLog,
    stats: &ServerStats,
    delay: Option<Duration>,
    wal: Option<&Arc<Mutex<WalWriter>>>,
    panic_pseudonym: Option<&str>,
) {
    // Queued-expiry cancellation: a job whose deadline passed while it
    // waited is answered with `Deadline` and never computed or logged.
    if job.deadline.is_some_and(|dl| Instant::now() > dl) {
        stats.record_deadline_queued();
        let _ = job.reply.send(ServerFrame::Deadline { id: job.id });
        return;
    }
    if panic_pseudonym.is_some_and(|p| p == job.request.pseudonym) {
        panic!("injected panic for pseudonym {:?}", job.request.pseudonym);
    }
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    let response = answer_request(pois, job.t, &job.request, &job.query);
    // In-flight expiry: the answer exists but arrived too late to send.
    // It is not logged either — the observer sees only what was served.
    if job.deadline.is_some_and(|dl| Instant::now() > dl) {
        stats.record_deadline_inflight();
        let _ = job.reply.send(ServerFrame::Deadline { id: job.id });
        return;
    }
    let positions = job.request.positions.len();
    let wal_request = wal.map(|_| job.request.clone());
    // The query id doubles as the idempotency key: a retried query is
    // answered again but recorded in the observer log (and the WAL) only
    // once — which is what makes replay-after-crash dedup-safe.
    match log.record_unique_seq(job.t, job.id, job.request) {
        None => stats.record_dedup_hit(),
        Some(seq) => {
            if let Some(w) = wal {
                let record = WalRecord {
                    t: job.t,
                    seq,
                    request_id: Some(job.id),
                    request: wal_request.expect("cloned whenever the wal is on"),
                };
                // Durability before acknowledgement: the record hits the
                // log before the Answer frame is queued below.
                match w.lock().append(&record) {
                    Ok(()) => stats.record_wal_append(),
                    Err(_) => stats.record_wal_error(),
                }
            }
        }
    }
    stats.record_answer(&job.query, positions, job.enqueued.elapsed());
    let _ = job.reply.send(ServerFrame::Answer {
        id: job.id,
        response,
    });
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    job_tx: Sender<Job>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
) {
    let injector = FaultInjector::from_plan(&config.faults);
    let active = Arc::new(AtomicUsize::new(0));
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = incoming else { continue };
        if let Some(inj) = &injector {
            if inj.refuse_accept(&stats) {
                // Refused-accept fault: close without a word, like a
                // listener whose SYN backlog overflowed.
                continue;
            }
        }
        if active.load(Ordering::SeqCst) >= config.max_connections {
            stats.record_busy();
            let _ = write_frame(
                &mut stream,
                &ServerFrame::Busy {
                    limit: config.max_connections as u64,
                },
            );
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        stats.record_connection();
        let cfg = config.clone();
        let job_tx = job_tx.clone();
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let injector = injector.clone();
        let active = Arc::clone(&active);
        conns.push(std::thread::spawn(move || {
            connection_loop(stream, cfg, job_tx, stats, shutdown, injector);
            active.fetch_sub(1, Ordering::SeqCst);
        }));
        conns.retain(|h| !h.is_finished());
    }
    drop(job_tx);
    for c in conns {
        let _ = c.join();
    }
}

fn connection_loop(
    stream: TcpStream,
    cfg: ServerConfig,
    job_tx: Sender<Job>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    injector: Option<Arc<FaultInjector>>,
) {
    let _ = stream.set_nodelay(true);
    // Short read timeout so the reader can poll the shutdown flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::unbounded::<ServerFrame>();
    let writer = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut w = BufWriter::new(write_half);
            // Once a stall fault fires, the connection withholds this frame
            // and every later one while the socket stays open — the reply
            // channel keeps draining so queued workers never block on it.
            let mut stalled = false;
            for frame in reply_rx.iter() {
                if stalled {
                    continue;
                }
                match &injector {
                    None => {
                        if write_frame(&mut w, &frame).is_err() {
                            break;
                        }
                    }
                    Some(inj) => {
                        let Ok(line) = serde_json::to_string(&frame) else {
                            break;
                        };
                        match inj.transmit(&mut w, &line, &stats, &shutdown) {
                            Ok(FrameFate::Stall) => stalled = true,
                            Ok(_) => {}
                            Err(_) => break,
                        }
                    }
                }
            }
        })
    };

    let mut reader = FrameReader::new(stream, cfg.max_frame_bytes);
    let mut greeted = false;
    let mut served: u64 = 0;
    let mut last_activity = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let event = match reader.next_frame() {
            Ok(ev) => ev,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(idle) = cfg.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        stats.record_idle_reap();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: None,
                            kind: ErrorKind::IdleTimeout,
                            message: format!("idle longer than {} ms", idle.as_millis()),
                        });
                        break;
                    }
                }
                continue;
            }
            Err(_) => break,
        };
        last_activity = Instant::now();
        match event {
            FrameEvent::Eof => break,
            FrameEvent::TooLarge => {
                stats.record_protocol_error();
                let _ = reply_tx.send(ServerFrame::Error {
                    id: None,
                    kind: ErrorKind::FrameTooLarge,
                    message: format!("frame exceeds {} bytes", cfg.max_frame_bytes),
                });
                break;
            }
            FrameEvent::Frame(line) => match serde_json::from_str::<ClientFrame>(&line) {
                Err(e) => {
                    stats.record_protocol_error();
                    let _ = reply_tx.send(ServerFrame::Error {
                        id: None,
                        kind: ErrorKind::Malformed,
                        message: e.to_string(),
                    });
                    break;
                }
                Ok(ClientFrame::Hello { version }) => {
                    if version != PROTOCOL_VERSION {
                        stats.record_protocol_error();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: None,
                            kind: ErrorKind::VersionMismatch,
                            message: format!(
                                "server speaks version {PROTOCOL_VERSION}, client sent {version}"
                            ),
                        });
                        break;
                    }
                    greeted = true;
                    let _ = reply_tx.send(ServerFrame::Hello {
                        version: PROTOCOL_VERSION,
                    });
                }
                Ok(ClientFrame::Stats) => {
                    let _ = reply_tx.send(ServerFrame::Stats {
                        snapshot: stats.snapshot(),
                    });
                }
                Ok(ClientFrame::Metrics) => {
                    let _ = reply_tx.send(ServerFrame::Metrics {
                        snapshot: stats.registry().snapshot(),
                    });
                }
                Ok(ClientFrame::Bye) => break,
                Ok(ClientFrame::Query {
                    id,
                    t,
                    deadline_ms,
                    request,
                    query,
                }) => {
                    if !greeted {
                        stats.record_protocol_error();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: Some(id),
                            kind: ErrorKind::Malformed,
                            message: "Hello must precede Query".to_string(),
                        });
                        break;
                    }
                    served += 1;
                    if served > cfg.max_requests_per_conn {
                        stats.record_protocol_error();
                        let _ = reply_tx.send(ServerFrame::Error {
                            id: Some(id),
                            kind: ErrorKind::TooManyRequests,
                            message: format!(
                                "connection exceeded {} requests",
                                cfg.max_requests_per_conn
                            ),
                        });
                        break;
                    }
                    let budget = deadline_ms
                        .map(Duration::from_millis)
                        .or(cfg.default_deadline);
                    let job = Job {
                        id,
                        t,
                        request,
                        query,
                        enqueued: Instant::now(),
                        deadline: budget.map(|d| Instant::now() + d),
                        reply: reply_tx.clone(),
                    };
                    match job_tx.try_send(job) {
                        Ok(()) => {}
                        Err(TrySendError::Full(job)) => {
                            stats.record_reject();
                            let _ = reply_tx.send(ServerFrame::Overloaded { id: job.id });
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            },
        }
    }
    // In-flight jobs still hold reply senders; the writer drains every
    // queued answer before exiting.
    drop(reply_tx);
    let _ = writer.join();
}
