//! Online LBS query service and load generator.
//!
//! The paper's protocol is client–server: each user sends one message
//! carrying the true position and `k` dummies, and the provider answers
//! every position. The rest of the workspace exercises that protocol
//! in-process; this crate serves it over TCP, pointing at the ROADMAP's
//! production-scale north star:
//!
//! * [`proto`] — the typed frame vocabulary (version handshake, queries,
//!   batches, typed error / `Overloaded` frames),
//! * [`codec`] — the single encode/decode path under it: protocol v4's
//!   length-prefixed checksummed binary framing next to the v3
//!   newline-delimited JSON fallback, with transport auto-detection so
//!   one server port speaks both,
//! * [`server`] — acceptor + per-connection readers + a fixed worker pool
//!   over one bounded `crossbeam` queue; answers come from the same
//!   [`dummyloc_lbs::answer_request`] the in-process [`Provider`]
//!   (re-exported below) uses, so online and offline runs agree exactly,
//! * [`shard`] — the observer log split `N` ways by pseudonym hash so
//!   concurrent workers rarely contend; folds back into one
//!   [`dummyloc_lbs::ObserverLog`] for the adversary pipeline,
//! * [`stats`] — relaxed atomic counters and fixed-bucket latency
//!   histograms served over the protocol's `Stats` command,
//! * [`client`] — a blocking protocol client plus [`RetryingClient`], the
//!   retry loop (exponential backoff + jitter, reconnects, idempotent
//!   request ids) that makes injected faults invisible to callers,
//! * [`fault`] — seeded deterministic fault injection ([`FaultPlan`]):
//!   dropped/delayed/truncated/corrupted replies, stalled connections,
//!   refused accepts — every one tallied in [`stats`],
//! * [`wal`] — the observer write-ahead log: length-prefixed checksummed
//!   records appended before each `Answer` frame, replayed at startup
//!   (torn tails truncated, never panicking), so a `kill -9` loses no
//!   acknowledged query,
//! * durable store integration — with [`ServerConfig::store`] the server
//!   also appends every committed record to a
//!   [`dummyloc_store::LogStore`]; startup recovers from the store's
//!   manifest and replays only the WAL tail past its durable frontier,
//!   and each memtable flush truncates the WAL back to empty, keeping
//!   cold-start time bounded by the tail instead of the full history,
//! * [`options`] — validated [`ServeOptions`]/[`LoadgenOptions`] builders
//!   shared by the CLI and tests,
//! * [`loadgen`] — M concurrent simulated users (rickshaw tracks + MN/MLN
//!   dummy generators) reporting throughput, latency percentiles and
//!   per-user determinism digests.
//!
//! The server also enforces per-query deadlines (typed `Deadline` frames;
//! expired queued jobs are cancelled unworked), an accept gate (typed
//! `Busy` frame past `max_connections`) and idle-connection reaping — all
//! observable in the `Stats` snapshot.
//!
//! On top of those sits the overload control plane: deadline-aware
//! admission (reject at enqueue when the predicted queue wait — per-kind
//! service-time EWMA × shard depth — already exceeds the deadline
//! budget), CoDel-style queue aging (jobs whose sojourn passed
//! [`ServerConfig::codel_target`] are shed at dequeue), server-computed
//! `retry_after_ms` hints on every `Overloaded`/`Busy` bounce, a graceful
//! [`ServerHandle::drain`] that answers in-flight work and flushes
//! durable state while turning new work away, and — client side — hint
//! honoring, a per-endpoint circuit breaker and optional hedged reads in
//! [`RetryingClient`]. [`loadgen`] gains an open-loop paced mode
//! ([`LoadgenConfig::rate`]) whose latency is measured from scheduled
//! send times, so saturation cannot hide in coordinated omission.
//!
//! # Example
//!
//! ```
//! use dummyloc_server::client::ServiceClient;
//! use dummyloc_server::server::{spawn, ServerConfig};
//! use dummyloc_core::client::Request;
//! use dummyloc_geo::{BBox, Point};
//! use dummyloc_lbs::{PoiDatabase, QueryKind};
//!
//! let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
//! let handle = spawn(ServerConfig::default(), PoiDatabase::generate(area, 50, 7)).unwrap();
//!
//! let mut client = ServiceClient::connect(handle.addr()).unwrap();
//! let request = Request {
//!     pseudonym: "p1".into(),
//!     positions: vec![Point::new(100.0, 100.0), Point::new(800.0, 300.0)],
//! };
//! let outcome = client
//!     .query(0.0, &request, &QueryKind::NearestPoi { category: None })
//!     .unwrap();
//! # let dummyloc_server::client::QueryOutcome::Answered(response) = outcome else { panic!() };
//! # assert_eq!(response.answers.len(), 2);
//! client.bye().unwrap();
//! let report = handle.shutdown();
//! assert_eq!(report.stats.requests, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod error;
pub mod fault;
pub mod loadgen;
pub mod options;
pub mod proto;
pub mod server;
pub mod shard;
pub mod stats;
pub mod wal;

pub use client::{
    BatchItem, Client, ClientBuilder, QueryOutcome, RetryPolicy, RetryStats, RetryingClient,
    ServiceClient,
};
pub use codec::{CodecError, ProtoVersion, Transport};
pub use dummyloc_store::{LogStoreConfig, DEFAULT_COMPACT_TIERS, DEFAULT_FLUSH_THRESHOLD_BYTES};
pub use error::{Result, ServerError};
pub use fault::{FaultInjector, FaultPlan};
pub use loadgen::{GeneratorChoice, LoadgenConfig, LoadgenReport};
pub use options::{LoadgenOptions, ServeOptions};
pub use proto::{
    ClientFrame, ErrorKind, QuerySpec, ServerFrame, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::{spawn, ServerConfig, ServerHandle, ShutdownReport, StoreRecoverySummary};
pub use shard::ShardedLog;
pub use stats::{
    FaultCounters, RejectCause, RejectionCounters, ServerStats, StatsSnapshot, StoreCounters,
    WalCounters,
};
pub use wal::{FsyncPolicy, WalConfig};
