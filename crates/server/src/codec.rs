//! The shared frame codec: one encode/decode path for both transports.
//!
//! Protocol v4 introduces a length-prefixed binary framing next to the
//! newline-delimited JSON the server has always spoken. Both transports
//! carry the *same* typed frames ([`ClientFrame`](crate::proto::ClientFrame)
//! / [`ServerFrame`](crate::proto::ServerFrame)); only the bytes differ:
//!
//! * **JSON (v3)** — one serde_json value per `\n`-terminated line.
//!   Self-describing, greppable, the debuggability fallback.
//! * **Binary (v4)** — the connection opens with the 4-byte
//!   [`BINARY_MAGIC`], then each frame is
//!   `[u32 payload-len LE][u32 FNV-1a(payload) LE][payload]` where the
//!   payload is a tag byte plus fixed-width little-endian fields. No
//!   field names, no number formatting, no per-byte scanning for a
//!   delimiter — the dominant per-request cost of the JSON path is gone.
//!
//! The first magic byte (`0xD4`) can never begin a JSON frame (JSON text
//! is valid UTF-8 starting with a value character), so one peek at the
//! first byte of a connection identifies the transport. [`FrameReader`]
//! does exactly that, then enforces one size cap and one framing
//! discipline for whichever transport it found — server, client and
//! loadgen all read through it, and every framing failure is one
//! [`CodecError`].
//!
//! The payload checksum makes binary corruption *deterministically*
//! detectable: a frame whose bytes were damaged in flight (the chaos
//! suite's truncate/corrupt faults) fails the checksum instead of
//! gambling on whether the garbled payload still decodes.

use std::fmt;
use std::io::{self, Read, Write};
use std::str::FromStr;

use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use dummyloc_lbs::poi::Category;
use dummyloc_lbs::query::{Answer, BusAnswer, PoiInfo, QueryKind, ServiceResponse};
use serde::{Deserialize, Serialize};

use crate::proto::{ClientFrame, ErrorKind, QuerySpec, ServerFrame};

/// First bytes of every binary-transport connection. `0xD4` is not valid
/// leading UTF-8 for any JSON value, so the transports cannot be confused.
pub const BINARY_MAGIC: [u8; 4] = [0xD4, b'L', b'B', b'4'];

/// Bytes of framing before each binary payload: `u32` length + `u32`
/// FNV-1a checksum.
pub const BINARY_HEADER_BYTES: usize = 8;

/// Which protocol version a client speaks — and, because the version
/// determines the transport, how its bytes look on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoVersion {
    /// Protocol v3: newline-delimited JSON frames.
    V3Json,
    /// Protocol v4: length-prefixed, checksummed binary frames (with
    /// batching).
    V4Binary,
}

impl ProtoVersion {
    /// The handshake version number this protocol level announces.
    pub fn version(self) -> u32 {
        match self {
            ProtoVersion::V3Json => 3,
            ProtoVersion::V4Binary => 4,
        }
    }

    /// The wire transport this protocol level uses.
    pub fn transport(self) -> Transport {
        match self {
            ProtoVersion::V3Json => Transport::Json,
            ProtoVersion::V4Binary => Transport::Binary,
        }
    }
}

impl FromStr for ProtoVersion {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "v3" | "3" | "json" => Ok(ProtoVersion::V3Json),
            "v4" | "4" | "binary" => Ok(ProtoVersion::V4Binary),
            other => Err(format!("unknown protocol {other:?} (expected v3 or v4)")),
        }
    }
}

impl fmt::Display for ProtoVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoVersion::V3Json => write!(f, "v3"),
            ProtoVersion::V4Binary => write!(f, "v4"),
        }
    }
}

/// The two byte-level framings a connection can use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Newline-delimited JSON lines.
    Json,
    /// Magic-prefixed stream of `[len][checksum][payload]` frames.
    Binary,
}

/// Everything that can go wrong encoding or decoding a frame — the one
/// error type both transports and all three protocol endpoints share.
#[derive(Debug)]
pub enum CodecError {
    /// The input ended in the middle of a value.
    Truncated,
    /// The bytes are structurally invalid (bad tag, trailing garbage,
    /// non-UTF-8 string, …).
    Invalid(&'static str),
    /// A JSON frame (or a JSON-embedded payload) failed to parse.
    Json(serde_json::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame payload ended mid-value"),
            CodecError::Invalid(what) => write!(f, "invalid frame payload: {what}"),
            CodecError::Json(e) => write!(f, "json frame error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> Self {
        CodecError::Json(e)
    }
}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// FNV-1a (32-bit) over one payload.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---------------------------------------------------------------------
// Binary payload primitives.
// ---------------------------------------------------------------------

/// Read cursor over one binary payload. Every `take_*` bounds-checks, so
/// hostile input errors instead of panicking.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32`-length-prefixed UTF-8 string.
    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("non-utf8 string"))
    }

    /// A `u32` element count, sanity-bounded by the bytes actually left
    /// (each element is at least one byte) so a forged count cannot make
    /// the decoder allocate gigabytes.
    fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn option<T>(
        &mut self,
        inner: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(inner(self)?)),
            _ => Err(CodecError::Invalid("option discriminant")),
        }
    }

    /// An [`Cur::option`] that may also be *absent entirely* — the
    /// trailing-field compatibility read. A payload from a peer predating
    /// the field simply ends here; `None` in that case.
    fn trailing_option<T>(
        &mut self,
        inner: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        self.option(inner)
    }

    /// The whole payload must be consumed: leftovers mean the frame was
    /// not what its tag claimed.
    fn done(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing payload bytes"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_option<T>(out: &mut Vec<u8>, v: Option<&T>, inner: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            inner(out, v);
        }
    }
}

// ---------------------------------------------------------------------
// Binary codecs for the protocol vocabulary.
// ---------------------------------------------------------------------

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn get_point(cur: &mut Cur) -> Result<Point, CodecError> {
    Ok(Point::new(cur.f64()?, cur.f64()?))
}

fn put_request(out: &mut Vec<u8>, r: &Request) {
    put_string(out, &r.pseudonym);
    put_u32(out, r.positions.len() as u32);
    for p in &r.positions {
        put_point(out, p);
    }
}

fn get_request(cur: &mut Cur) -> Result<Request, CodecError> {
    let pseudonym = cur.string()?;
    let n = cur.count()?;
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(get_point(cur)?);
    }
    Ok(Request {
        pseudonym,
        positions,
    })
}

fn category_tag(c: Category) -> u8 {
    match c {
        Category::Restaurant => 0,
        Category::BusStop => 1,
        Category::Landmark => 2,
        Category::Clinic => 3,
        Category::Shop => 4,
    }
}

fn category_from(tag: u8) -> Result<Category, CodecError> {
    Ok(match tag {
        0 => Category::Restaurant,
        1 => Category::BusStop,
        2 => Category::Landmark,
        3 => Category::Clinic,
        4 => Category::Shop,
        _ => return Err(CodecError::Invalid("category tag")),
    })
}

fn put_query_kind(out: &mut Vec<u8>, q: &QueryKind) {
    match q {
        QueryKind::NearestPoi { category } => {
            out.push(0);
            put_option(out, category.as_ref(), |o, c| o.push(category_tag(*c)));
        }
        QueryKind::PoisInRange { radius } => {
            out.push(1);
            put_f64(out, *radius);
        }
        QueryKind::NextBus => out.push(2),
    }
}

fn get_query_kind(cur: &mut Cur) -> Result<QueryKind, CodecError> {
    Ok(match cur.u8()? {
        0 => QueryKind::NearestPoi {
            category: cur.option(|c| category_from(c.u8()?))?,
        },
        1 => QueryKind::PoisInRange { radius: cur.f64()? },
        2 => QueryKind::NextBus,
        _ => return Err(CodecError::Invalid("query-kind tag")),
    })
}

fn put_poi_info(out: &mut Vec<u8>, p: &PoiInfo) {
    put_u64(out, p.id);
    put_string(out, &p.name);
    out.push(category_tag(p.category));
    put_point(out, &p.pos);
    put_f64(out, p.distance);
}

fn get_poi_info(cur: &mut Cur) -> Result<PoiInfo, CodecError> {
    Ok(PoiInfo {
        id: cur.u64()?,
        name: cur.string()?,
        category: category_from(cur.u8()?)?,
        pos: get_point(cur)?,
        distance: cur.f64()?,
    })
}

fn put_answer(out: &mut Vec<u8>, a: &Answer) {
    match a {
        Answer::NearestPoi(poi) => {
            out.push(0);
            put_option(out, poi.as_ref(), put_poi_info);
        }
        Answer::PoisInRange(pois) => {
            out.push(1);
            put_u32(out, pois.len() as u32);
            for p in pois {
                put_poi_info(out, p);
            }
        }
        Answer::NextBus(bus) => {
            out.push(2);
            put_option(out, bus.as_ref(), |o, b| {
                put_poi_info(o, &b.stop);
                put_f64(o, b.arrival);
            });
        }
    }
}

fn get_answer(cur: &mut Cur) -> Result<Answer, CodecError> {
    Ok(match cur.u8()? {
        0 => Answer::NearestPoi(cur.option(get_poi_info)?),
        1 => {
            let n = cur.count()?;
            let mut pois = Vec::with_capacity(n);
            for _ in 0..n {
                pois.push(get_poi_info(cur)?);
            }
            Answer::PoisInRange(pois)
        }
        2 => Answer::NextBus(cur.option(|c| {
            Ok(BusAnswer {
                stop: get_poi_info(c)?,
                arrival: c.f64()?,
            })
        })?),
        _ => return Err(CodecError::Invalid("answer tag")),
    })
}

fn put_response(out: &mut Vec<u8>, r: &ServiceResponse) {
    put_u32(out, r.answers.len() as u32);
    for a in &r.answers {
        put_answer(out, a);
    }
}

fn get_response(cur: &mut Cur) -> Result<ServiceResponse, CodecError> {
    let n = cur.count()?;
    let mut answers = Vec::with_capacity(n);
    for _ in 0..n {
        answers.push(get_answer(cur)?);
    }
    Ok(ServiceResponse { answers })
}

fn put_query_spec(out: &mut Vec<u8>, s: &QuerySpec) {
    put_u64(out, s.id);
    put_f64(out, s.t);
    put_option(out, s.deadline_ms.as_ref(), |o, d| put_u64(o, *d));
    put_request(out, &s.request);
    put_query_kind(out, &s.query);
}

fn get_query_spec(cur: &mut Cur) -> Result<QuerySpec, CodecError> {
    Ok(QuerySpec {
        id: cur.u64()?,
        t: cur.f64()?,
        deadline_ms: cur.option(|c| c.u64())?,
        request: get_request(cur)?,
        query: get_query_kind(cur)?,
    })
}

fn error_kind_tag(k: ErrorKind) -> u8 {
    match k {
        ErrorKind::Malformed => 0,
        ErrorKind::FrameTooLarge => 1,
        ErrorKind::VersionMismatch => 2,
        ErrorKind::TooManyRequests => 3,
        ErrorKind::IdleTimeout => 4,
        ErrorKind::Internal => 5,
    }
}

fn error_kind_from(tag: u8) -> Result<ErrorKind, CodecError> {
    Ok(match tag {
        0 => ErrorKind::Malformed,
        1 => ErrorKind::FrameTooLarge,
        2 => ErrorKind::VersionMismatch,
        3 => ErrorKind::TooManyRequests,
        4 => ErrorKind::IdleTimeout,
        5 => ErrorKind::Internal,
        _ => return Err(CodecError::Invalid("error-kind tag")),
    })
}

/// Serializes one client frame into a binary payload (tag + body, no
/// length/checksum header).
pub fn encode_client_payload(frame: &ClientFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match frame {
        ClientFrame::Hello { version } => {
            out.push(1);
            put_u32(&mut out, *version);
        }
        ClientFrame::Query {
            id,
            t,
            deadline_ms,
            request,
            query,
        } => {
            out.push(2);
            put_query_spec(
                &mut out,
                &QuerySpec {
                    id: *id,
                    t: *t,
                    deadline_ms: *deadline_ms,
                    request: request.clone(),
                    query: *query,
                },
            );
        }
        ClientFrame::Batch { queries } => {
            out.push(3);
            put_u32(&mut out, queries.len() as u32);
            for q in queries {
                put_query_spec(&mut out, q);
            }
        }
        ClientFrame::Stats => out.push(4),
        ClientFrame::Metrics => out.push(5),
        ClientFrame::Bye => out.push(6),
    }
    out
}

/// Decodes one binary client payload. The whole payload must be consumed.
pub fn decode_client_payload(payload: &[u8]) -> Result<ClientFrame, CodecError> {
    let mut cur = Cur::new(payload);
    let frame = match cur.u8()? {
        1 => ClientFrame::Hello {
            version: cur.u32()?,
        },
        2 => {
            let s = get_query_spec(&mut cur)?;
            ClientFrame::Query {
                id: s.id,
                t: s.t,
                deadline_ms: s.deadline_ms,
                request: s.request,
                query: s.query,
            }
        }
        3 => {
            let n = cur.count()?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(get_query_spec(&mut cur)?);
            }
            ClientFrame::Batch { queries }
        }
        4 => ClientFrame::Stats,
        5 => ClientFrame::Metrics,
        6 => ClientFrame::Bye,
        _ => return Err(CodecError::Invalid("client frame tag")),
    };
    cur.done()?;
    Ok(frame)
}

/// Serializes one server frame into a binary payload. The `Stats` and
/// `Metrics` snapshots travel as embedded JSON — they are diagnostics,
/// not the hot path, and their schemas evolve too often for fixed-width
/// encoding to pay off.
pub fn encode_server_payload(frame: &ServerFrame) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(64);
    match frame {
        ServerFrame::Hello { version } => {
            out.push(1);
            put_u32(&mut out, *version);
        }
        ServerFrame::Answer { id, response } => {
            out.push(2);
            put_u64(&mut out, *id);
            put_response(&mut out, response);
        }
        ServerFrame::Stats { snapshot } => {
            out.push(3);
            out.extend_from_slice(&serde_json::to_vec(snapshot)?);
        }
        ServerFrame::Metrics { snapshot } => {
            out.push(4);
            out.extend_from_slice(&serde_json::to_vec(snapshot)?);
        }
        ServerFrame::Overloaded { id, retry_after_ms } => {
            out.push(5);
            put_u64(&mut out, *id);
            put_option(&mut out, retry_after_ms.as_ref(), |o, v| put_u64(o, *v));
        }
        ServerFrame::Deadline { id } => {
            out.push(6);
            put_u64(&mut out, *id);
        }
        ServerFrame::Busy {
            limit,
            retry_after_ms,
        } => {
            out.push(7);
            put_u64(&mut out, *limit);
            put_option(&mut out, retry_after_ms.as_ref(), |o, v| put_u64(o, *v));
        }
        ServerFrame::Error { id, kind, message } => {
            out.push(8);
            put_option(&mut out, id.as_ref(), |o, v| put_u64(o, *v));
            out.push(error_kind_tag(*kind));
            put_string(&mut out, message);
        }
    }
    Ok(out)
}

/// Takes the rest of the payload as a UTF-8 JSON document (the encoding
/// the snapshot-carrying frames embed their bodies in).
fn take_json<'a>(cur: &mut Cur<'a>) -> Result<&'a str, CodecError> {
    let bytes = cur.take(cur.remaining())?;
    std::str::from_utf8(bytes).map_err(|_| CodecError::Invalid("embedded JSON is not UTF-8"))
}

/// Decodes one binary server payload. The whole payload must be consumed.
pub fn decode_server_payload(payload: &[u8]) -> Result<ServerFrame, CodecError> {
    let mut cur = Cur::new(payload);
    let frame = match cur.u8()? {
        1 => ServerFrame::Hello {
            version: cur.u32()?,
        },
        2 => ServerFrame::Answer {
            id: cur.u64()?,
            response: get_response(&mut cur)?,
        },
        3 => {
            let snapshot = serde_json::from_str(take_json(&mut cur)?)?;
            ServerFrame::Stats { snapshot }
        }
        4 => {
            let snapshot = serde_json::from_str(take_json(&mut cur)?)?;
            ServerFrame::Metrics { snapshot }
        }
        // Tags 5 and 7 read `retry_after_ms` only if bytes remain: a
        // pre-hint v4 peer ends the payload right after the first field,
        // and both shapes must keep decoding (compatible extension).
        5 => ServerFrame::Overloaded {
            id: cur.u64()?,
            retry_after_ms: cur.trailing_option(|c| c.u64())?,
        },
        6 => ServerFrame::Deadline { id: cur.u64()? },
        7 => ServerFrame::Busy {
            limit: cur.u64()?,
            retry_after_ms: cur.trailing_option(|c| c.u64())?,
        },
        8 => ServerFrame::Error {
            id: cur.option(|c| c.u64())?,
            kind: error_kind_from(cur.u8()?)?,
            message: cur.string()?,
        },
        _ => return Err(CodecError::Invalid("server frame tag")),
    };
    cur.done()?;
    Ok(frame)
}

/// Wraps one binary payload in its wire framing (`len` + checksum).
pub fn frame_binary(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(BINARY_HEADER_BYTES + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, fnv1a32(payload));
    out.extend_from_slice(payload);
    out
}

/// Serializes one frame as a single JSON line (the v3 transport). Shared
/// by the server, the client and the loadgen — the one JSON write path.
pub fn write_json_frame<W: Write, T: Serialize>(w: &mut W, frame: &T) -> io::Result<()> {
    let line = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

// ---------------------------------------------------------------------
// The unified reader.
// ---------------------------------------------------------------------

/// One frame's raw bytes, tagged by the transport that carried it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawFrame {
    /// One JSON line (without the newline).
    Json(String),
    /// One verified binary payload (checksum already checked).
    Binary(Vec<u8>),
}

/// What [`FrameReader::next_frame`] produced.
#[derive(Debug)]
pub enum RawEvent {
    /// One complete frame.
    Frame(RawFrame),
    /// The peer closed the connection cleanly.
    Eof,
    /// The current frame exceeded the size cap; the stream is no longer
    /// frame-synchronized and the connection should be closed.
    TooLarge,
}

/// Incremental frame reader over either transport.
///
/// Created with [`FrameReader::auto`], the transport is detected from the
/// first byte on the wire: [`BINARY_MAGIC`] opens a binary stream,
/// anything else is a JSON line stream. [`FrameReader::json`] pins the
/// JSON transport (the v3 reader). Either way the size cap is enforced
/// *while* reading — a hostile peer cannot balloon memory with one giant
/// frame — and read timeouts (`WouldBlock`/`TimedOut`) propagate as `Err`
/// with all partial bytes retained for the next call, which is how the
/// server polls its shutdown flag without dropping data.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    max: usize,
    transport: Option<Transport>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, detecting the transport from the first byte.
    pub fn auto(inner: R, max_frame_bytes: usize) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            max: max_frame_bytes,
            transport: None,
        }
    }

    /// Wraps `inner` pinned to the JSON line transport.
    pub fn json(inner: R, max_frame_bytes: usize) -> Self {
        FrameReader {
            transport: Some(Transport::Json),
            ..Self::auto(inner, max_frame_bytes)
        }
    }

    /// The wrapped stream (e.g. to set socket options).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// The detected transport, once known.
    pub fn transport(&self) -> Option<Transport> {
        self.transport
    }

    /// Compacts consumed bytes, then reads one chunk. Returns the number
    /// of fresh bytes (0 = EOF).
    fn fill(&mut self) -> io::Result<usize> {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 4096];
        let n = self.inner.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads until one full frame, EOF, or the cap is hit.
    pub fn next_frame(&mut self) -> io::Result<RawEvent> {
        loop {
            let avail = self.buf.len() - self.start;
            match self.transport {
                None => {
                    if avail == 0 {
                        if self.fill()? == 0 {
                            return Ok(RawEvent::Eof);
                        }
                        continue;
                    }
                    if self.buf[self.start] != BINARY_MAGIC[0] {
                        self.transport = Some(Transport::Json);
                        continue;
                    }
                    if avail < BINARY_MAGIC.len() {
                        if self.fill()? == 0 {
                            return Ok(RawEvent::Eof);
                        }
                        continue;
                    }
                    if self.buf[self.start..self.start + BINARY_MAGIC.len()] != BINARY_MAGIC {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "bad binary-transport magic",
                        ));
                    }
                    self.start += BINARY_MAGIC.len();
                    self.transport = Some(Transport::Binary);
                }
                Some(Transport::Json) => {
                    if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                        let end = self.start + nl;
                        let line = String::from_utf8_lossy(&self.buf[self.start..end]).into_owned();
                        self.advance(end + 1);
                        return Ok(RawEvent::Frame(RawFrame::Json(line)));
                    }
                    if avail > self.max {
                        return Ok(RawEvent::TooLarge);
                    }
                    if self.fill()? == 0 {
                        if self.buf.len() > self.start {
                            // Final unterminated line: deliver it.
                            let line =
                                String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
                            self.buf.clear();
                            self.start = 0;
                            return Ok(RawEvent::Frame(RawFrame::Json(line)));
                        }
                        return Ok(RawEvent::Eof);
                    }
                }
                Some(Transport::Binary) => {
                    if avail >= BINARY_HEADER_BYTES {
                        let len = u32::from_le_bytes(
                            self.buf[self.start..self.start + 4].try_into().expect("4"),
                        ) as usize;
                        if len > self.max {
                            return Ok(RawEvent::TooLarge);
                        }
                        let total = BINARY_HEADER_BYTES + len;
                        if avail >= total {
                            let checksum = u32::from_le_bytes(
                                self.buf[self.start + 4..self.start + 8]
                                    .try_into()
                                    .expect("4"),
                            );
                            let payload = self.buf
                                [self.start + BINARY_HEADER_BYTES..self.start + total]
                                .to_vec();
                            self.advance(self.start + total);
                            if fnv1a32(&payload) != checksum {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "binary frame checksum mismatch",
                                ));
                            }
                            return Ok(RawEvent::Frame(RawFrame::Binary(payload)));
                        }
                    }
                    if self.fill()? == 0 {
                        // A partial binary frame at EOF has no salvageable
                        // prefix — unlike a JSON line, it was never
                        // delimiter-terminated to begin with.
                        return Ok(RawEvent::Eof);
                    }
                }
            }
        }
    }

    fn advance(&mut self, to: usize) {
        self.start = to;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }
}

/// Decodes one raw frame as a client frame, whichever transport carried
/// it.
pub fn decode_client_frame(raw: &RawFrame) -> Result<ClientFrame, CodecError> {
    match raw {
        RawFrame::Json(line) => Ok(serde_json::from_str(line)?),
        RawFrame::Binary(payload) => decode_client_payload(payload),
    }
}

/// Decodes one raw frame as a server frame, whichever transport carried
/// it.
pub fn decode_server_frame(raw: &RawFrame) -> Result<ServerFrame, CodecError> {
    match raw {
        RawFrame::Json(line) => Ok(serde_json::from_str(line)?),
        RawFrame::Binary(payload) => decode_server_payload(payload),
    }
}

/// Encodes one server frame for `transport` and hands the bytes to
/// `emit` — the server's single outbound encode path.
pub fn encode_server_frame(
    frame: &ServerFrame,
    transport: Transport,
) -> Result<Vec<u8>, CodecError> {
    match transport {
        Transport::Json => {
            let mut line = serde_json::to_vec(frame)?;
            line.push(b'\n');
            Ok(line)
        }
        Transport::Binary => Ok(frame_binary(&encode_server_payload(frame)?)),
    }
}

/// Encodes one client frame for `transport` (no transport magic — the
/// caller writes [`BINARY_MAGIC`] once at connect time).
pub fn encode_client_frame(
    frame: &ClientFrame,
    transport: Transport,
) -> Result<Vec<u8>, CodecError> {
    match transport {
        Transport::Json => {
            let mut line = serde_json::to_vec(frame)?;
            line.push(b'\n');
            Ok(line)
        }
        Transport::Binary => Ok(frame_binary(&encode_client_payload(frame))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION};

    fn sample_request(k: u64) -> Request {
        Request {
            pseudonym: format!("user-{k}"),
            positions: vec![Point::new(k as f64, -1.5), Point::new(0.25, k as f64)],
        }
    }

    fn sample_specs(n: u64) -> Vec<QuerySpec> {
        (0..n)
            .map(|k| QuerySpec {
                id: k * 3,
                t: k as f64 * 30.0,
                deadline_ms: (k % 2 == 0).then_some(250 + k),
                request: sample_request(k),
                query: match k % 3 {
                    0 => QueryKind::NearestPoi {
                        category: Some(Category::Clinic),
                    },
                    1 => QueryKind::PoisInRange { radius: 120.5 },
                    _ => QueryKind::NextBus,
                },
            })
            .collect()
    }

    #[test]
    fn proto_version_parses_and_displays() {
        assert_eq!("v3".parse::<ProtoVersion>().unwrap(), ProtoVersion::V3Json);
        assert_eq!(
            "binary".parse::<ProtoVersion>().unwrap(),
            ProtoVersion::V4Binary
        );
        assert_eq!(ProtoVersion::V4Binary.to_string(), "v4");
        assert_eq!(ProtoVersion::V3Json.version(), 3);
        assert_eq!(ProtoVersion::V4Binary.version(), 4);
        assert!("v5".parse::<ProtoVersion>().is_err());
    }

    #[test]
    fn client_frames_round_trip_binary() {
        let frames = vec![
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ClientFrame::Query {
                id: 7,
                t: 30.0,
                deadline_ms: Some(250),
                request: sample_request(7),
                query: QueryKind::NearestPoi { category: None },
            },
            ClientFrame::Batch {
                queries: sample_specs(5),
            },
            ClientFrame::Stats,
            ClientFrame::Metrics,
            ClientFrame::Bye,
        ];
        for f in &frames {
            let payload = encode_client_payload(f);
            assert_eq!(&decode_client_payload(&payload).unwrap(), f);
        }
    }

    #[test]
    fn server_frames_round_trip_binary() {
        let response = ServiceResponse {
            answers: vec![
                Answer::NearestPoi(Some(PoiInfo {
                    id: 9,
                    name: "喫茶店".into(),
                    category: Category::Restaurant,
                    pos: Point::new(1.0, 2.0),
                    distance: 42.5,
                })),
                Answer::NearestPoi(None),
                Answer::PoisInRange(vec![]),
                Answer::NextBus(Some(BusAnswer {
                    stop: PoiInfo {
                        id: 1,
                        name: "stop".into(),
                        category: Category::BusStop,
                        pos: Point::new(-3.0, 0.5),
                        distance: 7.25,
                    },
                    arrival: 36_000.0,
                })),
            ],
        };
        let frames = vec![
            ServerFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ServerFrame::Answer { id: 12, response },
            ServerFrame::Overloaded {
                id: 3,
                retry_after_ms: None,
            },
            ServerFrame::Overloaded {
                id: 3,
                retry_after_ms: Some(125),
            },
            ServerFrame::Deadline { id: 4 },
            ServerFrame::Busy {
                limit: 64,
                retry_after_ms: None,
            },
            ServerFrame::Busy {
                limit: 64,
                retry_after_ms: Some(40),
            },
            ServerFrame::Error {
                id: Some(5),
                kind: ErrorKind::Internal,
                message: "worker panicked".into(),
            },
            ServerFrame::Error {
                id: None,
                kind: ErrorKind::Malformed,
                message: String::new(),
            },
        ];
        for f in &frames {
            let payload = encode_server_payload(f).unwrap();
            assert_eq!(&decode_server_payload(&payload).unwrap(), f);
        }
    }

    #[test]
    fn stats_frame_round_trips_via_embedded_json() {
        let stats = crate::stats::ServerStats::new();
        let frame = ServerFrame::Stats {
            snapshot: stats.snapshot(),
        };
        let payload = encode_server_payload(&frame).unwrap();
        assert_eq!(decode_server_payload(&payload).unwrap(), frame);
    }

    #[test]
    fn pre_hint_reject_payloads_still_decode() {
        // A v4 peer built before `retry_after_ms` ends Overloaded/Busy
        // right after the first u64. The lenient trailing read must map
        // that to `None`, and JSON from such a peer (no field at all)
        // must deserialize the same way.
        let mut old_overloaded = vec![5u8];
        put_u64(&mut old_overloaded, 9);
        assert_eq!(
            decode_server_payload(&old_overloaded).unwrap(),
            ServerFrame::Overloaded {
                id: 9,
                retry_after_ms: None,
            }
        );
        let mut old_busy = vec![7u8];
        put_u64(&mut old_busy, 32);
        assert_eq!(
            decode_server_payload(&old_busy).unwrap(),
            ServerFrame::Busy {
                limit: 32,
                retry_after_ms: None,
            }
        );
        let json: ServerFrame = serde_json::from_str(r#"{"Overloaded":{"id":9}}"#).unwrap();
        assert_eq!(
            json,
            ServerFrame::Overloaded {
                id: 9,
                retry_after_ms: None,
            }
        );
        // An absent hint serializes as an explicit `null`, which an *old*
        // consumer's struct decoder skips as an unknown key — and this
        // build's decoder reads back as `None`. Round-trip proves both.
        let line = serde_json::to_string(&json).unwrap();
        let back: ServerFrame = serde_json::from_str(&line).unwrap();
        assert_eq!(back, json);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_client_payload(&ClientFrame::Bye);
        payload.push(0);
        assert!(matches!(
            decode_client_payload(&payload),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn hostile_payloads_error_instead_of_panicking() {
        for seed in 0u64..256 {
            let mut x = seed;
            let bytes: Vec<u8> = (0..(seed as usize % 64))
                .map(|_| {
                    x = crate::fault::splitmix(x);
                    (x & 0xff) as u8
                })
                .collect();
            let _ = decode_client_payload(&bytes);
            let _ = decode_server_payload(&bytes);
        }
        // A forged element count larger than the remaining bytes must not
        // drive a huge allocation.
        let mut forged = vec![3u8];
        put_u32(&mut forged, u32::MAX);
        assert!(decode_client_payload(&forged).is_err());
    }

    #[test]
    fn reader_detects_binary_after_magic_and_verifies_checksums() {
        let frame = ClientFrame::Batch {
            queries: sample_specs(3),
        };
        let mut wire = BINARY_MAGIC.to_vec();
        wire.extend_from_slice(&frame_binary(&encode_client_payload(&frame)));
        wire.extend_from_slice(&frame_binary(&encode_client_payload(&ClientFrame::Bye)));

        let mut reader = FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(reader.transport(), Some(Transport::Binary));
        assert_eq!(decode_client_frame(&raw).unwrap(), frame);
        let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
            panic!("expected Bye");
        };
        assert_eq!(decode_client_frame(&raw).unwrap(), ClientFrame::Bye);
        assert!(matches!(reader.next_frame().unwrap(), RawEvent::Eof));

        // Flip one payload byte: the checksum catches it deterministically.
        let flip = wire.len() - 1;
        let mut bad = wire.clone();
        bad[flip] ^= 0x01;
        let mut reader = FrameReader::auto(&bad[..], DEFAULT_MAX_FRAME_BYTES);
        let _first = reader.next_frame().unwrap();
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn reader_still_speaks_json_lines() {
        let wire = b"{\"Bye\":null}\n{\"Stats\":null}\n";
        let mut reader = FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(reader.transport(), Some(Transport::Json));
        assert_eq!(decode_client_frame(&raw).unwrap(), ClientFrame::Bye);
        let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(decode_client_frame(&raw).unwrap(), ClientFrame::Stats);
        assert!(matches!(reader.next_frame().unwrap(), RawEvent::Eof));
    }

    #[test]
    fn oversized_binary_frame_is_rejected_before_buffering() {
        let mut wire = BINARY_MAGIC.to_vec();
        put_u32(&mut wire, 1 << 20);
        put_u32(&mut wire, 0);
        wire.extend_from_slice(&[0u8; 64]);
        let mut reader = FrameReader::auto(&wire[..], 1024);
        assert!(matches!(reader.next_frame().unwrap(), RawEvent::TooLarge));
    }

    #[test]
    fn partial_binary_frames_survive_split_reads() {
        struct Chunks<'a>(Vec<&'a [u8]>);
        impl Read for Chunks<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                let c = self.0.remove(0);
                buf[..c.len()].copy_from_slice(c);
                Ok(c.len())
            }
        }
        let frame = ClientFrame::Query {
            id: 1,
            t: 0.0,
            deadline_ms: None,
            request: sample_request(1),
            query: QueryKind::NextBus,
        };
        let mut wire = BINARY_MAGIC.to_vec();
        wire.extend_from_slice(&frame_binary(&encode_client_payload(&frame)));
        // Split at every offset: the reader must reassemble regardless.
        for cut in 1..wire.len() {
            let mut reader = FrameReader::auto(
                Chunks(vec![&wire[..cut], &wire[cut..]]),
                DEFAULT_MAX_FRAME_BYTES,
            );
            let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
                panic!("cut at {cut}: expected a frame");
            };
            assert_eq!(decode_client_frame(&raw).unwrap(), frame, "cut at {cut}");
            assert!(matches!(reader.next_frame().unwrap(), RawEvent::Eof));
        }
    }

    #[test]
    fn max_size_batch_round_trips() {
        // Fill a batch until just under the default cap — the "paper's
        // 1+k positions, many users per syscall" extreme.
        let mut queries = Vec::new();
        let mut k = 0u64;
        loop {
            let candidate = QuerySpec {
                id: k,
                t: k as f64,
                deadline_ms: None,
                request: Request {
                    pseudonym: format!("batch-user-{k}"),
                    positions: (0..5).map(|i| Point::new(i as f64, k as f64)).collect(),
                },
                query: QueryKind::NextBus,
            };
            queries.push(candidate);
            let frame = ClientFrame::Batch {
                queries: queries.clone(),
            };
            if encode_client_payload(&frame).len() > DEFAULT_MAX_FRAME_BYTES - 256 {
                queries.pop();
                break;
            }
            k += 1;
        }
        assert!(queries.len() > 300, "cap should fit hundreds of queries");
        let frame = ClientFrame::Batch { queries };
        let payload = encode_client_payload(&frame);
        assert!(payload.len() <= DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(decode_client_payload(&payload).unwrap(), frame);

        // And through the reader, framed.
        let mut wire = BINARY_MAGIC.to_vec();
        wire.extend_from_slice(&frame_binary(&payload));
        let mut reader = FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
            panic!("expected the batch frame");
        };
        assert_eq!(decode_client_frame(&raw).unwrap(), frame);
    }
}
