//! Blocking protocol client used by the load generator and tests.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

use dummyloc_core::client::Request;
use dummyloc_lbs::query::{QueryKind, ServiceResponse};

use crate::error::{Result, ServerError};
use crate::proto::{
    write_frame, ClientFrame, FrameEvent, FrameReader, ServerFrame, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use crate::stats::StatsSnapshot;

/// How the server disposed of one query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Answered in full — one answer per reported position.
    Answered(ServiceResponse),
    /// Bounced off the full work queue; not processed, safe to retry.
    Overloaded,
}

/// One connection to a `dummyloc-server`, already past the `Hello`
/// handshake. Queries are issued in lockstep (send, then wait for the
/// matching reply).
#[derive(Debug)]
pub struct ServiceClient {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl ServiceClient {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = BufWriter::new(stream.try_clone()?);
        let mut client = ServiceClient {
            reader: FrameReader::new(stream, DEFAULT_MAX_FRAME_BYTES),
            writer,
            next_id: 0,
        };
        write_frame(
            &mut client.writer,
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        match client.read_frame()? {
            ServerFrame::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            ServerFrame::Error { message, .. } => Err(ServerError::Handshake { message }),
            other => Err(ServerError::Protocol {
                message: format!("unexpected handshake reply: {other:?}"),
            }),
        }
    }

    fn read_frame(&mut self) -> Result<ServerFrame> {
        match self.reader.next_frame()? {
            FrameEvent::Frame(line) => Ok(serde_json::from_str(&line)?),
            FrameEvent::Eof => Err(ServerError::Protocol {
                message: "server closed the connection".to_string(),
            }),
            FrameEvent::TooLarge => Err(ServerError::Protocol {
                message: "oversized server frame".to_string(),
            }),
        }
    }

    /// Sends one service round and waits for its reply.
    pub fn query(&mut self, t: f64, request: &Request, query: &QueryKind) -> Result<QueryOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &ClientFrame::Query {
                id,
                t,
                request: request.clone(),
                query: *query,
            },
        )?;
        loop {
            match self.read_frame()? {
                ServerFrame::Answer { id: rid, response } if rid == id => {
                    return Ok(QueryOutcome::Answered(response));
                }
                ServerFrame::Overloaded { id: rid } if rid == id => {
                    return Ok(QueryOutcome::Overloaded);
                }
                ServerFrame::Error { kind, message, .. } => {
                    return Err(ServerError::Protocol {
                        message: format!("{kind:?}: {message}"),
                    });
                }
                _ => continue,
            }
        }
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        write_frame(&mut self.writer, &ClientFrame::Stats)?;
        loop {
            match self.read_frame()? {
                ServerFrame::Stats { snapshot } => return Ok(snapshot),
                ServerFrame::Error { kind, message, .. } => {
                    return Err(ServerError::Protocol {
                        message: format!("{kind:?}: {message}"),
                    });
                }
                _ => continue,
            }
        }
    }

    /// Says goodbye and closes the connection.
    pub fn bye(mut self) -> Result<()> {
        write_frame(&mut self.writer, &ClientFrame::Bye)?;
        Ok(())
    }
}
