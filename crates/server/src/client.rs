//! Blocking protocol clients used by the load generator and tests.
//!
//! [`ServiceClient`] is the bare connection: typed outcomes, no second
//! chances. [`RetryingClient`] wraps it with the fault-tolerance contract
//! the paper's scheme needs — a user must *always* get the answer for its
//! true position, so failed attempts are retried with exponential
//! backoff plus jitter, reconnecting when the connection is broken, and
//! always resending the **same** request id so the server's observer log
//! counts the report once no matter how many deliveries it took.
//!
//! Both implement the [`Client`] trait (one round or one batch of rounds
//! per call) and both are built through [`ClientBuilder`], which selects
//! the protocol version at connect time: v4 binary by default, with an
//! automatic one-shot fallback to v3 JSON when the server turns the
//! binary handshake away — so one code path serves old and new servers.

use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use dummyloc_core::client::Request;
use dummyloc_lbs::query::{QueryKind, ServiceResponse};
use dummyloc_telemetry::RegistrySnapshot;
use serde::{Deserialize, Serialize};

use crate::codec::{self, ProtoVersion, RawEvent, Transport, BINARY_MAGIC};
use crate::error::{Result, ServerError};
use crate::fault::splitmix;
use crate::proto::{ClientFrame, ErrorKind, QuerySpec, ServerFrame, DEFAULT_MAX_FRAME_BYTES};
use crate::stats::StatsSnapshot;

/// The protocol surface both clients share: one service round, or one
/// batch of independent rounds, per call.
///
/// Named `round` (not `query`) so [`ServiceClient`]'s richer inherent
/// query methods keep working unshadowed; a *round* is the paper's unit —
/// one `1+k`-positions message answered in full.
pub trait Client {
    /// Performs one service round, returning the full response or an
    /// error once the implementation gives up.
    fn round(
        &mut self,
        t: f64,
        deadline_ms: Option<u64>,
        request: &Request,
        query: &QueryKind,
    ) -> Result<ServiceResponse>;

    /// Performs several independent rounds, returning responses in item
    /// order. Over protocol v4 the whole batch travels as one frame; a
    /// v3 connection degrades to lockstep rounds with identical results.
    fn round_batch(&mut self, items: &[BatchItem]) -> Result<Vec<ServiceResponse>>;
}

/// One round inside a [`Client::round_batch`] call — everything a query
/// needs except its id, which the client allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// Service time of the round (seconds).
    pub t: f64,
    /// Per-query deadline in milliseconds; `None` uses the server default.
    pub deadline_ms: Option<u64>,
    /// The paper's message `S`: pseudonym plus `k+1` positions.
    pub request: Request,
    /// What to ask about each position.
    pub query: QueryKind,
}

/// Connect-time configuration shared by both clients: one place that
/// knows how to dial, handshake and version-negotiate.
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    proto: ProtoVersion,
    timeout: Option<Duration>,
}

impl ClientBuilder {
    /// A builder for `addr` with the defaults: protocol v4 (binary) with
    /// automatic fallback to v3, no read timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientBuilder {
            addr: addr.into(),
            proto: ProtoVersion::V4Binary,
            timeout: None,
        }
    }

    /// Pins the protocol version. Pinning [`ProtoVersion::V3Json`] also
    /// disables the fallback (there is nothing older to fall back to).
    pub fn proto(mut self, proto: ProtoVersion) -> Self {
        self.proto = proto;
        self
    }

    /// Read timeout covering the handshake and later replies.
    pub fn timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Connects a bare [`ServiceClient`]. A v4 attempt refused with a
    /// version mismatch (a JSON-pinned server) reconnects once speaking
    /// v3 — the negotiation story from the client side.
    pub fn connect(&self) -> Result<ServiceClient> {
        match ServiceClient::connect_once(self.addr.as_str(), self.timeout, self.proto) {
            Ok(client) => Ok(client),
            Err(ConnectFail::VersionMismatch(message)) => {
                if self.proto == ProtoVersion::V4Binary {
                    ServiceClient::connect_once(
                        self.addr.as_str(),
                        self.timeout,
                        ProtoVersion::V3Json,
                    )
                    .map_err(ConnectFail::into_error)
                } else {
                    Err(ServerError::Handshake { message })
                }
            }
            Err(fail) => Err(fail.into_error()),
        }
    }

    /// Builds a lazily-connecting [`RetryingClient`] that dials with this
    /// builder's protocol settings on every (re)connect.
    pub fn retrying(&self, policy: RetryPolicy, seed: u64) -> Result<RetryingClient> {
        policy.validate()?;
        Ok(RetryingClient {
            builder: self.clone(),
            policy,
            conn: None,
            next_id: 0,
            rng: splitmix(seed ^ 0x9e37_79b9_7f4a_7c15),
            stats: RetryStats::default(),
            breaker: BreakerState::Closed,
            consecutive_bounces: 0,
            latency_samples: Vec::new(),
            latency_pos: 0,
        })
    }
}

/// Why one connect attempt failed — kept apart from [`ServerError`] so
/// the builder can recognize the one failure worth a protocol downgrade.
enum ConnectFail {
    VersionMismatch(String),
    Other(ServerError),
}

impl ConnectFail {
    fn into_error(self) -> ServerError {
        match self {
            ConnectFail::VersionMismatch(message) => ServerError::Handshake { message },
            ConnectFail::Other(e) => e,
        }
    }
}

/// How the server disposed of one query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Answered in full — one answer per reported position.
    Answered(ServiceResponse),
    /// Bounced without being processed — full queue, admission control,
    /// or queue-aging shed; safe to retry. `retry_after_ms` is the
    /// server's backoff hint when it sent one.
    Overloaded {
        /// Server-computed retry hint (milliseconds), if provided.
        retry_after_ms: Option<u64>,
    },
    /// The deadline expired before an answer was sent; safe to retry.
    Deadline,
    /// The server answered this query's id with a typed error frame —
    /// e.g. [`ErrorKind::Internal`] when the worker serving it panicked.
    /// Safe to retry under the same id.
    Failed {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// One connection to a `dummyloc-server`, already past the `Hello`
/// handshake. Single queries are issued in lockstep (send, then wait for
/// the matching reply); [`ServiceClient::query_batch`] pipelines a whole
/// batch before collecting.
#[derive(Debug)]
pub struct ServiceClient {
    reader: codec::FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    proto: ProtoVersion,
    next_id: u64,
}

impl ServiceClient {
    /// Connects and performs the version handshake, waiting forever for
    /// the reply. Speaks v4 binary, falling back to v3 JSON if the server
    /// refuses — shorthand for [`ClientBuilder::connect`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::connect_with_timeout(addr, None)
    }

    /// Connects with a read timeout that covers the handshake itself, so
    /// a server that accepts but never answers (e.g. under fault
    /// injection) cannot hang the caller. The timeout stays in force for
    /// later replies until [`ServiceClient::set_read_timeout`] changes it.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Self> {
        match Self::connect_once(&addr, timeout, ProtoVersion::V4Binary) {
            Err(ConnectFail::VersionMismatch(_)) => {
                Self::connect_once(&addr, timeout, ProtoVersion::V3Json)
                    .map_err(ConnectFail::into_error)
            }
            other => other.map_err(ConnectFail::into_error),
        }
    }

    /// One dial + handshake at a pinned version; no fallback.
    fn connect_once(
        addr: &(impl ToSocketAddrs + ?Sized),
        timeout: Option<Duration>,
        proto: ProtoVersion,
    ) -> std::result::Result<Self, ConnectFail> {
        Self::handshake(addr, timeout, proto).map_err(|e| match e {
            ServerError::Handshake { message } if message.starts_with("version mismatch") => {
                ConnectFail::VersionMismatch(message)
            }
            other => ConnectFail::Other(other),
        })
    }

    fn handshake(
        addr: &(impl ToSocketAddrs + ?Sized),
        timeout: Option<Duration>,
        proto: ProtoVersion,
    ) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut client = ServiceClient {
            // Replies are auto-detected rather than pinned to `proto`:
            // pre-handshake frames (e.g. `Busy` from the acceptor) arrive
            // as JSON even on a connection that will go binary.
            reader: codec::FrameReader::auto(stream, DEFAULT_MAX_FRAME_BYTES),
            writer,
            proto,
            next_id: 0,
        };
        if proto.transport() == Transport::Binary {
            // The magic byte sequence is what flips the server's reader
            // into binary mode; everything after it is framed.
            client.writer.write_all(&BINARY_MAGIC)?;
        }
        client.send_frame(&ClientFrame::Hello {
            version: proto.version(),
        })?;
        match client.read_frame()? {
            ServerFrame::Hello { version } if version == proto.version() => Ok(client),
            ServerFrame::Busy {
                limit,
                retry_after_ms,
            } => Err(ServerError::Busy {
                limit,
                retry_after_ms,
            }),
            ServerFrame::Error {
                kind: ErrorKind::VersionMismatch,
                message,
                ..
            } => Err(ServerError::Handshake {
                message: format!("version mismatch: {message}"),
            }),
            ServerFrame::Error { message, .. } => Err(ServerError::Handshake { message }),
            other => Err(ServerError::Protocol {
                message: format!("unexpected handshake reply: {other:?}"),
            }),
        }
    }

    /// Which protocol version the handshake settled on.
    pub fn proto(&self) -> ProtoVersion {
        self.proto
    }

    /// Caps how long one reply may take before reads fail with a timeout
    /// error. `None` waits forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn send_frame(&mut self, frame: &ClientFrame) -> Result<()> {
        let bytes = codec::encode_client_frame(frame, self.proto.transport())?;
        self.writer.write_all(&bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<ServerFrame> {
        match self.reader.next_frame()? {
            RawEvent::Frame(raw) => Ok(codec::decode_server_frame(&raw)?),
            RawEvent::Eof => Err(ServerError::Protocol {
                message: "server closed the connection".to_string(),
            }),
            RawEvent::TooLarge => Err(ServerError::Protocol {
                message: "oversized server frame".to_string(),
            }),
        }
    }

    /// Sends one service round and waits for its reply.
    pub fn query(&mut self, t: f64, request: &Request, query: &QueryKind) -> Result<QueryOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        self.query_with_id(id, t, None, request, query)
    }

    /// Like [`ServiceClient::query`] with an explicit per-query deadline
    /// (milliseconds of server-side budget).
    pub fn query_with_deadline(
        &mut self,
        t: f64,
        deadline_ms: Option<u64>,
        request: &Request,
        query: &QueryKind,
    ) -> Result<QueryOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        self.query_with_id(id, t, deadline_ms, request, query)
    }

    /// Sends one query under a caller-chosen id — the primitive
    /// [`RetryingClient`] builds on, since a retry must resend the *same*
    /// id (it is the idempotency key). Callers managing ids themselves
    /// must never reuse one for a different logical request.
    pub fn query_with_id(
        &mut self,
        id: u64,
        t: f64,
        deadline_ms: Option<u64>,
        request: &Request,
        query: &QueryKind,
    ) -> Result<QueryOutcome> {
        self.next_id = self.next_id.max(id + 1);
        self.send_frame(&ClientFrame::Query {
            id,
            t,
            deadline_ms,
            request: request.clone(),
            query: *query,
        })?;
        loop {
            match self.read_frame()? {
                ServerFrame::Answer { id: rid, response } if rid == id => {
                    return Ok(QueryOutcome::Answered(response));
                }
                ServerFrame::Overloaded {
                    id: rid,
                    retry_after_ms,
                } if rid == id => {
                    return Ok(QueryOutcome::Overloaded { retry_after_ms });
                }
                ServerFrame::Deadline { id: rid } if rid == id => {
                    return Ok(QueryOutcome::Deadline);
                }
                ServerFrame::Busy {
                    limit,
                    retry_after_ms,
                } => {
                    return Err(ServerError::Busy {
                        limit,
                        retry_after_ms,
                    });
                }
                ServerFrame::Error {
                    id: Some(rid),
                    kind,
                    message,
                } if rid == id => {
                    // Query-scoped error (e.g. a contained worker panic):
                    // the connection may still be healthy, so surface it
                    // typed instead of tearing the client down.
                    return Ok(QueryOutcome::Failed { kind, message });
                }
                ServerFrame::Error { kind, message, .. } => {
                    return Err(ServerError::Protocol {
                        message: format!("{kind:?}: {message}"),
                    });
                }
                _ => continue,
            }
        }
    }

    /// Sends a whole batch of independent queries as one request and
    /// collects every reply, returning outcomes in item order. Over v4
    /// this is a single `Batch` frame — the paper's `1+k`-positions
    /// message shape extended to `n` rounds; over v3 the queries are
    /// pipelined as individual frames with identical semantics.
    pub fn query_batch(&mut self, items: &[BatchItem]) -> Result<Vec<QueryOutcome>> {
        let base = self.next_id;
        self.next_id += items.len() as u64;
        let specs: Vec<QuerySpec> = items
            .iter()
            .enumerate()
            .map(|(i, item)| QuerySpec {
                id: base + i as u64,
                t: item.t,
                deadline_ms: item.deadline_ms,
                request: item.request.clone(),
                query: item.query,
            })
            .collect();
        self.query_batch_with_ids(specs)
    }

    /// The explicit-id batch primitive [`RetryingClient`] builds on: a
    /// retry resends the *same* ids, so the server's idempotency dedup
    /// keeps the observer log single-counted. Ids must be distinct within
    /// the batch; outcomes come back in `specs` order.
    pub fn query_batch_with_ids(&mut self, specs: Vec<QuerySpec>) -> Result<Vec<QueryOutcome>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let ids: Vec<u64> = specs.iter().map(|s| s.id).collect();
        if let Some(max_id) = ids.iter().max() {
            self.next_id = self.next_id.max(max_id + 1);
        }
        match self.proto.transport() {
            Transport::Binary => {
                self.send_frame(&ClientFrame::Batch { queries: specs })?;
            }
            Transport::Json => {
                // v3 has no Batch frame; pipeline the queries back to back
                // so a JSON connection still gets one network round-trip.
                for spec in specs {
                    let bytes = codec::encode_client_frame(
                        &ClientFrame::Query {
                            id: spec.id,
                            t: spec.t,
                            deadline_ms: spec.deadline_ms,
                            request: spec.request,
                            query: spec.query,
                        },
                        Transport::Json,
                    )?;
                    self.writer.write_all(&bytes)?;
                }
                self.writer.flush()?;
            }
        }
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; ids.len()];
        let mut pending = ids.len();
        let slot = |id: u64| ids.iter().position(|&i| i == id);
        while pending > 0 {
            let (idx, outcome) = match self.read_frame()? {
                ServerFrame::Answer { id, response } => {
                    (slot(id), QueryOutcome::Answered(response))
                }
                ServerFrame::Overloaded { id, retry_after_ms } => {
                    (slot(id), QueryOutcome::Overloaded { retry_after_ms })
                }
                ServerFrame::Deadline { id } => (slot(id), QueryOutcome::Deadline),
                ServerFrame::Busy {
                    limit,
                    retry_after_ms,
                } => {
                    return Err(ServerError::Busy {
                        limit,
                        retry_after_ms,
                    })
                }
                ServerFrame::Error {
                    id: Some(id),
                    kind,
                    message,
                } if slot(id).is_some() => (slot(id), QueryOutcome::Failed { kind, message }),
                ServerFrame::Error { kind, message, .. } => {
                    return Err(ServerError::Protocol {
                        message: format!("{kind:?}: {message}"),
                    });
                }
                _ => continue,
            };
            if let Some(idx) = idx {
                if outcomes[idx].is_none() {
                    pending -= 1;
                }
                outcomes[idx] = Some(outcome);
            }
        }
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("all collected"))
            .collect())
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        self.send_frame(&ClientFrame::Stats)?;
        loop {
            match self.read_frame()? {
                ServerFrame::Stats { snapshot } => return Ok(snapshot),
                ServerFrame::Error { kind, message, .. } => {
                    return Err(ServerError::Protocol {
                        message: format!("{kind:?}: {message}"),
                    });
                }
                _ => continue,
            }
        }
    }

    /// Fetches the server's full telemetry registry snapshot (the
    /// protocol-v3 `Metrics` exchange).
    pub fn metrics(&mut self) -> Result<RegistrySnapshot> {
        self.send_frame(&ClientFrame::Metrics)?;
        loop {
            match self.read_frame()? {
                ServerFrame::Metrics { snapshot } => return Ok(snapshot),
                ServerFrame::Error { kind, message, .. } => {
                    return Err(ServerError::Protocol {
                        message: format!("{kind:?}: {message}"),
                    });
                }
                _ => continue,
            }
        }
    }

    /// Says goodbye and closes the connection.
    pub fn bye(mut self) -> Result<()> {
        self.send_frame(&ClientFrame::Bye)?;
        Ok(())
    }
}

impl Client for ServiceClient {
    fn round(
        &mut self,
        t: f64,
        deadline_ms: Option<u64>,
        request: &Request,
        query: &QueryKind,
    ) -> Result<ServiceResponse> {
        let id = self.next_id;
        self.next_id += 1;
        outcome_to_response(self.query_with_id(id, t, deadline_ms, request, query)?)
    }

    fn round_batch(&mut self, items: &[BatchItem]) -> Result<Vec<ServiceResponse>> {
        self.query_batch(items)?
            .into_iter()
            .map(outcome_to_response)
            .collect()
    }
}

/// A bare connection has no second chances: anything short of an answer
/// is an error at the [`Client`] trait level.
fn outcome_to_response(outcome: QueryOutcome) -> Result<ServiceResponse> {
    match outcome {
        QueryOutcome::Answered(response) => Ok(response),
        QueryOutcome::Overloaded { .. } => Err(ServerError::Protocol {
            message: "query bounced: server overloaded".to_string(),
        }),
        QueryOutcome::Deadline => Err(ServerError::Protocol {
            message: "query bounced: deadline expired".to_string(),
        }),
        QueryOutcome::Failed { kind, message } => Err(ServerError::Protocol {
            message: format!("{kind:?}: {message}"),
        }),
    }
}

/// Retry knobs of a [`RetryingClient`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per query, including the first.
    pub max_attempts: u32,
    /// First backoff delay; doubles each further attempt.
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// How long one attempt may wait for its reply before the connection
    /// is declared broken and rebuilt.
    pub attempt_timeout_ms: u64,
    /// Fraction of each backoff randomized away (`0` = fixed delays,
    /// `0.5` = sleep anywhere in `[delay/2, delay]`), so a thundering herd
    /// of retrying clients decorrelates.
    pub jitter: f64,
    /// Consecutive explicit bounces (`Busy` or `Overloaded`) that trip
    /// the circuit breaker open. `0` disables the breaker entirely —
    /// the default, so plain retry behaviour is unchanged.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before admitting one
    /// half-open probe. Ignored while the breaker is disabled.
    pub breaker_open_ms: u64,
    /// Hedge slow reads: once enough answer latencies are sampled, the
    /// first attempt's read timeout shrinks to the observed p99, and a
    /// read that outlives it is abandoned and immediately resent under
    /// the same id (the server's idempotency dedup makes this safe).
    pub hedge: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 5,
            max_delay_ms: 200,
            attempt_timeout_ms: 1_000,
            jitter: 0.5,
            breaker_threshold: 0,
            breaker_open_ms: 500,
            hedge: false,
        }
    }
}

impl RetryPolicy {
    /// Rejects nonsensical knob values.
    pub fn validate(&self) -> Result<()> {
        let err = |message: String| Err(ServerError::Config { message });
        if self.max_attempts == 0 {
            return err("retries: max-attempts must be at least 1".into());
        }
        if self.attempt_timeout_ms == 0 {
            return err("retries: attempt-timeout-ms must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.jitter) || !self.jitter.is_finite() {
            return err(format!(
                "retries: jitter must be in [0, 1], got {}",
                self.jitter
            ));
        }
        if self.max_delay_ms < self.base_delay_ms {
            return err("retries: max-delay-ms must be >= base-delay-ms".into());
        }
        if self.breaker_threshold > 0 && self.breaker_open_ms == 0 {
            return err("retries: breaker-open-ms must be positive when the breaker is on".into());
        }
        Ok(())
    }

    /// The jittered backoff before attempt `attempt` (1-based; attempt 1
    /// has no backoff). `unit` is a uniform sample in `[0, 1)`.
    fn backoff(&self, attempt: u32, unit: f64) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = (attempt - 2).min(16);
        let full = self
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ms) as f64;
        Duration::from_millis((full * (1.0 - self.jitter * unit)) as u64)
    }
}

fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Whether an attempt failed because the socket read timed out (the
/// hedge's trigger), as opposed to a garbled or closed connection.
fn is_timeout(e: &ServerError) -> bool {
    matches!(
        e,
        ServerError::Io(io)
            if matches!(io.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
    )
}

/// Tallies of what a [`RetryingClient`] had to do to get its answers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RetryStats {
    /// Attempts beyond the first, summed over all queries.
    pub retries: u64,
    /// Connections rebuilt after an i/o or protocol failure.
    pub reconnects: u64,
    /// `Overloaded` bounces absorbed.
    pub overloaded: u64,
    /// `Deadline` misses absorbed.
    pub deadline_misses: u64,
    /// `Busy` bounces absorbed while connecting.
    pub busy: u64,
    /// Typed per-query error frames absorbed (e.g. contained worker
    /// panics answered with `Internal`).
    pub server_errors: u64,
    /// Wall-clock microseconds the retry loop spent on fault tolerance:
    /// backoff sleeps plus failed attempts, summed over all queries. The
    /// winning attempt's own latency is *not* included, so this is the
    /// pure overhead the retry machinery added on top of a fault-free run.
    pub overhead_us: u64,
    /// Bounces (`Busy` or `Overloaded`) that carried a server-computed
    /// `retry_after_ms` hint; each one replaced an exponential backoff
    /// with the server's own estimate.
    pub hinted: u64,
    /// First attempts abandoned at the hedge timeout (p99 of sampled
    /// answer latencies) and immediately resent. Every hedge also
    /// rebuilds the connection, so `hedges` is a subset of `reconnects`.
    pub hedges: u64,
    /// Closed→Open breaker transitions.
    pub breaker_opens: u64,
    /// Open→HalfOpen transitions (a probe was admitted).
    pub breaker_half_opens: u64,
    /// HalfOpen→Closed transitions (the probe succeeded).
    pub breaker_closes: u64,
    /// Calls failed fast with [`ServerError::CircuitOpen`] while the
    /// breaker was open — no network traffic was generated for these.
    pub breaker_fast_fails: u64,
}

/// The circuit breaker's three classic states. `Closed` passes traffic;
/// `Open` fails fast until its window elapses; `HalfOpen` admits exactly
/// one probe whose outcome decides between `Closed` and another `Open`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

/// How many answer latencies the hedge keeps (a ring); enough for a
/// stable p99 without unbounded growth.
const HEDGE_SAMPLE_CAP: usize = 512;
/// Answers observed before hedging arms — a p99 of three samples is
/// noise, not a signal.
const HEDGE_MIN_SAMPLES: usize = 20;
/// Floor for the hedge timeout so a microsecond-fast server cannot make
/// the client abandon every read instantly.
const HEDGE_MIN_DELAY: Duration = Duration::from_millis(1);

/// A [`ServiceClient`] wrapped in the retry loop. Ids are allocated once
/// per logical query and survive reconnects, so the server-side dedup can
/// keep the observer log single-counted.
#[derive(Debug)]
pub struct RetryingClient {
    builder: ClientBuilder,
    policy: RetryPolicy,
    conn: Option<ServiceClient>,
    next_id: u64,
    rng: u64,
    stats: RetryStats,
    breaker: BreakerState,
    consecutive_bounces: u32,
    /// Ring buffer of answered-attempt latencies (µs) feeding the hedge's
    /// p99; written even when hedging is off (it is cheap) so flipping
    /// the knob mid-run starts from real data.
    latency_samples: Vec<u64>,
    latency_pos: usize,
}

impl RetryingClient {
    /// Creates a client for `addr` with the default protocol choice (v4,
    /// falling back to v3); connections are opened lazily. `seed` drives
    /// the backoff jitter, keeping whole runs reproducible. Pin a version
    /// with [`ClientBuilder::retrying`] instead.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy, seed: u64) -> Result<Self> {
        ClientBuilder::new(addr).retrying(policy, seed)
    }

    /// What the retry loop has absorbed so far.
    pub fn stats(&self) -> &RetryStats {
        &self.stats
    }

    fn unit(&mut self) -> f64 {
        self.rng = splitmix(self.rng);
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The sleep honoring a server `retry_after_ms` hint before attempt
    /// `attempt`. The hint is a floor, not a schedule: every client
    /// bounced off the same full queue receives the same estimate, and
    /// all of them returning at exactly that instant recreates the
    /// collision that bounced them. Two defenses keep a sustained-
    /// saturation herd from livelocking: jitter stretches the herd
    /// across `[ms, ms * (1 + jitter))`, and the hint never *caps* the
    /// exponential backoff — a query bounced many times in a row is
    /// exactly what the escalation exists for, so the larger of the two
    /// wins. `Some(0)` is the hedge's "retry immediately" and stays 0.
    fn hint_sleep(&mut self, ms: u64, attempt: u32) -> Duration {
        if ms == 0 {
            return Duration::ZERO;
        }
        let unit = self.unit();
        let hinted = Duration::from_millis((ms as f64 * (1.0 + self.policy.jitter * unit)) as u64);
        let unit = self.unit();
        hinted.max(self.policy.backoff(attempt, unit))
    }

    fn connection(&mut self) -> Result<&mut ServiceClient> {
        if self.conn.is_none() {
            // The timeout covers the handshake too: a faulty server that
            // swallows the Hello reply must not hang the retry loop.
            let client = self
                .builder
                .clone()
                .timeout(Some(Duration::from_millis(self.policy.attempt_timeout_ms)))
                .connect()?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Gate at the top of every attempt. `Closed` and `HalfOpen` pass;
    /// `Open` either fails fast or — once its window has elapsed —
    /// transitions to `HalfOpen` and admits this attempt as the probe.
    fn breaker_admit(&mut self) -> Result<()> {
        if self.policy.breaker_threshold == 0 {
            return Ok(());
        }
        match self.breaker {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    self.breaker = BreakerState::HalfOpen;
                    self.stats.breaker_half_opens += 1;
                    Ok(())
                } else {
                    self.stats.breaker_fast_fails += 1;
                    Err(ServerError::CircuitOpen {
                        retry_after_ms: duration_us(until - now).div_ceil(1_000),
                    })
                }
            }
        }
    }

    /// Records one explicit bounce (`Busy` or `Overloaded`). Crossing the
    /// threshold — or bouncing the half-open probe — opens the breaker.
    fn breaker_bounce(&mut self) {
        if self.policy.breaker_threshold == 0 {
            return;
        }
        self.consecutive_bounces = self.consecutive_bounces.saturating_add(1);
        let reopen = self.breaker == BreakerState::HalfOpen;
        if reopen || self.consecutive_bounces >= self.policy.breaker_threshold {
            self.breaker = BreakerState::Open {
                until: Instant::now() + Duration::from_millis(self.policy.breaker_open_ms),
            };
            self.stats.breaker_opens += 1;
            self.consecutive_bounces = 0;
        }
    }

    /// Records a served attempt: resets the bounce streak and closes a
    /// half-open breaker whose probe this was.
    fn breaker_success(&mut self) {
        if self.policy.breaker_threshold == 0 {
            return;
        }
        self.consecutive_bounces = 0;
        if self.breaker == BreakerState::HalfOpen {
            self.breaker = BreakerState::Closed;
            self.stats.breaker_closes += 1;
        }
    }

    fn record_latency_sample(&mut self, us: u64) {
        if self.latency_samples.len() < HEDGE_SAMPLE_CAP {
            self.latency_samples.push(us);
        } else {
            self.latency_samples[self.latency_pos] = us;
            self.latency_pos = (self.latency_pos + 1) % HEDGE_SAMPLE_CAP;
        }
    }

    /// The read timeout for a hedged first attempt: the p99 of sampled
    /// answer latencies, once enough samples exist to mean something.
    fn hedge_delay(&self) -> Option<Duration> {
        if !self.policy.hedge || self.latency_samples.len() < HEDGE_MIN_SAMPLES {
            return None;
        }
        let mut sorted = self.latency_samples.clone();
        sorted.sort_unstable();
        let rank = (sorted.len() * 99).div_ceil(100).max(1) - 1;
        let delay = Duration::from_micros(sorted[rank]).max(HEDGE_MIN_DELAY);
        // Never hedge later than the attempt timeout would fire anyway.
        Some(delay.min(Duration::from_millis(self.policy.attempt_timeout_ms)))
    }

    /// One logical query, retried until answered or the policy is
    /// exhausted. Every attempt resends the same request id.
    pub fn query(
        &mut self,
        t: f64,
        deadline_ms: Option<u64>,
        request: &Request,
        query: &QueryKind,
    ) -> Result<ServiceResponse> {
        let id = self.next_id;
        self.next_id += 1;
        let mut last = String::new();
        // A bounce carrying `retry_after_ms` replaces the next attempt's
        // exponential backoff with the server's own estimate. `Some(0)`
        // doubles as "retry immediately" after a hedge.
        let mut hint_ms: Option<u64> = None;
        let started = Instant::now();
        for attempt in 1..=self.policy.max_attempts {
            // Fail fast while the breaker is open: no sleep, no network.
            self.breaker_admit()?;
            if attempt > 1 {
                self.stats.retries += 1;
                let sleep = match hint_ms.take() {
                    Some(ms) => self.hint_sleep(ms, attempt),
                    None => {
                        let unit = self.unit();
                        self.policy.backoff(attempt, unit)
                    }
                };
                std::thread::sleep(sleep);
            }
            let attempt_started = Instant::now();
            if let Err(e) = self.connection() {
                if let ServerError::Busy { retry_after_ms, .. } = &e {
                    self.stats.busy += 1;
                    if let Some(ms) = retry_after_ms {
                        self.stats.hinted += 1;
                        hint_ms = Some(*ms);
                    }
                    self.breaker_bounce();
                }
                last = e.to_string();
                continue;
            }
            // Hedged first attempt: shrink the read timeout to the p99 of
            // observed answers; a read that outlives it is abandoned and
            // resent immediately. Retries keep the full attempt timeout —
            // hedging a retry would just thrash a slow server.
            let hedge = if attempt == 1 {
                self.hedge_delay()
            } else {
                None
            };
            if let (Some(d), Some(conn)) = (hedge, self.conn.as_ref()) {
                let _ = conn.set_read_timeout(Some(d));
            }
            let outcome = self.conn.as_mut().expect("just connected").query_with_id(
                id,
                t,
                deadline_ms,
                request,
                query,
            );
            if hedge.is_some() {
                if let Some(conn) = self.conn.as_ref() {
                    let _ = conn.set_read_timeout(Some(Duration::from_millis(
                        self.policy.attempt_timeout_ms,
                    )));
                }
            }
            match outcome {
                Ok(QueryOutcome::Answered(response)) => {
                    self.breaker_success();
                    self.record_latency_sample(duration_us(attempt_started.elapsed()));
                    // Everything before the winning attempt began —
                    // backoff sleeps and failed attempts — is overhead.
                    self.stats.overhead_us += duration_us(attempt_started - started);
                    return Ok(response);
                }
                Ok(QueryOutcome::Overloaded { retry_after_ms }) => {
                    // The server is healthy, just full: back off on the
                    // same connection, for as long as the server said.
                    self.stats.overloaded += 1;
                    if let Some(ms) = retry_after_ms {
                        self.stats.hinted += 1;
                        hint_ms = Some(ms);
                    }
                    self.breaker_bounce();
                    last = "overloaded".to_string();
                }
                Ok(QueryOutcome::Deadline) => {
                    self.stats.deadline_misses += 1;
                    last = "deadline expired".to_string();
                }
                Ok(QueryOutcome::Failed { kind, message }) => {
                    self.stats.server_errors += 1;
                    // An Internal error leaves the connection healthy (the
                    // worker respawned); anything else means the server is
                    // about to close it, so rebuild before retrying.
                    if kind != ErrorKind::Internal {
                        self.conn = None;
                        self.stats.reconnects += 1;
                    }
                    last = format!("{kind:?}: {message}");
                }
                Err(e) => {
                    // Timed out, garbled, or closed: this connection can no
                    // longer be trusted to be frame-synchronized. Rebuild.
                    self.conn = None;
                    self.stats.reconnects += 1;
                    if hedge.is_some() && is_timeout(&e) {
                        // The hedge fired, not a fault: resend right away
                        // under the same id. The stale answer (if any) dies
                        // with the abandoned connection.
                        self.stats.hedges += 1;
                        hint_ms = Some(0);
                        last = "hedged".to_string();
                    } else {
                        last = e.to_string();
                    }
                }
            }
        }
        // Exhausted: the whole episode bought nothing, all of it overhead.
        self.stats.overhead_us += duration_us(started.elapsed());
        Err(ServerError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last,
        })
    }

    /// One logical batch of independent queries, retried until every
    /// member is answered or the policy is exhausted. Ids are allocated
    /// once up front; each retry resends **only the still-unanswered
    /// members** under their original ids, so answered queries are never
    /// re-served and the observer log stays single-counted.
    pub fn query_batch(&mut self, items: &[BatchItem]) -> Result<Vec<ServiceResponse>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id += items.len() as u64;
        let mut results: Vec<Option<ServiceResponse>> = vec![None; items.len()];
        let mut last = String::new();
        let mut hint_ms: Option<u64> = None;
        let started = Instant::now();
        for attempt in 1..=self.policy.max_attempts {
            self.breaker_admit()?;
            if attempt > 1 {
                self.stats.retries += 1;
                let sleep = match hint_ms.take() {
                    Some(ms) => self.hint_sleep(ms, attempt),
                    None => {
                        let unit = self.unit();
                        self.policy.backoff(attempt, unit)
                    }
                };
                std::thread::sleep(sleep);
            }
            let attempt_started = Instant::now();
            let unresolved: Vec<usize> =
                (0..items.len()).filter(|&i| results[i].is_none()).collect();
            let specs: Vec<QuerySpec> = unresolved
                .iter()
                .map(|&i| QuerySpec {
                    id: base + i as u64,
                    t: items[i].t,
                    deadline_ms: items[i].deadline_ms,
                    request: items[i].request.clone(),
                    query: items[i].query,
                })
                .collect();
            if let Err(e) = self.connection() {
                if let ServerError::Busy { retry_after_ms, .. } = &e {
                    self.stats.busy += 1;
                    if let Some(ms) = retry_after_ms {
                        self.stats.hinted += 1;
                        hint_ms = Some(*ms);
                    }
                    self.breaker_bounce();
                }
                last = e.to_string();
                continue;
            }
            let conn = self.conn.as_mut().expect("just connected");
            match conn.query_batch_with_ids(specs) {
                Ok(outcomes) => {
                    let mut rebuild = false;
                    let mut answered = 0u64;
                    let mut bounced = 0u64;
                    for (&i, outcome) in unresolved.iter().zip(outcomes) {
                        match outcome {
                            QueryOutcome::Answered(response) => {
                                results[i] = Some(response);
                                answered += 1;
                            }
                            QueryOutcome::Overloaded { retry_after_ms } => {
                                self.stats.overloaded += 1;
                                bounced += 1;
                                if let Some(ms) = retry_after_ms {
                                    self.stats.hinted += 1;
                                    // Several members may carry hints; the
                                    // largest wins — sleeping the longest
                                    // predicted drain covers them all.
                                    hint_ms = Some(hint_ms.unwrap_or(0).max(ms));
                                }
                                last = "overloaded".to_string();
                            }
                            QueryOutcome::Deadline => {
                                self.stats.deadline_misses += 1;
                                last = "deadline expired".to_string();
                            }
                            QueryOutcome::Failed { kind, message } => {
                                self.stats.server_errors += 1;
                                if kind != ErrorKind::Internal {
                                    rebuild = true;
                                }
                                last = format!("{kind:?}: {message}");
                            }
                        }
                    }
                    // Breaker accounting treats the batch as one call: any
                    // answer proves the server is serving; an all-bounce
                    // batch is one bounce in the consecutive streak.
                    if answered > 0 {
                        self.breaker_success();
                    } else if bounced > 0 {
                        self.breaker_bounce();
                    }
                    if results.iter().all(|r| r.is_some()) {
                        self.stats.overhead_us += duration_us(attempt_started - started);
                        return Ok(results.into_iter().map(|r| r.expect("all set")).collect());
                    }
                    if rebuild {
                        self.conn = None;
                        self.stats.reconnects += 1;
                    }
                }
                Err(e) => {
                    // The connection died mid-collection; members whose
                    // replies were lost are resent under the same ids, and
                    // the server's idempotency dedup keeps the observer
                    // log single-counted for any it already served.
                    self.conn = None;
                    self.stats.reconnects += 1;
                    last = e.to_string();
                }
            }
        }
        self.stats.overhead_us += duration_us(started.elapsed());
        Err(ServerError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last,
        })
    }

    /// Says goodbye on any open connection and returns the tallies.
    pub fn finish(mut self) -> RetryStats {
        if let Some(conn) = self.conn.take() {
            let _ = conn.bye();
        }
        self.stats
    }
}

impl Client for RetryingClient {
    fn round(
        &mut self,
        t: f64,
        deadline_ms: Option<u64>,
        request: &Request,
        query: &QueryKind,
    ) -> Result<ServiceResponse> {
        self.query(t, deadline_ms, request, query)
    }

    fn round_batch(&mut self, items: &[BatchItem]) -> Result<Vec<ServiceResponse>> {
        self.query_batch(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_down() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 45,
            attempt_timeout_ms: 100,
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1, 0.0), Duration::ZERO);
        assert_eq!(p.backoff(2, 0.0), Duration::from_millis(10));
        assert_eq!(p.backoff(3, 0.0), Duration::from_millis(20));
        assert_eq!(p.backoff(4, 0.0), Duration::from_millis(40));
        assert_eq!(p.backoff(5, 0.0), Duration::from_millis(45)); // capped
                                                                  // Full jitter sample halves the delay; never increases it.
        assert_eq!(p.backoff(2, 0.999), Duration::from_millis(5));
    }

    #[test]
    fn exhausted_retries_count_backoff_as_overhead() {
        // Bind a port, then drop the listener: connections are refused
        // fast, so overhead is dominated by the deterministic backoffs
        // (jitter 0 ⇒ 8 ms + 16 ms).
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 8,
            max_delay_ms: 100,
            attempt_timeout_ms: 200,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(addr.to_string(), policy, 7).unwrap();
        let request = Request {
            pseudonym: "p".into(),
            positions: vec![dummyloc_geo::Point::new(0.0, 0.0)],
        };
        let err = client.query(0.0, None, &request, &QueryKind::NextBus);
        assert!(err.is_err());
        let stats = client.finish();
        assert_eq!(stats.retries, 2);
        assert!(
            stats.overhead_us >= 24_000,
            "two backoffs of 8+16 ms must show up, got {} µs",
            stats.overhead_us
        );
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        assert!(RetryPolicy::default().validate().is_ok());
        let bad = |f: fn(&mut RetryPolicy)| {
            let mut p = RetryPolicy::default();
            f(&mut p);
            p.validate().is_err()
        };
        assert!(bad(|p| p.max_attempts = 0));
        assert!(bad(|p| p.attempt_timeout_ms = 0));
        assert!(bad(|p| p.jitter = 1.5));
        assert!(bad(|p| p.jitter = f64::NAN));
        assert!(bad(|p| p.max_delay_ms = 0));
        assert!(bad(|p| {
            p.breaker_threshold = 3;
            p.breaker_open_ms = 0;
        }));
    }

    fn breaker_client(threshold: u32, open_ms: u64) -> RetryingClient {
        let policy = RetryPolicy {
            breaker_threshold: threshold,
            breaker_open_ms: open_ms,
            ..RetryPolicy::default()
        };
        RetryingClient::new("127.0.0.1:1", policy, 3).unwrap()
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut c = breaker_client(3, 20);
        // Two bounces stay closed; the third opens.
        c.breaker_bounce();
        c.breaker_bounce();
        assert!(c.breaker_admit().is_ok());
        c.breaker_bounce();
        assert_eq!(c.stats.breaker_opens, 1);
        // Open: fail fast with a millisecond hint, no network.
        match c.breaker_admit() {
            Err(ServerError::CircuitOpen { retry_after_ms }) => {
                assert!(retry_after_ms <= 20, "hint {retry_after_ms} ms");
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(c.stats.breaker_fast_fails, 1);
        // After the window: half-open admits the probe...
        std::thread::sleep(Duration::from_millis(25));
        assert!(c.breaker_admit().is_ok());
        assert_eq!(c.stats.breaker_half_opens, 1);
        // ...and a served probe closes the breaker for good.
        c.breaker_success();
        assert_eq!(c.stats.breaker_closes, 1);
        assert!(c.breaker_admit().is_ok());
        assert_eq!(c.breaker, BreakerState::Closed);
    }

    #[test]
    fn bounced_halfopen_probe_reopens_immediately() {
        let mut c = breaker_client(2, 15);
        c.breaker_bounce();
        c.breaker_bounce();
        assert_eq!(c.stats.breaker_opens, 1);
        std::thread::sleep(Duration::from_millis(20));
        assert!(c.breaker_admit().is_ok()); // half-open probe
        c.breaker_bounce(); // probe bounced: one strike reopens
        assert_eq!(c.stats.breaker_opens, 2);
        assert!(c.breaker_admit().is_err());
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut c = breaker_client(0, 100);
        for _ in 0..1_000 {
            c.breaker_bounce();
        }
        assert!(c.breaker_admit().is_ok());
        assert_eq!(c.stats.breaker_opens, 0);
    }

    #[test]
    fn hedge_delay_needs_samples_then_tracks_p99() {
        let policy = RetryPolicy {
            hedge: true,
            attempt_timeout_ms: 1_000,
            ..RetryPolicy::default()
        };
        let mut c = RetryingClient::new("127.0.0.1:1", policy, 3).unwrap();
        assert_eq!(c.hedge_delay(), None, "cold: not enough samples");
        // 99 fast answers and one 500 ms straggler: p99 lands on the
        // straggler's neighborhood, not the fast mass.
        for _ in 0..99 {
            c.record_latency_sample(2_000);
        }
        c.record_latency_sample(500_000);
        let d = c.hedge_delay().expect("armed after enough samples");
        assert!(d >= Duration::from_millis(2), "got {d:?}");
        assert!(d <= Duration::from_millis(500), "got {d:?}");
        // The attempt timeout is a hard ceiling.
        c.record_latency_sample(10_000_000);
        for _ in 0..HEDGE_SAMPLE_CAP {
            c.record_latency_sample(10_000_000);
        }
        assert_eq!(c.hedge_delay(), Some(Duration::from_millis(1_000)));
        // And the ring never grows past its cap.
        assert!(c.latency_samples.len() <= HEDGE_SAMPLE_CAP);
    }
}
