//! Seeded, deterministic fault injection for the service layer.
//!
//! A [`FaultPlan`] names per-event rates for six hostile conditions:
//! dropped, delayed, truncated and corrupted reply frames, stalled
//! connections, and refused accepts. Rates are applied through
//! low-discrepancy accumulators ([`Pacer`]) rather than independent coin
//! flips: a rate `p` fires on the frame where the running sum of `p`
//! crosses the next integer, with a seed-derived phase. That keeps runs
//! with the same traffic volume hitting the same fault *counts* (any kind
//! with `p ≥ 1/N` is guaranteed to fire within `N` events), which is what
//! lets the chaos tests assert "every configured fault kind actually
//! happened" without flaking.
//!
//! Injection happens on the server's *outbound* path — the client's frames
//! always arrive intact, the replies suffer — which models a lossy or
//! hostile network while keeping the request streams (and therefore the
//! observer log the privacy analysis consumes) well-defined.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::stats::ServerStats;

/// Per-event fault rates, all in `[0, 1]`. `0` everywhere (the default)
/// disables injection entirely and costs nothing on the hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the accumulator phases; same seed + same traffic ⇒ same
    /// fault pattern.
    pub seed: u64,
    /// Rate of reply frames silently dropped.
    pub drop: f64,
    /// Rate of reply frames delayed by [`FaultPlan::delay_ms`].
    pub delay: f64,
    /// How long a delayed frame is held back, in milliseconds.
    pub delay_ms: u64,
    /// Rate of reply frames cut in half mid-line (framing survives, the
    /// JSON does not).
    pub truncate: f64,
    /// Rate of reply frames with corrupted bytes.
    pub corrupt: f64,
    /// Rate at which a reply permanently stalls its connection: the frame
    /// and everything after it are withheld while the socket stays open.
    pub stall: f64,
    /// Rate of accepted connections closed before any frame is served.
    pub refuse_accept: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The all-zero plan: no faults injected.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            delay: 0.0,
            delay_ms: 0,
            truncate: 0.0,
            corrupt: 0.0,
            stall: 0.0,
            refuse_accept: 0.0,
        }
    }

    /// Whether any rate is nonzero.
    pub fn is_active(&self) -> bool {
        [
            self.drop,
            self.delay,
            self.truncate,
            self.corrupt,
            self.stall,
            self.refuse_accept,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    /// Checks every rate is a probability; returns the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("fault-drop", self.drop),
            ("fault-delay", self.delay),
            ("fault-truncate", self.truncate),
            ("fault-corrupt", self.corrupt),
            ("fault-stall", self.stall),
            ("fault-refuse", self.refuse_accept),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Fixed-point rate accumulator: `fire` returns true on exactly the calls
/// where `phase + n·p` crosses an integer. Lock-free and shared by every
/// connection, so rates apply to the server's total reply stream.
#[derive(Debug)]
struct Pacer {
    acc: AtomicU64,
    step: u64,
}

/// One unit in the accumulator's fixed-point representation.
const ONE: u64 = 1 << 32;

impl Pacer {
    fn new(rate: f64, phase: u64) -> Self {
        Pacer {
            acc: AtomicU64::new(phase % ONE),
            step: (rate.clamp(0.0, 1.0) * ONE as f64) as u64,
        }
    }

    fn fire(&self) -> bool {
        if self.step == 0 {
            return false;
        }
        let prev = self.acc.fetch_add(self.step, Ordering::Relaxed);
        (prev.wrapping_add(self.step)) / ONE > prev / ONE
    }
}

/// SplitMix64 — derives independent accumulator phases from the plan seed
/// (and, in the client, retry-jitter samples).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What the injector decided to do with one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Deliver unchanged.
    Deliver,
    /// Silently discard the frame.
    Drop,
    /// Deliver the first half of the line only.
    Truncate,
    /// Deliver with corrupted bytes.
    Corrupt,
    /// Withhold this frame and every later one on the connection.
    Stall,
}

/// Shared injection state built from an active [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjector {
    drop: Pacer,
    delay: Pacer,
    delay_for: Duration,
    truncate: Pacer,
    corrupt: Pacer,
    stall: Pacer,
    refuse: Pacer,
}

impl FaultInjector {
    /// Builds the shared injector, or `None` for an inactive plan.
    pub fn from_plan(plan: &FaultPlan) -> Option<Arc<Self>> {
        if !plan.is_active() {
            return None;
        }
        let phase = |salt: u64| splitmix(plan.seed ^ salt);
        Some(Arc::new(FaultInjector {
            drop: Pacer::new(plan.drop, phase(0x01)),
            delay: Pacer::new(plan.delay, phase(0x02)),
            delay_for: Duration::from_millis(plan.delay_ms),
            truncate: Pacer::new(plan.truncate, phase(0x03)),
            corrupt: Pacer::new(plan.corrupt, phase(0x04)),
            stall: Pacer::new(plan.stall, phase(0x05)),
            refuse: Pacer::new(plan.refuse_accept, phase(0x06)),
        }))
    }

    /// Whether the acceptor should close this freshly accepted connection.
    pub fn refuse_accept(&self, stats: &ServerStats) -> bool {
        if self.refuse.fire() {
            stats.record_fault_refused();
            return true;
        }
        false
    }

    /// Picks this frame's fate (precedence: stall > drop > truncate >
    /// corrupt; a masked kind keeps its accumulated credit and fires on a
    /// later frame) and applies the delay fault if due.
    fn fate(&self, stats: &ServerStats) -> FrameFate {
        if self.stall.fire() {
            stats.record_fault_stalled();
            return FrameFate::Stall;
        }
        if self.drop.fire() {
            stats.record_fault_dropped();
            return FrameFate::Drop;
        }
        if self.truncate.fire() {
            stats.record_fault_truncated();
            return FrameFate::Truncate;
        }
        if self.corrupt.fire() {
            stats.record_fault_corrupted();
            return FrameFate::Corrupt;
        }
        FrameFate::Deliver
    }

    /// Transmits one already-serialized frame through the fault model.
    /// Returns the fate so the caller can latch `Stall`.
    ///
    /// `cancel` bounds the delay fault: the sleep is sliced and abandoned
    /// as soon as the flag is raised, so a server shutdown never waits
    /// out a long injected delay (the frame is still delivered — only
    /// the hold is cut short).
    pub fn transmit<W: Write>(
        &self,
        w: &mut W,
        frame: FrameBytes<'_>,
        stats: &ServerStats,
        cancel: &AtomicBool,
    ) -> io::Result<FrameFate> {
        let fate = self.fate(stats);
        if matches!(fate, FrameFate::Stall | FrameFate::Drop) {
            return Ok(fate);
        }
        if self.delay.fire() {
            stats.record_fault_delayed();
            sleep_unless(self.delay_for, cancel);
        }
        match (fate, frame) {
            (FrameFate::Deliver, FrameBytes::Json(line)) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
            }
            (FrameFate::Truncate, FrameBytes::Json(line)) => {
                w.write_all(&line.as_bytes()[..line.len() / 2])?;
                w.write_all(b"\n")?;
            }
            (FrameFate::Corrupt, FrameBytes::Json(line)) => {
                let mut bytes = line.as_bytes().to_vec();
                corrupt_in_place(&mut bytes);
                w.write_all(&bytes)?;
                w.write_all(b"\n")?;
            }
            (FrameFate::Deliver, FrameBytes::Binary(bytes)) => {
                w.write_all(bytes)?;
            }
            (FrameFate::Truncate, FrameBytes::Binary(bytes)) => {
                // A binary frame has no terminator: the cut leaves a torn
                // frame the reader detects via its length prefix /
                // checksum.
                w.write_all(&bytes[..bytes.len() / 2])?;
            }
            (FrameFate::Corrupt, FrameBytes::Binary(bytes)) => {
                let mut bytes = bytes.to_vec();
                corrupt_binary_in_place(&mut bytes);
                w.write_all(&bytes)?;
            }
            (FrameFate::Stall | FrameFate::Drop, _) => unreachable!("returned above"),
        }
        w.flush()?;
        Ok(fate)
    }
}

/// One serialized reply frame, tagged by the transport framing it uses —
/// the fault model mangles JSON lines and binary frames differently
/// because their framing disciplines differ.
#[derive(Debug, Clone, Copy)]
pub enum FrameBytes<'a> {
    /// One JSON line, *without* its trailing newline.
    Json(&'a str),
    /// One complete binary frame (header + payload).
    Binary(&'a [u8]),
}

/// Sleeps up to `total`, in small slices, returning early once `cancel`
/// is raised — the bounded-shutdown guarantee under delay faults.
fn sleep_unless(total: Duration, cancel: &AtomicBool) {
    const SLICE: Duration = Duration::from_millis(10);
    let deadline = Instant::now() + total;
    while !cancel.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep((deadline - now).min(SLICE));
    }
}

/// Mangles a serialized JSON line so it keeps its framing (no newline
/// bytes introduced) but is guaranteed not to parse: JSON cannot start
/// with `}`, and a mid-line quote is knocked out for good measure.
fn corrupt_in_place(bytes: &mut [u8]) {
    if let Some(b) = bytes.first_mut() {
        *b = b'}';
    }
    let mid = bytes.len() / 2;
    if let Some(b) = bytes.get_mut(mid) {
        *b = if *b == b'#' { b'~' } else { b'#' };
    }
}

/// Flips one payload byte of a binary frame, leaving the length prefix
/// intact so the stream stays frame-synchronized — the payload checksum
/// is what must catch the damage.
fn corrupt_binary_in_place(bytes: &mut [u8]) {
    let idx = if bytes.len() > 8 {
        8 + (bytes.len() - 8) / 2
    } else if bytes.len() > 4 {
        // Header-only frame: damage the checksum itself.
        4
    } else {
        return;
    };
    bytes[idx] ^= 0xff;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(p: f64) -> FaultPlan {
        FaultPlan {
            seed: 9,
            drop: p,
            delay: p,
            delay_ms: 0,
            truncate: p,
            corrupt: p,
            stall: p,
            refuse_accept: p,
        }
    }

    #[test]
    fn inactive_plan_builds_no_injector() {
        assert!(FaultInjector::from_plan(&FaultPlan::none()).is_none());
        assert!(!FaultPlan::none().is_active());
        assert!(plan(0.1).is_active());
    }

    #[test]
    fn rates_outside_unit_interval_are_rejected() {
        assert!(plan(0.5).validate().is_ok());
        assert!(plan(1.5).validate().is_err());
        assert!(plan(-0.1).validate().is_err());
        assert!(plan(f64::NAN).validate().is_err());
    }

    #[test]
    fn pacer_fires_at_the_configured_rate() {
        for rate in [0.01, 0.1, 0.5, 1.0] {
            let pacer = Pacer::new(rate, splitmix(3));
            let fired = (0..10_000).filter(|_| pacer.fire()).count();
            let expect = (10_000.0 * rate) as i64;
            assert!(
                (fired as i64 - expect).abs() <= 1,
                "rate {rate}: fired {fired}, expected ~{expect}"
            );
        }
        let never = Pacer::new(0.0, 1234);
        assert!((0..1000).all(|_| !never.fire()));
    }

    #[test]
    fn pacer_guarantees_a_fire_within_one_over_p_events() {
        // Worst-case phase still fires within ceil(1/p) + 1 events (the
        // +1 absorbs the fixed-point truncation of the step).
        for phase in [0, ONE / 3, ONE - 1] {
            let pacer = Pacer::new(0.05, phase);
            assert!((0..21).any(|_| pacer.fire()));
        }
    }

    #[test]
    fn truncate_and_corrupt_keep_framing_but_break_json() {
        let stats = ServerStats::new();
        let line = serde_json::to_string(&crate::proto::ServerFrame::Overloaded {
            id: 3,
            retry_after_ms: None,
        })
        .unwrap();

        let mut corrupted = line.clone().into_bytes();
        corrupt_in_place(&mut corrupted);
        assert!(!corrupted.contains(&b'\n'));
        let corrupted = String::from_utf8(corrupted).unwrap();
        assert!(serde_json::from_str::<crate::proto::ServerFrame>(&corrupted).is_err());

        // Drive a transmit with truncate rate 1: one line out, one '\n',
        // and the payload does not parse.
        let p = FaultPlan {
            truncate: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::from_plan(&p).unwrap();
        let mut wire = Vec::new();
        assert_eq!(
            inj.transmit(
                &mut wire,
                FrameBytes::Json(&line),
                &stats,
                &AtomicBool::new(false)
            )
            .unwrap(),
            FrameFate::Truncate
        );
        let text = String::from_utf8(wire).unwrap();
        assert!(text.ends_with('\n'));
        let payload = text.trim_end_matches('\n');
        assert_eq!(payload.len(), line.len() / 2);
        assert!(serde_json::from_str::<crate::proto::ServerFrame>(payload).is_err());
        assert_eq!(stats.snapshot().faults.truncated, 1);
    }

    #[test]
    fn binary_truncate_and_corrupt_are_caught_by_the_codec() {
        use crate::codec::{self, FrameReader, RawEvent, Transport};
        let stats = ServerStats::new();
        let frame = codec::encode_server_frame(
            &crate::proto::ServerFrame::Overloaded {
                id: 3,
                retry_after_ms: None,
            },
            Transport::Binary,
        )
        .unwrap();

        // Corrupt: framing survives (length prefix intact) but the
        // checksum rejects the payload.
        let p = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::from_plan(&p).unwrap();
        let mut wire = Vec::new();
        assert_eq!(
            inj.transmit(
                &mut wire,
                FrameBytes::Binary(&frame),
                &stats,
                &AtomicBool::new(false)
            )
            .unwrap(),
            FrameFate::Corrupt
        );
        assert_eq!(wire.len(), frame.len());
        let mut stream = codec::BINARY_MAGIC.to_vec();
        stream.extend_from_slice(&wire);
        let mut reader = FrameReader::auto(&stream[..], 1 << 16);
        assert!(reader.next_frame().is_err(), "checksum must reject");

        // Truncate: the torn frame never completes, so the reader sees
        // EOF without producing a frame (a live socket would keep
        // waiting — the client's attempt timeout fires instead).
        let p = FaultPlan {
            truncate: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::from_plan(&p).unwrap();
        let mut wire = Vec::new();
        assert_eq!(
            inj.transmit(
                &mut wire,
                FrameBytes::Binary(&frame),
                &stats,
                &AtomicBool::new(false)
            )
            .unwrap(),
            FrameFate::Truncate
        );
        assert_eq!(wire.len(), frame.len() / 2);
        let mut stream = codec::BINARY_MAGIC.to_vec();
        stream.extend_from_slice(&wire);
        let mut reader = FrameReader::auto(&stream[..], 1 << 16);
        assert!(matches!(reader.next_frame().unwrap(), RawEvent::Eof));
    }

    #[test]
    fn raised_cancel_flag_cuts_an_injected_delay_short() {
        let p = FaultPlan {
            delay: 1.0,
            delay_ms: 60_000,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::from_plan(&p).unwrap();
        let stats = ServerStats::new();
        let mut wire = Vec::new();
        let started = Instant::now();
        let fate = inj
            .transmit(
                &mut wire,
                FrameBytes::Json("{}"),
                &stats,
                &AtomicBool::new(true),
            )
            .unwrap();
        // A 60 s injected delay returns immediately under cancellation,
        // and the frame is still delivered intact.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(fate, FrameFate::Deliver);
        assert_eq!(wire, b"{}\n");
        assert_eq!(stats.snapshot().faults.delayed, 1);
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let run = || {
            let inj = FaultInjector::from_plan(&plan(0.3)).unwrap();
            let stats = ServerStats::new();
            (0..64).map(|_| inj.fate(&stats)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert!(run().iter().any(|f| *f != FrameFate::Deliver));
    }
}
