//! The adversary subsystem: attacks that try to break the dummy schemes.
//!
//! The ICDE 2005 paper argues MN/MLN dummies defeat an observer because
//! every candidate stream is *temporally consistent*. The core crate's
//! [`adversary`](dummyloc_core::adversary) models test that claim with
//! greedy linking; this crate escalates to the strongest observer we can
//! build from the observer log alone, in three layers:
//!
//! * [`filters`] — per-chain plausibility gates: a velocity bound (no
//!   human/vehicle outruns `max_speed`) and a turn-angle bound (no mover
//!   reverses at speed). Chains that violate either are discarded before
//!   scoring.
//! * [`viterbi`] — an HMM over the service-area grid: candidate positions
//!   are emissions, transitions are penalized by how many grid rings a
//!   step crosses beyond the plausible reach, and a streaming Viterbi
//!   pass decodes the most plausible trajectory among the `1 + k`
//!   interleaved streams.
//! * [`linkage`] — the cross-pseudonym attack: when pseudonyms rotate,
//!   decoded trajectory tails are matched to decoded heads across the
//!   change by motion continuity (minimum-cost assignment over predicted
//!   positions), measuring how much anonymity a pseudonym switch buys.
//!
//! [`pipeline`] composes the layers into one [`Adversary`]
//! (filters prune, Viterbi scores) and runs it over in-memory
//! [`ObserverLog`](dummyloc_lbs::provider::ObserverLog)s or any durable
//! [`Storage`](dummyloc_store::Storage) backend without materializing
//! streams. [`observe`] synthesizes observer-side request streams from a
//! workload, and [`experiments`] packages the identification-rate sweeps
//! (`attack-random`, `attack-mn`, `attack-mln`, `attack-linkage`) for the
//! shared experiment registry.
//!
//! [`Adversary`]: dummyloc_core::adversary::Adversary

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod filters;
pub mod linkage;
pub mod observe;
pub mod pipeline;
pub mod viterbi;

use dummyloc_geo::{BBox, Grid, Point};

pub use filters::ChainTracker;
pub use linkage::relink;
pub use pipeline::{
    attack_observer_log, attack_storage, PipelineTracker, PseudonymReport, StreamDecoder,
    StreamVerdict,
};
pub use viterbi::ViterbiDecoder;

/// Tuning knobs shared by every layer of the attack pipeline.
///
/// The defaults are calibrated against the Nara workload: rickshaws
/// cruise at 1.5–4 m/s and MN/MLN dummies step at most `m·√2 ≈ 170` m
/// per 30 s round, so a 7 m/s speed bound (210 m per round) passes every
/// legitimate mover while random dummies (mean jump ≈ 1 km) blow through
/// it almost every round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Service area the observer assumes (must contain the workload).
    pub area: BBox,
    /// Cells per side of the HMM discretization grid.
    pub grid_size: u32,
    /// Seconds between rounds, as estimated by the observer.
    pub tick: f64,
    /// Fastest plausible mover in m/s; drives both the velocity gate and
    /// the Viterbi free-transition radius.
    pub max_speed: f64,
    /// Largest plausible heading change (degrees) between two consecutive
    /// *long* steps — momentum makes reversals at speed implausible.
    pub max_turn_deg: f64,
    /// Steps shorter than this (meters) never trigger the turn gate:
    /// below it, dwells and GPS noise dominate heading.
    pub min_turn_step: f64,
    /// Viterbi cost per grid ring beyond the plausible reach; only the
    /// relative scale matters.
    pub ring_penalty: f64,
}

impl AttackConfig {
    /// Defaults matching the engine's Nara setting.
    pub fn nara_default() -> Self {
        AttackConfig {
            area: BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0))
                .expect("static bounds"),
            grid_size: 24,
            tick: 30.0,
            max_speed: 7.0,
            max_turn_deg: 150.0,
            min_turn_step: 250.0,
            ring_penalty: 1.0,
        }
    }

    /// Largest plausible per-round displacement in meters.
    pub fn max_step(&self) -> f64 {
        self.max_speed * self.tick
    }

    /// The HMM discretization grid.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate area/grid combination — configs are
    /// attack-setup internals where that is a bug.
    pub fn grid(&self) -> Grid {
        Grid::square(self.area, self.grid_size).expect("valid attack grid")
    }

    /// Chebyshev cell distance reachable by a plausible mover in one
    /// round; transitions within this many rings cost nothing.
    pub fn free_ring(&self, grid: &Grid) -> u32 {
        let cell = grid.cell_width().min(grid.cell_height());
        (self.max_step() / cell).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nara_default_is_consistent() {
        let cfg = AttackConfig::nara_default();
        assert!((cfg.max_step() - 210.0).abs() < 1e-9);
        let grid = cfg.grid();
        // 2000 m / 24 cells ≈ 83 m: a 210 m reach spans 3 rings.
        assert_eq!(cfg.free_ring(&grid), 3);
        // The turn gate must sit above the fastest legitimate step, or
        // the true track would accumulate false violations.
        assert!(cfg.min_turn_step > cfg.max_step());
    }
}
