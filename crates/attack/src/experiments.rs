//! The `attack-*` experiments: identification probability vs `k`.
//!
//! Each sweep replays the client loop over the workload with `k = 1..4`
//! dummies per user, hands the observer-side streams to three
//! adversaries — the uniform [`RandomGuesser`] floor, the greedy
//! [`ContinuityTracker`] (the paper-level observer), and this crate's
//! full [`PipelineTracker`] — and reports per-`k` identification rates.
//! The expected ordering is the whole point of the subsystem:
//!
//! * `attack-random` — the pipeline identifies nearly every user: the
//!   velocity gate and Viterbi penalties shred teleporting dummies;
//! * `attack-mn` / `attack-mln` — the pipeline is pushed back to the
//!   `1/(k+1)` chance line at realistic `k`: temporally consistent
//!   dummies survive even an optimal decoder, the paper's claim;
//! * `attack-linkage` — with rotating pseudonyms, relink accuracy
//!   collapses from near-certainty at `k = 0` toward the `1/users`
//!   floor as dummies blur the decoded tails.
//!
//! Users are attacked in parallel on the shared pool with one seed per
//! stream from a [`SeedTree`], so reports are byte-identical at any
//! `--threads` setting.
//!
//! [`RandomGuesser`]: dummyloc_core::adversary::RandomGuesser
//! [`ContinuityTracker`]: dummyloc_core::adversary::ContinuityTracker

use dummyloc_core::adversary::{Adversary, ChainScore, ContinuityTracker, RandomGuesser};
use dummyloc_core::generator::{DummyGenerator, MlnGenerator, MnGenerator, RandomGenerator};
use dummyloc_core::pool::ThreadPool;
use dummyloc_core::SeedTree;
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_sim::experiments::{Experiment, ExperimentReport, Registry};
use dummyloc_sim::report::{fmt, Table};
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::linkage::relink;
use crate::observe::{into_streams, observe, ObserveConfig, Rotation};
use crate::pipeline::PipelineTracker;
use crate::AttackConfig;

/// Dummy counts swept by every attack experiment.
const KS: [usize; 4] = [1, 2, 3, 4];

/// Which dummy algorithm an attack sweep targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// The random strawman — teleporting dummies.
    Random,
    /// Moving in a neighborhood, `m = 120`.
    Mn,
    /// MN with the density-aware retry (MLN), `m = 120`.
    Mln,
}

impl GeneratorKind {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GeneratorKind::Random => "random",
            GeneratorKind::Mn => "mn (m=120)",
            GeneratorKind::Mln => "mln (m=120)",
        }
    }

    fn generator(&self, config: &ObserveConfig) -> Box<dyn DummyGenerator> {
        let area = config.area;
        match self {
            GeneratorKind::Random => Box::new(RandomGenerator::new(area).expect("valid area")),
            GeneratorKind::Mn => Box::new(MnGenerator::new(area, 120.0).expect("valid m")),
            GeneratorKind::Mln => Box::new(MlnGenerator::new(area, 120.0).expect("valid m")),
        }
    }
}

/// One `k` of an attack sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackRow {
    /// Dummies per user.
    pub k: usize,
    /// The `1/(k+1)` chance floor.
    pub chance: f64,
    /// Uniform-guess identification rate.
    pub random_rate: f64,
    /// Greedy continuity-tracker rate (the paper-level observer).
    pub greedy_rate: f64,
    /// Full pipeline rate (filters + Viterbi).
    pub pipeline_rate: f64,
    /// Mean fraction of candidate chains surviving the filters.
    pub mean_plausible: f64,
}

/// One attack sweep: a generator under all three observers across `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackResult {
    /// Attacked dummy algorithm.
    pub generator: String,
    /// Users in the workload.
    pub users: usize,
    /// One row per swept `k`.
    pub rows: Vec<AttackRow>,
}

/// Runs one identification sweep. Streams are synthesized serially (the
/// MLN density view couples users within a round); the attack itself is
/// per-user parallel on the process-default pool.
///
/// # Panics
///
/// Panics if a pool worker panics — attack workers are panic-free by
/// construction, so that is a bug.
pub fn attack_sweep(seed: u64, fleet: &Dataset, kind: GeneratorKind) -> AttackResult {
    let attack_config = AttackConfig::nara_default();
    let pipeline = PipelineTracker::new(attack_config);
    let greedy = ContinuityTracker::new(ChainScore::MaxStep);
    let tree = SeedTree::new(seed);
    let pool = ThreadPool::with_default();
    let mut rows = Vec::with_capacity(KS.len());
    for (ki, &k) in KS.iter().enumerate() {
        let kt = tree.subtree(ki as u64);
        let mut config = ObserveConfig::nara_default(kt.child_seed(0));
        config.dummies = k;
        let streams = into_streams(observe(fleet, &config, |_| kind.generator(&config)));
        let adversary_seeds = kt.subtree(1);
        let hits = pool
            .map(&streams, |i, (requests, truth)| {
                let mut rng = rng_from_seed(adversary_seeds.child_seed(i as u64));
                let random_hit = RandomGuesser.identify(&mut rng, requests) == Some(*truth);
                let greedy_hit = greedy.identify(&mut rng, requests) == Some(*truth);
                let verdict = pipeline.verdict(requests).expect("streams are non-empty");
                let pipeline_hit = verdict.path.final_index == *truth;
                let plausible_share = verdict.plausible as f64 / verdict.candidates as f64;
                (random_hit, greedy_hit, pipeline_hit, plausible_share)
            })
            .expect("attack workers don't panic");
        let n = streams.len() as f64;
        let count = |pick: fn(&(bool, bool, bool, f64)) -> bool| {
            hits.iter().filter(|h| pick(h)).count() as f64 / n
        };
        rows.push(AttackRow {
            k,
            chance: 1.0 / (k + 1) as f64,
            random_rate: count(|h| h.0),
            greedy_rate: count(|h| h.1),
            pipeline_rate: count(|h| h.2),
            mean_plausible: hits.iter().map(|h| h.3).sum::<f64>() / n,
        });
    }
    AttackResult {
        generator: kind.label().to_string(),
        users: fleet.len(),
        rows,
    }
}

/// Renders an attack sweep table.
pub fn render_attack(result: &AttackResult) -> String {
    let mut table = Table::new(
        format!(
            "attack — {} vs layered observer ({} users)",
            result.generator, result.users
        ),
        &[
            "k",
            "chance",
            "random rate",
            "greedy rate",
            "pipeline rate",
            "plausible share",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.k.to_string(),
            fmt(r.chance, 2),
            fmt(r.random_rate, 2),
            fmt(r.greedy_rate, 2),
            fmt(r.pipeline_rate, 2),
            fmt(r.mean_plausible, 2),
        ]);
    }
    table.render()
}

/// One `k` of the linkage sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkageRow {
    /// Dummies per user.
    pub k: usize,
    /// Rotation boundaries examined.
    pub boundaries: usize,
    /// Cross-pseudonym relink accuracy (chance = `1/users`).
    pub relink_rate: f64,
}

/// The full linkage result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkageResult {
    /// Users in the workload (fixes the chance level `1/users`).
    pub users: usize,
    /// Rounds per pseudonym segment.
    pub period: usize,
    /// Silent rounds at each change.
    pub silent_rounds: usize,
    /// One row per swept `k`.
    pub rows: Vec<LinkageRow>,
}

/// Runs the cross-pseudonym linkage sweep: pseudonyms rotate every 8
/// rounds with 1 silent round, `k` sweeps 0..3.
pub fn linkage_sweep(seed: u64, fleet: &Dataset) -> LinkageResult {
    let attack_config = AttackConfig::nara_default();
    let rotation = Rotation {
        period: 8,
        silent_rounds: 1,
    };
    let tree = SeedTree::new(seed);
    let mut rows = Vec::new();
    for (ki, &k) in [0usize, 1, 2, 3].iter().enumerate() {
        let mut config = ObserveConfig::nara_default(tree.child_seed(ki as u64));
        config.dummies = k;
        config.rotation = Some(rotation);
        let area = config.area;
        let segments = observe(fleet, &config, |_| {
            Box::new(MnGenerator::new(area, 120.0).expect("valid m")) as Box<dyn DummyGenerator>
        });
        let outcome = relink(&segments, &attack_config);
        rows.push(LinkageRow {
            k,
            boundaries: outcome.boundaries,
            relink_rate: outcome.relink_rate(),
        });
    }
    LinkageResult {
        users: fleet.len(),
        period: rotation.period,
        silent_rounds: rotation.silent_rounds,
        rows,
    }
}

/// Renders the linkage table.
pub fn render_linkage(result: &LinkageResult) -> String {
    let mut table = Table::new(
        format!(
            "attack-linkage — relink accuracy across pseudonym changes ({} users; chance {:.3}; period {}, silence {})",
            result.users,
            1.0 / result.users as f64,
            result.period,
            result.silent_rounds
        ),
        &["k", "boundaries", "relink rate"],
    );
    for r in &result.rows {
        table.row(&[
            r.k.to_string(),
            r.boundaries.to_string(),
            fmt(r.relink_rate, 3),
        ]);
    }
    table.render()
}

struct AttackExperiment {
    kind: GeneratorKind,
}

impl Experiment for AttackExperiment {
    fn name(&self) -> &'static str {
        match self.kind {
            GeneratorKind::Random => "attack-random",
            GeneratorKind::Mn => "attack-mn",
            GeneratorKind::Mln => "attack-mln",
        }
    }

    fn description(&self) -> &'static str {
        match self.kind {
            GeneratorKind::Random => {
                "Layered attack pipeline vs random dummies: identification rate per k"
            }
            GeneratorKind::Mn => "Layered attack pipeline vs MN dummies: identification rate per k",
            GeneratorKind::Mln => {
                "Layered attack pipeline vs MLN dummies: identification rate per k"
            }
        }
    }

    fn run(&self, seed: u64, fleet: &Dataset) -> dummyloc_sim::Result<ExperimentReport> {
        let result = attack_sweep(seed, fleet, self.kind);
        ExperimentReport::new(render_attack(&result), &result)
    }
}

struct LinkageExperiment;

impl Experiment for LinkageExperiment {
    fn name(&self) -> &'static str {
        "attack-linkage"
    }

    fn description(&self) -> &'static str {
        "Cross-pseudonym linkage attack: relink accuracy per k under rotation"
    }

    fn run(&self, seed: u64, fleet: &Dataset) -> dummyloc_sim::Result<ExperimentReport> {
        let result = linkage_sweep(seed, fleet);
        ExperimentReport::new(render_linkage(&result), &result)
    }
}

/// Registers the four attack experiments.
pub fn register_all(registry: &mut Registry) {
    registry.register(Box::new(AttackExperiment {
        kind: GeneratorKind::Random,
    }));
    registry.register(Box::new(AttackExperiment {
        kind: GeneratorKind::Mn,
    }));
    registry.register(Box::new(AttackExperiment {
        kind: GeneratorKind::Mln,
    }));
    registry.register(Box::new(LinkageExperiment));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_sim::workload;

    fn fleet() -> Dataset {
        workload::nara_fleet_sized(8, 600.0, 23)
    }

    #[test]
    fn random_dummies_are_shredded_and_mn_survives() {
        let f = fleet();
        let random = attack_sweep(101, &f, GeneratorKind::Random);
        let mn = attack_sweep(101, &f, GeneratorKind::Mn);
        for (r, m) in random.rows.iter().zip(&mn.rows) {
            assert!(
                r.pipeline_rate >= 0.75,
                "random k={} pipeline {}",
                r.k,
                r.pipeline_rate
            );
            // MN keeps the pipeline within shot of the chance floor —
            // and far below its grip on random dummies.
            assert!(
                m.pipeline_rate <= m.chance + 0.3,
                "mn k={} pipeline {} chance {}",
                m.k,
                m.pipeline_rate,
                m.chance
            );
            assert!(r.pipeline_rate > m.pipeline_rate);
            // Filters: random chains die, MN chains all survive.
            assert!(r.mean_plausible < 0.8);
            assert!(m.mean_plausible > 0.95);
        }
    }

    #[test]
    fn sweeps_are_deterministic_per_seed() {
        let f = fleet();
        let a = attack_sweep(7, &f, GeneratorKind::Mn);
        let b = attack_sweep(7, &f, GeneratorKind::Mn);
        assert_eq!(a, b);
        let c = attack_sweep(8, &f, GeneratorKind::Mn);
        assert_ne!(a, c);
    }

    #[test]
    fn linkage_weakens_with_dummies() {
        let result = linkage_sweep(31, &fleet());
        assert_eq!(result.rows.len(), 4);
        let bare = result.rows[0].relink_rate;
        assert!(bare >= 0.5, "bare relink {bare}");
        for r in &result.rows {
            assert!(r.boundaries > 0);
        }
        // With dummies the decoded tails mislead: never better than bare.
        for r in &result.rows[1..] {
            assert!(r.relink_rate <= bare + 1e-9);
        }
    }

    #[test]
    fn registry_gains_the_attack_family() {
        let mut registry = Registry::builtin();
        let before = registry.len();
        register_all(&mut registry);
        assert_eq!(registry.len(), before + 4);
        let names = registry.names();
        assert_eq!(
            &names[before..],
            &["attack-random", "attack-mn", "attack-mln", "attack-linkage"]
        );
        assert!(registry.get("attack-mn").is_some());
    }

    #[test]
    fn experiment_reports_render_and_serialize() {
        let registry = {
            let mut r = Registry::new();
            register_all(&mut r);
            r
        };
        let f = workload::nara_fleet_sized(4, 300.0, 5);
        for name in ["attack-random", "attack-linkage"] {
            let report = registry
                .get(name)
                .expect("registered")
                .run(3, &f)
                .expect("runs");
            assert!(report.rendered.contains("attack"));
            assert!(report.json.contains("rows"));
        }
    }
}
