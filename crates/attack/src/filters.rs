//! Consistency filters: motion-plausibility gates over candidate chains.
//!
//! The paper's informal security claim is that dummies are safe when
//! they are *temporally consistent*. These filters make the converse
//! operational: an observer links each round's candidate positions into
//! chains (minimum-cost assignment against the chains' current heads)
//! and flags two kinds of physical implausibility:
//!
//! * **velocity** — a step longer than `max_speed · tick`; nothing in
//!   the workload moves that fast, so the chain is a fabrication;
//! * **turn angle** — a heading reversal sharper than `max_turn_deg`
//!   where *both* adjacent steps exceed `min_turn_step`; momentum makes
//!   a U-turn at speed implausible, while short steps (dwells, GPS
//!   noise) are exempt.
//!
//! A chain with any violation is implausible and is excluded from the
//! Viterbi scoring in [`pipeline`](crate::pipeline). Random dummies
//! violate the velocity gate almost every round; MN/MLN dummies (steps
//! bounded by `m·√2`) and the true rickshaw track never trigger either
//! gate under the Nara defaults, so the filters alone cannot tell them
//! apart — exactly the paper's claim.

use dummyloc_core::hungarian::min_cost_assignment;
use dummyloc_geo::Point;

use crate::AttackConfig;

/// Chains shorter than this never inform the cost scale (meters).
const MIN_SCALE_M: f64 = 1.0;

/// One candidate trajectory tracked incrementally across rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedChain {
    /// Head position (most recent round).
    pub last: Point,
    /// Position one round before the head, once the chain has ≥ 1 step.
    pub prev: Option<Point>,
    /// Index of the head in the most recent round's positions.
    pub final_index: usize,
    /// Number of steps linked so far.
    pub steps: usize,
    /// Running mean step length (meters).
    pub mean_step: f64,
    /// Steps that exceeded the velocity bound.
    pub velocity_violations: usize,
    /// Heading reversals at speed.
    pub turn_violations: usize,
}

impl TrackedChain {
    fn seed(p: Point, index: usize) -> Self {
        TrackedChain {
            last: p,
            prev: None,
            final_index: index,
            steps: 0,
            mean_step: 0.0,
            velocity_violations: 0,
            turn_violations: 0,
        }
    }

    /// Whether the chain passed every gate so far.
    pub fn plausible(&self) -> bool {
        self.velocity_violations == 0 && self.turn_violations == 0
    }

    fn advance(&mut self, p: Point, index: usize, config: &AttackConfig) {
        let step = self.last.distance(&p);
        if step > config.max_step() {
            self.velocity_violations += 1;
        }
        if let Some(prev) = self.prev {
            let prev_step = prev.distance(&self.last);
            if prev_step >= config.min_turn_step && step >= config.min_turn_step {
                let ax = self.last.x - prev.x;
                let ay = self.last.y - prev.y;
                let bx = p.x - self.last.x;
                let by = p.y - self.last.y;
                let dot = ax * bx + ay * by;
                let cos = dot / (prev_step * step);
                if cos < config.max_turn_deg.to_radians().cos() {
                    self.turn_violations += 1;
                }
            }
        }
        self.steps += 1;
        self.mean_step += (step - self.mean_step) / self.steps as f64;
        self.prev = Some(self.last);
        self.last = p;
        self.final_index = index;
    }

    /// Distance scale used to normalize linking costs: the chain's mean
    /// step, floored so fresh or dwelling chains don't divide by ~zero.
    fn scale(&self) -> f64 {
        if self.steps == 0 {
            MIN_SCALE_M
        } else {
            self.mean_step.max(MIN_SCALE_M)
        }
    }
}

/// Links rounds of candidate positions into chains and keeps per-chain
/// plausibility verdicts, in O(candidates) memory regardless of stream
/// length — the shape the streaming storage scan needs.
#[derive(Debug, Clone)]
pub struct ChainTracker {
    config: AttackConfig,
    chains: Vec<TrackedChain>,
}

impl ChainTracker {
    /// An empty tracker.
    pub fn new(config: &AttackConfig) -> Self {
        ChainTracker {
            config: *config,
            chains: Vec::new(),
        }
    }

    /// Feeds one round of candidate positions.
    ///
    /// Linking is a minimum-cost assignment of chain heads to positions
    /// with costs normalized by each chain's own motion scale (a fast
    /// mover jumping 100 m is less surprising than a dweller doing so).
    /// Extra positions start fresh chains; starved chains are dropped.
    pub fn push(&mut self, positions: &[Point]) {
        if positions.is_empty() {
            return;
        }
        if self.chains.is_empty() {
            self.chains = positions
                .iter()
                .enumerate()
                .map(|(i, &p)| TrackedChain::seed(p, i))
                .collect();
            return;
        }
        let n = self.chains.len();
        let m = positions.len();
        let cost = |chain: &TrackedChain, p: &Point| chain.last.distance(p) / chain.scale();
        let mut next: Vec<TrackedChain> = Vec::with_capacity(m);
        if n <= m {
            let matrix: Vec<Vec<f64>> = self
                .chains
                .iter()
                .map(|c| positions.iter().map(|p| cost(c, p)).collect())
                .collect();
            let (assignment, _) = min_cost_assignment(&matrix);
            let mut taken = vec![false; m];
            for (ci, &pi) in assignment.iter().enumerate() {
                taken[pi] = true;
                let mut chain = self.chains[ci].clone();
                chain.advance(positions[pi], pi, &self.config);
                next.push(chain);
            }
            for (pi, &p) in positions.iter().enumerate() {
                if !taken[pi] {
                    next.push(TrackedChain::seed(p, pi));
                }
            }
        } else {
            // More chains than positions: assign each position its chain
            // (transposed problem); unmatched chains starve and drop.
            let matrix: Vec<Vec<f64>> = positions
                .iter()
                .map(|p| self.chains.iter().map(|c| cost(c, p)).collect())
                .collect();
            let (assignment, _) = min_cost_assignment(&matrix);
            for (pi, &ci) in assignment.iter().enumerate() {
                let mut chain = self.chains[ci].clone();
                chain.advance(positions[pi], pi, &self.config);
                next.push(chain);
            }
        }
        next.sort_by_key(|c| c.final_index);
        self.chains = next;
    }

    /// The tracked chains, ordered by their final index.
    pub fn chains(&self) -> &[TrackedChain] {
        &self.chains
    }

    /// Final indices (into the last round's positions) of chains that
    /// passed every gate, ascending.
    pub fn plausible_indices(&self) -> Vec<usize> {
        self.chains
            .iter()
            .filter(|c| c.plausible())
            .map(|c| c.final_index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AttackConfig {
        AttackConfig::nara_default()
    }

    fn push_rounds(tracker: &mut ChainTracker, rounds: &[Vec<Point>]) {
        for r in rounds {
            tracker.push(r);
        }
    }

    #[test]
    fn smooth_walker_stays_plausible_while_teleporter_is_pruned() {
        let mut tracker = ChainTracker::new(&cfg());
        let rounds: Vec<Vec<Point>> = (0..10)
            .map(|t| {
                vec![
                    Point::new(t as f64 * 50.0, 0.0),
                    Point::new((t * 700 % 1900) as f64, (t * 1100 % 1900) as f64),
                ]
            })
            .collect();
        push_rounds(&mut tracker, &rounds);
        assert_eq!(tracker.chains().len(), 2);
        assert_eq!(tracker.plausible_indices(), vec![0]);
        let teleporter = &tracker.chains()[1];
        assert!(teleporter.velocity_violations > 0);
    }

    #[test]
    fn turn_gate_flags_reversals_at_speed_only() {
        let c = cfg();
        // Long out-and-back: 300 m east, then 300 m west — a reversal at
        // speed. Both steps exceed min_turn_step (250 m).
        let mut chain = TrackedChain::seed(Point::new(0.0, 0.0), 0);
        chain.advance(Point::new(300.0, 0.0), 0, &c);
        chain.advance(Point::new(0.0, 0.0), 0, &c);
        assert_eq!(chain.turn_violations, 1);

        // The same shape at dwell scale is exempt.
        let mut small = TrackedChain::seed(Point::new(0.0, 0.0), 0);
        small.advance(Point::new(100.0, 0.0), 0, &c);
        small.advance(Point::new(0.0, 0.0), 0, &c);
        assert_eq!(small.turn_violations, 0);
    }

    #[test]
    fn linking_follows_positions_across_index_shuffles() {
        let mut tracker = ChainTracker::new(&cfg());
        for t in 0..10 {
            let smooth = Point::new(t as f64 * 40.0, 0.0);
            let jumpy = Point::new((t * 613 % 1700) as f64, (t * 911 % 1700) as f64);
            let positions = if t % 2 == 0 {
                vec![smooth, jumpy]
            } else {
                vec![jumpy, smooth]
            };
            tracker.push(&positions);
        }
        // Final round t = 9 (odd): the smooth walker sits at index 1.
        assert_eq!(tracker.plausible_indices(), vec![1]);
    }

    #[test]
    fn varying_candidate_counts_grow_and_starve_chains() {
        let mut tracker = ChainTracker::new(&cfg());
        tracker.push(&[Point::new(0.0, 0.0), Point::new(500.0, 500.0)]);
        tracker.push(&[
            Point::new(10.0, 0.0),
            Point::new(510.0, 500.0),
            Point::new(1500.0, 1500.0),
        ]);
        assert_eq!(tracker.chains().len(), 3);
        tracker.push(&[Point::new(20.0, 0.0), Point::new(520.0, 500.0)]);
        assert_eq!(tracker.chains().len(), 2);
        for c in tracker.chains() {
            assert!(c.final_index < 2);
        }
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let mut tracker = ChainTracker::new(&cfg());
        tracker.push(&[]);
        assert!(tracker.chains().is_empty());
        tracker.push(&[Point::new(1.0, 1.0)]);
        tracker.push(&[]);
        assert_eq!(tracker.chains().len(), 1);
        assert_eq!(tracker.chains()[0].steps, 0);
    }

    #[test]
    fn mn_scale_steps_never_violate_gates() {
        // A random-walk chain with steps ≤ 170 m (MN at m = 120) stays
        // plausible: this is the filters-can't-break-MN property.
        let c = cfg();
        let mut chain = TrackedChain::seed(Point::new(1000.0, 1000.0), 0);
        let mut x = 1000.0;
        let mut y = 1000.0;
        for t in 0..50 {
            let dx = ((t * 37 % 240) as f64) - 120.0;
            let dy = ((t * 53 % 240) as f64) - 120.0;
            x += dx;
            y += dy;
            chain.advance(Point::new(x, y), 0, &c);
        }
        assert!(chain.plausible());
    }
}
