//! Streaming Viterbi decoding over the service-area grid.
//!
//! The observer models the stream as a hidden Markov chain: the hidden
//! state at round `t` is *which candidate position is the true user*,
//! the emission is the candidate's grid cell, and the transition cost
//! between consecutive rounds reflects motion plausibility. A plausible
//! mover covers at most `max_speed · tick` meters per round, i.e. at
//! most [`AttackConfig::free_ring`] Chebyshev rings on the grid —
//! transitions within that reach cost nothing, and every ring beyond it
//! costs [`AttackConfig::ring_penalty`]. Decoding the minimum-cost path
//! through the trellis recovers the most plausible trajectory among the
//! `1 + k` interleaved candidate streams.
//!
//! Two properties matter for the experiments:
//!
//! * random dummies jump ~1 km per round (≈ 12 rings at the Nara grid),
//!   so every all-dummy path drowns in penalty and the decoder threads
//!   the true track — identification near 1;
//! * MN/MLN dummies and the true track all move within the free reach,
//!   so *every* path costs zero: the decoder is reduced to its
//!   deterministic lowest-index tie-break, and since the client shuffles
//!   candidate order per round the truth index is uniform — the observer
//!   is pushed back to the `1/(k+1)` chance level. That is the paper's
//!   temporal-consistency claim, now sharp against an optimal decoder.
//!
//! The pass is streaming: per-round cost only depends on the previous
//! round's states, so memory is O(candidates), never O(rounds) — the
//! shape [`pipeline`](crate::pipeline) needs to walk durable stores.

use dummyloc_geo::{Grid, Point};

use crate::AttackConfig;

/// Best path (so far) ending at one candidate index.
#[derive(Debug, Clone, PartialEq)]
pub struct PathState {
    /// Accumulated transition cost of the best path ending here.
    pub cost: f64,
    /// First position of that path.
    pub start: Point,
    /// Position at the previous round on that path (`None` in round 0).
    pub prev: Option<Point>,
    /// Current (head) position.
    pub current: Point,
}

/// What [`ViterbiDecoder::best`] reports for a decoded stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BestPath {
    /// Index of the decoded position in the final round.
    pub final_index: usize,
    /// Total transition cost of the decoded path.
    pub cost: f64,
    /// Runner-up cost minus best cost (0 when a single candidate or a
    /// tie — ties fall to the lowest index).
    pub margin: f64,
    /// First position of the decoded path.
    pub start: Point,
    /// Final position of the decoded path.
    pub tail: Point,
    /// Last per-round displacement `(dx, dy)` of the decoded path, once
    /// the stream has ≥ 2 rounds — the linkage attack's velocity hint.
    pub tail_step: Option<(f64, f64)>,
}

/// The streaming decoder; feed rounds with [`push`](Self::push), read
/// the verdict with [`best`](Self::best).
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    grid: Grid,
    free_ring: u32,
    ring_penalty: f64,
    states: Vec<PathState>,
    rounds: usize,
}

impl ViterbiDecoder {
    /// A decoder for one pseudonym stream.
    pub fn new(config: &AttackConfig) -> Self {
        let grid = config.grid();
        let free_ring = config.free_ring(&grid);
        ViterbiDecoder {
            grid,
            free_ring,
            ring_penalty: config.ring_penalty,
            states: Vec::new(),
            rounds: 0,
        }
    }

    /// Transition cost between consecutive positions: grid rings beyond
    /// the plausible one-round reach.
    fn transition(&self, from: Point, to: Point) -> f64 {
        let a = self.grid.cell_of_clamped(from);
        let b = self.grid.cell_of_clamped(to);
        let rings = a.chebyshev_distance(&b);
        if rings <= self.free_ring {
            0.0
        } else {
            (rings - self.free_ring) as f64 * self.ring_penalty
        }
    }

    /// Feeds one round of candidate positions.
    pub fn push(&mut self, positions: &[Point]) {
        if positions.is_empty() {
            return;
        }
        self.rounds += 1;
        if self.states.is_empty() {
            self.states = positions
                .iter()
                .map(|&p| PathState {
                    cost: 0.0,
                    start: p,
                    prev: None,
                    current: p,
                })
                .collect();
            return;
        }
        let states = std::mem::take(&mut self.states);
        self.states = positions
            .iter()
            .map(|&p| {
                // Strict `<` keeps the earliest predecessor on ties, so
                // decoding is deterministic.
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for (i, s) in states.iter().enumerate() {
                    let c = s.cost + self.transition(s.current, p);
                    if c < best_cost {
                        best_cost = c;
                        best = i;
                    }
                }
                PathState {
                    cost: best_cost,
                    start: states[best].start,
                    prev: Some(states[best].current),
                    current: p,
                }
            })
            .collect();
    }

    /// Rounds fed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Per-final-index accumulated costs, in candidate order.
    pub fn costs(&self) -> Vec<f64> {
        self.states.iter().map(|s| s.cost).collect()
    }

    /// Decodes the minimum-cost path over all final candidates.
    pub fn best(&self) -> Option<BestPath> {
        let all: Vec<usize> = (0..self.states.len()).collect();
        self.best_among(&all)
    }

    /// Decodes the minimum-cost path whose final index is in `allowed`
    /// (the filter-gated variant); ties fall to the lowest index. Out of
    /// range indices are ignored; returns `None` when nothing remains.
    pub fn best_among(&self, allowed: &[usize]) -> Option<BestPath> {
        let mut indices: Vec<usize> = allowed
            .iter()
            .copied()
            .filter(|&i| i < self.states.len())
            .collect();
        indices.sort_unstable();
        indices.dedup();
        let &first = indices.first()?;
        let mut best = first;
        for &i in &indices[1..] {
            if self.states[i].cost < self.states[best].cost {
                best = i;
            }
        }
        let runner_up = indices
            .iter()
            .filter(|&&i| i != best)
            .map(|&i| self.states[i].cost)
            .fold(f64::INFINITY, f64::min);
        let s = &self.states[best];
        Some(BestPath {
            final_index: best,
            cost: s.cost,
            margin: if runner_up.is_finite() {
                runner_up - s.cost
            } else {
                0.0
            },
            start: s.start,
            tail: s.current,
            tail_step: s.prev.map(|p| (s.current.x - p.x, s.current.y - p.y)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decoder() -> ViterbiDecoder {
        ViterbiDecoder::new(&AttackConfig::nara_default())
    }

    #[test]
    fn empty_decoder_has_no_verdict() {
        let d = decoder();
        assert_eq!(d.best(), None);
        assert_eq!(d.rounds(), 0);
    }

    #[test]
    fn teleporting_candidate_loses_to_the_smooth_one() {
        let mut d = decoder();
        for t in 0..12 {
            let smooth = Point::new(100.0 + t as f64 * 60.0, 500.0);
            let jumpy = Point::new((t * 701 % 1900) as f64, (t * 997 % 1900) as f64);
            // Shuffle slots so the decoder must follow positions.
            if t % 2 == 0 {
                d.push(&[smooth, jumpy]);
            } else {
                d.push(&[jumpy, smooth]);
            }
        }
        let best = d.best().expect("non-empty");
        // Final round t = 11 (odd): smooth sits at index 1.
        assert_eq!(best.final_index, 1);
        assert_eq!(best.cost, 0.0);
        assert!(best.margin > 0.0);
        assert_eq!(best.start, Point::new(100.0, 500.0));
        assert_eq!(best.tail, Point::new(100.0 + 11.0 * 60.0, 500.0));
        let (dx, dy) = best.tail_step.expect("≥ 2 rounds");
        assert!((dx - 60.0).abs() < 1e-9 && dy.abs() < 1e-9);
    }

    #[test]
    fn all_plausible_candidates_tie_to_the_lowest_index() {
        // Two walkers both within the free reach: costs tie at zero and
        // the decoder must answer index 0 deterministically.
        let mut d = decoder();
        for t in 0..10 {
            d.push(&[
                Point::new(t as f64 * 50.0, 100.0),
                Point::new(1900.0 - t as f64 * 50.0, 1900.0),
            ]);
        }
        let best = d.best().expect("non-empty");
        assert_eq!(best.final_index, 0);
        assert_eq!(best.cost, 0.0);
        assert_eq!(best.margin, 0.0);
    }

    #[test]
    fn best_among_restricts_the_final_index() {
        let mut d = decoder();
        for t in 0..10 {
            d.push(&[
                Point::new(t as f64 * 50.0, 100.0),
                Point::new((t * 701 % 1900) as f64, (t * 997 % 1900) as f64),
            ]);
        }
        assert_eq!(d.best().expect("non-empty").final_index, 0);
        let gated = d.best_among(&[1]).expect("allowed non-empty");
        assert_eq!(gated.final_index, 1);
        assert!(gated.cost > 0.0);
        // Out-of-range and empty restrictions degrade gracefully.
        assert_eq!(d.best_among(&[7]), None);
        assert_eq!(d.best_among(&[]), None);
    }

    #[test]
    fn single_round_stream_decodes_to_lowest_index() {
        let mut d = decoder();
        d.push(&[Point::new(5.0, 5.0), Point::new(9.0, 9.0)]);
        let best = d.best().expect("non-empty");
        assert_eq!(best.final_index, 0);
        assert_eq!(best.tail_step, None);
        assert_eq!(d.rounds(), 1);
    }

    #[test]
    fn off_area_positions_are_clamped_not_fatal() {
        let mut d = decoder();
        d.push(&[Point::new(-50.0, -50.0)]);
        d.push(&[Point::new(2100.0, 2100.0)]);
        let best = d.best().expect("non-empty");
        // Corner-to-corner is 23 rings; 3 are free at Nara defaults.
        assert!((best.cost - 20.0).abs() < 1e-9);
    }
}
