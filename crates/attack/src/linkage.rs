//! Cross-pseudonym linkage: re-identifying users across pseudonym
//! changes.
//!
//! Rotating pseudonyms only helps if the observer cannot stitch the old
//! stream to the new one. This attack tries exactly that, from motion
//! continuity alone:
//!
//! 1. every segment is decoded with the full pipeline
//!    ([`StreamDecoder`](crate::pipeline::StreamDecoder)), yielding the
//!    most plausible trajectory *within* the segment — its head
//!    (decoded start) and tail (decoded end plus last per-round step);
//! 2. at each rotation boundary, every old segment's tail is
//!    extrapolated across the gap (`tail + step · gap_rounds` — silent
//!    rounds widen the gap and blur the prediction);
//! 3. predicted positions are matched to the new segments' decoded
//!    heads by minimum-cost assignment, with a
//!    [`GridIndex`](dummyloc_index::GridIndex) pre-pass that caps the
//!    candidate set per tail (far-away heads get a flat large cost).
//!
//! The relink rate — matched pairs that really belong to the same user —
//! measures how much anonymity the pseudonym switch bought: 1 means
//! rotation was cosmetic, `1/users` means the observer is guessing.
//! Dummies help here too: with `k` dummies per request the decoded tail
//! is the *dummy's* tail `k/(k+1)` of the time, so the prediction points
//! somewhere useless and the relink rate collapses toward chance.

use dummyloc_core::hungarian::min_cost_assignment;
use dummyloc_geo::Point;
use dummyloc_index::{GridIndex, PointIndex};
use serde::{Deserialize, Serialize};

use crate::observe::SegmentObservation;
use crate::pipeline::StreamDecoder;
use crate::AttackConfig;

/// Flat cost assigned to pairs the index pre-pass ruled out; finite (the
/// assignment solver requires it) but far above any real distance.
const FAR_COST: f64 = 1.0e9;

/// How many nearest heads each tail keeps as real candidates.
const NEIGHBORS: usize = 8;

/// Outcome of the linkage attack over one observed session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkageOutcome {
    /// Rotation boundaries examined (old/new segment pairs per user).
    pub boundaries: usize,
    /// Tail→head matches that named the right user.
    pub correct: usize,
}

impl LinkageOutcome {
    /// Fraction of boundary crossings the observer re-linked correctly.
    pub fn relink_rate(&self) -> f64 {
        if self.boundaries == 0 {
            0.0
        } else {
            self.correct as f64 / self.boundaries as f64
        }
    }
}

struct DecodedSegment {
    user: usize,
    start_round: usize,
    last_round: usize,
    head: Point,
    tail: Point,
    step: (f64, f64),
}

fn decode(seg: &SegmentObservation, config: &AttackConfig) -> Option<DecodedSegment> {
    let mut decoder = StreamDecoder::new(config);
    for r in &seg.requests {
        decoder.push_request(r);
    }
    let verdict = decoder.finish()?;
    Some(DecodedSegment {
        user: seg.user,
        start_round: seg.start_round,
        last_round: seg.start_round + verdict.rounds - 1,
        head: verdict.path.start,
        tail: verdict.path.tail,
        step: verdict.path.tail_step.unwrap_or((0.0, 0.0)),
    })
}

/// Runs the linkage attack over a session's segments (as produced by
/// [`observe`](crate::observe::observe) with rotation enabled).
///
/// Segments are grouped by ordinal: boundary `g` matches every user's
/// segment `g` against every user's segment `g + 1`. Users missing
/// either side of a boundary sit that boundary out.
pub fn relink(segments: &[SegmentObservation], config: &AttackConfig) -> LinkageOutcome {
    let max_segment = segments.iter().map(|s| s.segment).max().unwrap_or(0);
    let mut outcome = LinkageOutcome {
        boundaries: 0,
        correct: 0,
    };
    for g in 0..max_segment {
        let tails: Vec<DecodedSegment> = segments
            .iter()
            .filter(|s| s.segment == g)
            .filter_map(|s| decode(s, config))
            .collect();
        let heads: Vec<DecodedSegment> = segments
            .iter()
            .filter(|s| s.segment == g + 1)
            .filter_map(|s| decode(s, config))
            .collect();
        if tails.is_empty() || heads.is_empty() {
            continue;
        }

        // Index the decoded heads so each tail only prices its local
        // neighborhood exactly; everything else gets the flat far cost.
        let mut index: GridIndex<usize> = GridIndex::new(config.grid());
        for (j, h) in heads.iter().enumerate() {
            index
                .insert(config.area.clamp(h.head), j)
                .expect("clamped point is inside the area");
        }

        let predictions: Vec<Point> = tails
            .iter()
            .map(|t| {
                let gap = heads
                    .iter()
                    .map(|h| h.start_round.saturating_sub(t.last_round))
                    .min()
                    .unwrap_or(1)
                    .max(1) as f64;
                Point::new(t.tail.x + t.step.0 * gap, t.tail.y + t.step.1 * gap)
            })
            .collect();

        // tails ≤ heads is guaranteed per boundary only when counts
        // match; transpose if rotation left fewer heads.
        let (rows, cols, transposed) = if tails.len() <= heads.len() {
            (tails.len(), heads.len(), false)
        } else {
            (heads.len(), tails.len(), true)
        };
        let mut matrix = vec![vec![FAR_COST; cols]; rows];
        for (i, p) in predictions.iter().enumerate() {
            for e in index.k_nearest(config.area.clamp(*p), NEIGHBORS) {
                let j = *e.item();
                let d = p.distance(&heads[j].head);
                if transposed {
                    matrix[j][i] = d;
                } else {
                    matrix[i][j] = d;
                }
            }
        }
        let (assignment, _) = min_cost_assignment(&matrix);
        outcome.boundaries += rows.min(tails.len());
        for (r, &c) in assignment.iter().enumerate() {
            let (tail, head) = if transposed { (c, r) } else { (r, c) };
            if tails[tail].user == heads[head].user {
                outcome.correct += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::client::Request;

    fn cfg() -> AttackConfig {
        AttackConfig::nara_default()
    }

    /// A bare (no-dummy) segment walking east at 60 m/round.
    fn walker_segment(
        user: usize,
        segment: usize,
        start_round: usize,
        origin: Point,
        rounds: usize,
    ) -> SegmentObservation {
        let requests = (0..rounds)
            .map(|t| Request {
                pseudonym: format!("u{user}#{segment}"),
                positions: vec![Point::new(
                    origin.x + (start_round + t) as f64 * 60.0,
                    origin.y,
                )],
            })
            .collect();
        SegmentObservation {
            user,
            segment,
            start_round,
            requests,
            final_truth_index: 0,
        }
    }

    #[test]
    fn bare_streams_relink_perfectly() {
        // Three users on parallel lanes, one rotation, no silence: the
        // extrapolated tails land exactly on the next heads.
        let mut segments = Vec::new();
        for u in 0..3 {
            let origin = Point::new(0.0, 300.0 + u as f64 * 500.0);
            segments.push(walker_segment(u, 0, 0, origin, 8));
            segments.push(walker_segment(u, 1, 8, origin, 8));
        }
        let out = relink(&segments, &cfg());
        assert_eq!(out.boundaries, 3);
        assert_eq!(out.correct, 3);
        assert!((out.relink_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shuffled_users_still_relink_by_continuity() {
        // Same setup but the users' segment order in the slice is mixed:
        // matching must go by motion, not by position in the input.
        let mut segments = Vec::new();
        for &u in &[2usize, 0, 1] {
            let origin = Point::new(0.0, 300.0 + u as f64 * 500.0);
            segments.push(walker_segment(u, 1, 8, origin, 8));
            segments.push(walker_segment(u, 0, 0, origin, 8));
        }
        let out = relink(&segments, &cfg());
        assert_eq!(out.correct, 3);
    }

    #[test]
    fn no_rotation_means_no_boundaries() {
        let segments = vec![walker_segment(0, 0, 0, Point::new(0.0, 500.0), 8)];
        let out = relink(&segments, &cfg());
        assert_eq!(out.boundaries, 0);
        assert_eq!(out.relink_rate(), 0.0);
    }

    #[test]
    fn uneven_segment_counts_are_tolerated() {
        // User 1 disappears after the rotation: the remaining boundary
        // still scores, transposition handles tails > heads.
        let mut segments = Vec::new();
        for u in 0..2 {
            let origin = Point::new(0.0, 400.0 + u as f64 * 700.0);
            segments.push(walker_segment(u, 0, 0, origin, 8));
        }
        segments.push(walker_segment(0, 1, 8, Point::new(0.0, 400.0), 8));
        let out = relink(&segments, &cfg());
        assert_eq!(out.boundaries, 1);
        assert_eq!(out.correct, 1);
    }
}
