//! The composed attack pipeline: filters prune, Viterbi scores.
//!
//! [`StreamDecoder`] runs the [`ChainTracker`](crate::filters::ChainTracker)
//! and the [`ViterbiDecoder`](crate::viterbi::ViterbiDecoder) side by
//! side over one pseudonym stream, round by round, in O(candidates)
//! memory. At the end, candidates whose chain violated a plausibility
//! gate are excluded and the minimum-cost Viterbi path over the
//! survivors is the observer's guess (falling back to all candidates if
//! the gates were too aggressive).
//!
//! [`PipelineTracker`] packages that as a core
//! [`Adversary`](dummyloc_core::adversary::Adversary) so it slots into
//! the existing identification-rate machinery, and
//! [`attack_storage`]/[`attack_observer_log`] walk a whole observer
//! state — any durable [`Storage`](dummyloc_store::Storage) backend or
//! an in-memory [`ObserverLog`] — via the streaming per-pseudonym scan,
//! never materializing a stream as a `Vec`.

use dummyloc_core::adversary::Adversary;
use dummyloc_core::client::Request;
use dummyloc_lbs::provider::ObserverLog;
use dummyloc_store::{Storage, StoreResult};
use dummyloc_telemetry::Telemetry;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::filters::ChainTracker;
use crate::viterbi::{BestPath, ViterbiDecoder};
use crate::AttackConfig;

/// What the pipeline concluded about one pseudonym stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamVerdict {
    /// Rounds observed.
    pub rounds: usize,
    /// Candidates in the final round (`1 + k` under full adoption).
    pub candidates: usize,
    /// Chains that passed every plausibility gate.
    pub plausible: usize,
    /// Whether the filters actually narrowed the Viterbi choice.
    pub gated: bool,
    /// The decoded path (guess = `path.final_index`).
    pub path: BestPath,
}

/// Streaming per-pseudonym attack state; feed rounds with
/// [`push_request`](Self::push_request), read [`finish`](Self::finish).
#[derive(Debug, Clone)]
pub struct StreamDecoder {
    chains: ChainTracker,
    viterbi: ViterbiDecoder,
}

impl StreamDecoder {
    /// A fresh decoder for one pseudonym.
    pub fn new(config: &AttackConfig) -> Self {
        StreamDecoder {
            chains: ChainTracker::new(config),
            viterbi: ViterbiDecoder::new(config),
        }
    }

    /// Feeds one round of candidate positions.
    pub fn push(&mut self, positions: &[dummyloc_geo::Point]) {
        self.chains.push(positions);
        self.viterbi.push(positions);
    }

    /// Feeds one observed request.
    pub fn push_request(&mut self, request: &Request) {
        self.push(&request.positions);
    }

    /// The pipeline's verdict, or `None` for an empty stream.
    pub fn finish(&self) -> Option<StreamVerdict> {
        let survivors = self.chains.plausible_indices();
        let candidates = self.viterbi.costs().len();
        let gated = !survivors.is_empty() && survivors.len() < candidates;
        let path = if survivors.is_empty() {
            // Gates pruned everyone (bounds too tight for this stream):
            // fall back to the unrestricted decoder.
            self.viterbi.best()?
        } else {
            self.viterbi.best_among(&survivors)?
        };
        Some(StreamVerdict {
            rounds: self.viterbi.rounds(),
            candidates,
            plausible: survivors.len(),
            gated,
            path,
        })
    }
}

/// The full pipeline as a core adversary: consistency filters, then
/// Viterbi decoding among the survivors.
#[derive(Debug, Clone, Copy)]
pub struct PipelineTracker {
    config: AttackConfig,
}

impl PipelineTracker {
    /// A pipeline with the given tuning.
    pub fn new(config: AttackConfig) -> Self {
        PipelineTracker { config }
    }

    /// Runs the pipeline over a complete stream.
    pub fn verdict(&self, requests: &[Request]) -> Option<StreamVerdict> {
        let mut decoder = StreamDecoder::new(&self.config);
        for r in requests {
            decoder.push_request(r);
        }
        decoder.finish()
    }
}

impl Adversary for PipelineTracker {
    fn name(&self) -> &'static str {
        "attack-pipeline"
    }

    fn identify(&self, _rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize> {
        self.verdict(requests).map(|v| v.path.final_index)
    }
}

/// One line of an attack run over stored observer state. Ground truth is
/// not in the store, so this reports the guess and its evidence, not a
/// hit/miss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PseudonymReport {
    /// The attacked pseudonym.
    pub pseudonym: String,
    /// Rounds observed.
    pub rounds: usize,
    /// Candidates in the final round.
    pub candidates: usize,
    /// Chains that passed every plausibility gate.
    pub plausible: usize,
    /// Guessed index of the true position in the final request.
    pub guess: usize,
    /// Viterbi cost of the decoded path.
    pub cost: f64,
    /// Runner-up cost minus decoded cost (confidence; 0 on a tie).
    pub margin: f64,
}

fn report_for(pseudonym: &str, verdict: &StreamVerdict) -> PseudonymReport {
    PseudonymReport {
        pseudonym: pseudonym.to_string(),
        rounds: verdict.rounds,
        candidates: verdict.candidates,
        plausible: verdict.plausible,
        guess: verdict.path.final_index,
        cost: verdict.path.cost,
        margin: verdict.path.margin,
    }
}

fn attack_streams<'a, I, S>(
    pseudonyms: Vec<String>,
    open: I,
    config: &AttackConfig,
    telemetry: Option<&Telemetry>,
) -> StoreResult<Vec<PseudonymReport>>
where
    I: Fn(&str) -> StoreResult<S>,
    S: Iterator<Item = StoreResult<Request>> + 'a,
{
    let mut reports = Vec::with_capacity(pseudonyms.len());
    for name in &pseudonyms {
        let _span = telemetry.map(|t| t.span("attack.stream"));
        let mut decoder = StreamDecoder::new(config);
        for request in open(name)? {
            decoder.push_request(&request?);
        }
        let Some(verdict) = decoder.finish() else {
            continue;
        };
        if let Some(t) = telemetry {
            t.registry.counter("attack.streams").inc();
            t.registry
                .counter("attack.rounds")
                .add(verdict.rounds as u64);
            t.registry
                .counter("attack.pruned_chains")
                .add((verdict.candidates - verdict.plausible) as u64);
        }
        reports.push(report_for(name, &verdict));
    }
    Ok(reports)
}

/// Attacks every pseudonym held by a storage backend, streaming each
/// stream via [`Storage::scan_stream`] (works on cold durable logs
/// larger than RAM). Reports are ordered by pseudonym so runs over
/// different backends holding the same data compare bytewise.
pub fn attack_storage(
    storage: &dyn Storage,
    config: &AttackConfig,
    telemetry: Option<&Telemetry>,
) -> StoreResult<Vec<PseudonymReport>> {
    let mut pseudonyms = storage.pseudonym_list();
    pseudonyms.sort();
    attack_streams(
        pseudonyms,
        |name| {
            Ok(storage
                .scan_stream(name)?
                .map(|r| r.map(|record| record.request)))
        },
        config,
        telemetry,
    )
}

/// Attacks every pseudonym in an observer log (any backend).
pub fn attack_observer_log(
    log: &ObserverLog,
    config: &AttackConfig,
    telemetry: Option<&Telemetry>,
) -> StoreResult<Vec<PseudonymReport>> {
    let mut pseudonyms = log.pseudonyms().to_vec();
    pseudonyms.sort();
    attack_streams(pseudonyms, |name| log.scan_stream(name), config, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;
    use dummyloc_geo::Point;
    use dummyloc_store::{LogStore, LogStoreConfig, MemoryBackend, StoreRecord};

    fn cfg() -> AttackConfig {
        AttackConfig::nara_default()
    }

    /// Candidate 0 teleports, candidate 1 walks smoothly.
    fn telltale_stream() -> Vec<Request> {
        (0..12)
            .map(|t| Request {
                pseudonym: "p".into(),
                positions: vec![
                    Point::new((t * 701 % 1900) as f64, (t * 997 % 1900) as f64),
                    Point::new(100.0 + t as f64 * 60.0, 500.0),
                ],
            })
            .collect()
    }

    #[test]
    fn pipeline_catches_the_teleporter() {
        let adv = PipelineTracker::new(cfg());
        let mut rng = rng_from_seed(1);
        assert_eq!(adv.identify(&mut rng, &telltale_stream()), Some(1));
        let v = adv.verdict(&telltale_stream()).expect("non-empty");
        assert_eq!(v.candidates, 2);
        assert_eq!(v.plausible, 1);
        assert!(v.gated);
        assert_eq!(v.rounds, 12);
    }

    #[test]
    fn empty_stream_has_no_verdict() {
        let adv = PipelineTracker::new(cfg());
        let mut rng = rng_from_seed(2);
        assert_eq!(adv.identify(&mut rng, &[]), None);
    }

    #[test]
    fn all_smooth_stream_falls_to_index_tiebreak() {
        let requests: Vec<Request> = (0..10)
            .map(|t| Request {
                pseudonym: "p".into(),
                positions: vec![
                    Point::new(t as f64 * 40.0, 200.0),
                    Point::new(1800.0 - t as f64 * 40.0, 1800.0),
                ],
            })
            .collect();
        let v = PipelineTracker::new(cfg())
            .verdict(&requests)
            .expect("non-empty");
        assert_eq!(v.plausible, 2);
        assert!(!v.gated);
        assert_eq!(v.path.final_index, 0);
        assert_eq!(v.path.cost, 0.0);
    }

    #[test]
    fn storage_attack_matches_in_memory_attack_across_backends() {
        let config = cfg();
        let streams: Vec<Vec<Request>> = vec![telltale_stream(), {
            let mut s = telltale_stream();
            for r in &mut s {
                r.pseudonym = "q".into();
                r.positions.reverse();
            }
            s
        }];

        let mut log = ObserverLog::default();
        let dir = std::env::temp_dir().join("dummyloc-attack-pipeline-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut store, _recovery) =
            LogStore::open(LogStoreConfig::new(dir)).expect("open scratch store");
        let mut seq = 0u64;
        for stream in &streams {
            for (i, r) in stream.iter().enumerate() {
                log.record(i as f64, r);
                store
                    .append(StoreRecord {
                        t: i as f64,
                        seq,
                        request_id: None,
                        request: r.clone(),
                    })
                    .expect("append");
                seq += 1;
            }
        }

        let from_log = attack_observer_log(&log, &config, None).expect("log attack");
        let from_store = attack_storage(&store, &config, None).expect("store attack");
        let from_memory =
            attack_storage(&MemoryBackend::default(), &config, None).expect("empty attack");
        assert_eq!(from_log, from_store);
        assert!(from_memory.is_empty());
        assert_eq!(from_log.len(), 2);
        assert_eq!(from_log[0].pseudonym, "p");
        assert_eq!(from_log[0].guess, 1);
        // "q" is "p" with slots reversed: the smooth walker is index 0.
        assert_eq!(from_log[1].guess, 0);
    }

    #[test]
    fn telemetry_counts_streams_rounds_and_pruning() {
        let t = Telemetry::new(16);
        let mut log = ObserverLog::default();
        for (i, r) in telltale_stream().iter().enumerate() {
            log.record(i as f64, r);
        }
        attack_observer_log(&log, &cfg(), Some(&t)).expect("attack");
        let m = t.registry.snapshot();
        assert_eq!(m.counter("attack.streams"), Some(1));
        assert_eq!(m.counter("attack.rounds"), Some(12));
        assert_eq!(m.counter("attack.pruned_chains"), Some(1));
    }
}
