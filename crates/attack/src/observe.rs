//! Observer-side stream synthesis.
//!
//! The attack experiments need exactly what a curious service provider
//! holds: per-pseudonym request streams, with ground truth kept on the
//! side for scoring. This module drives the core client loop over a
//! workload — every round each user reports its true position plus `k`
//! dummies, MLN-style generators see the previous round's other-users
//! density, and pseudonyms optionally rotate — and returns the streams
//! segment by segment. It intentionally mirrors the engine's client loop
//! rather than depending on `dummyloc-ext` (the extension crate sits
//! *above* this one in the dependency order, so it can register the
//! attack experiments).

use dummyloc_core::client::{Client, Request};
use dummyloc_core::generator::{DummyGenerator, NoDensity, OthersDensity};
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::rng::{derive_seed, rng_from_seed};
use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_trajectory::Dataset;

/// Pseudonym rotation policy for [`observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rotation {
    /// Rounds per pseudonym segment (≥ 1).
    pub period: usize,
    /// Silent rounds between segments; the user keeps moving but reports
    /// nothing.
    pub silent_rounds: usize,
}

/// Configuration of one observed session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveConfig {
    /// Service area (must contain the workload).
    pub area: BBox,
    /// Region grid for the MLN density view.
    pub grid_size: u32,
    /// Dummies per user.
    pub dummies: usize,
    /// Seconds between rounds.
    pub tick: f64,
    /// Master seed for client randomness.
    pub seed: u64,
    /// Pseudonym rotation, or `None` for one segment per user.
    pub rotation: Option<Rotation>,
}

impl ObserveConfig {
    /// Defaults matching the engine's Nara setting.
    pub fn nara_default(seed: u64) -> Self {
        ObserveConfig {
            area: BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0))
                .expect("static bounds"),
            grid_size: 12,
            dummies: 3,
            tick: 30.0,
            seed,
            rotation: None,
        }
    }
}

/// One pseudonym segment as the observer sees it, with the ground truth
/// the experiments score against.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentObservation {
    /// Ground-truth user index in the workload.
    pub user: usize,
    /// Segment ordinal for that user (0 = before any rotation).
    pub segment: usize,
    /// Global round index of the segment's first request.
    pub start_round: usize,
    /// Requests in time order (shared pseudonym).
    pub requests: Vec<Request>,
    /// Index of the true position in the final request.
    pub final_truth_index: usize,
}

/// Runs the client loop and returns every pseudonym segment, ordered by
/// user then segment. `make_generator` is called once per user; the
/// generator instance persists across that user's segments, but dummy
/// positions are re-initialized at each segment start (a fresh pseudonym
/// must not inherit linkable dummies).
///
/// # Panics
///
/// Panics if the workload has no common window, leaves the area, or the
/// configuration is degenerate — observation runs are experiment
/// internals where these are setup bugs.
pub fn observe<F>(
    fleet: &Dataset,
    config: &ObserveConfig,
    mut make_generator: F,
) -> Vec<SegmentObservation>
where
    F: FnMut(usize) -> Box<dyn DummyGenerator>,
{
    assert!(
        config.tick.is_finite() && config.tick > 0.0,
        "tick must be positive"
    );
    if let Some(r) = config.rotation {
        assert!(r.period >= 1, "rotation period must be at least 1 round");
    }
    let (start, end) = fleet
        .common_time_range()
        .expect("workload has a common window");
    let grid = Grid::square(config.area, config.grid_size).expect("valid grid config");
    let users = fleet.len();

    let mut clients: Vec<Client<Box<dyn DummyGenerator>>> = (0..users)
        .map(|i| Client::new(fleet.tracks()[i].id(), make_generator(i), config.dummies))
        .collect();
    let mut rngs: Vec<_> = (0..users)
        .map(|i| rng_from_seed(derive_seed(config.seed, i as u64)))
        .collect();

    let rounds = ((end - start) / config.tick).floor() as usize + 1;
    let mut done: Vec<Vec<SegmentObservation>> = vec![Vec::new(); users];
    let mut current: Vec<SegmentObservation> = (0..users)
        .map(|user| SegmentObservation {
            user,
            segment: 0,
            start_round: 0,
            requests: Vec::new(),
            final_truth_index: 0,
        })
        .collect();
    let mut prev_pop: Option<PopulationGrid> = None;
    let mut emitted_in_segment = 0usize;
    let mut silence_left = 0usize;

    for round in 0..rounds {
        let t = start + round as f64 * config.tick;
        if silence_left > 0 {
            // Radio silence: everyone moves, nobody transmits; the
            // observer's density snapshot goes stale.
            silence_left -= 1;
            prev_pop = None;
            continue;
        }
        let snapshot = fleet.snapshot(t);
        let mut pop = PopulationGrid::empty(&grid);
        for (i, maybe_pos) in snapshot.positions().iter().enumerate() {
            let pos = maybe_pos.expect("common window guarantees activity");
            let fresh_segment = current[i].requests.is_empty();
            let out = if fresh_segment {
                current[i].start_round = round;
                clients[i].reset();
                clients[i]
                    .begin(&mut rngs[i], pos)
                    .expect("position inside area")
            } else {
                match &prev_pop {
                    Some(density) => {
                        let own_prev: &[Point] = current[i]
                            .requests
                            .last()
                            .map(|r| r.positions.as_slice())
                            .unwrap_or(&[]);
                        let view = OthersDensity::new(density, own_prev);
                        clients[i]
                            .step(&mut rngs[i], pos, &view)
                            .expect("position inside area")
                    }
                    None => clients[i]
                        .step(&mut rngs[i], pos, &NoDensity)
                        .expect("position inside area"),
                }
            };
            for &p in &out.request.positions {
                pop.add(p).expect("reported positions stay inside the area");
            }
            // Segments get distinct pseudonyms so the observer cannot key
            // on the identifier.
            let mut request = out.request;
            request.pseudonym = format!("{}#{}", request.pseudonym, current[i].segment);
            current[i].final_truth_index = out.truth_index;
            current[i].requests.push(request);
        }
        prev_pop = Some(pop);
        emitted_in_segment += 1;

        if let Some(r) = config.rotation {
            if emitted_in_segment >= r.period {
                for i in 0..users {
                    let segment = current[i].segment + 1;
                    let seg = std::mem::replace(
                        &mut current[i],
                        SegmentObservation {
                            user: i,
                            segment,
                            start_round: 0,
                            requests: Vec::new(),
                            final_truth_index: 0,
                        },
                    );
                    done[i].push(seg);
                }
                emitted_in_segment = 0;
                silence_left = r.silent_rounds;
                prev_pop = None;
            }
        }
    }
    for i in 0..users {
        if !current[i].requests.is_empty() {
            let seg = std::mem::take(&mut current[i].requests);
            done[i].push(SegmentObservation {
                requests: seg,
                ..current[i].clone()
            });
        }
    }
    done.into_iter().flatten().collect()
}

/// Flattens observations into the `(stream, truth)` pairs the core
/// adversary API consumes.
pub fn into_streams(segments: Vec<SegmentObservation>) -> Vec<(Vec<Request>, usize)> {
    segments
        .into_iter()
        .map(|s| (s.requests, s.final_truth_index))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::generator::MnGenerator;
    use dummyloc_sim::workload;

    fn fleet() -> Dataset {
        workload::nara_fleet_sized(4, 600.0, 11)
    }

    fn mn_factory(area: BBox) -> impl FnMut(usize) -> Box<dyn DummyGenerator> {
        move |_| Box::new(MnGenerator::new(area, 120.0).expect("valid m"))
    }

    #[test]
    fn non_rotating_observation_is_one_segment_per_user() {
        let config = ObserveConfig::nara_default(3);
        let segs = observe(&fleet(), &config, mn_factory(config.area));
        assert_eq!(segs.len(), 4);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.user, i);
            assert_eq!(s.segment, 0);
            assert_eq!(s.start_round, 0);
            // 600 s at 30 s tick → 21 rounds, 1 + 3 candidates each.
            assert_eq!(s.requests.len(), 21);
            assert!(s.requests.iter().all(|r| r.positions.len() == 4));
            assert!(s.final_truth_index < 4);
        }
    }

    #[test]
    fn rotation_records_segment_start_rounds() {
        let mut config = ObserveConfig::nara_default(3);
        config.rotation = Some(Rotation {
            period: 8,
            silent_rounds: 2,
        });
        let segs = observe(&fleet(), &config, mn_factory(config.area));
        // 21 rounds: 8 + silence 2 + 8 + silence 2 + 1 → 3 segments/user.
        assert_eq!(segs.len(), 12);
        let u0: Vec<_> = segs.iter().filter(|s| s.user == 0).collect();
        assert_eq!(
            u0.iter().map(|s| s.start_round).collect::<Vec<_>>(),
            vec![0, 10, 20]
        );
        assert_eq!(u0[0].requests.len(), 8);
        assert_eq!(u0[2].requests.len(), 1);
        // Pseudonyms differ across segments and agree within.
        let p0 = &u0[0].requests[0].pseudonym;
        assert!(u0[0].requests.iter().all(|r| &r.pseudonym == p0));
        assert_ne!(p0, &u0[1].requests[0].pseudonym);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ObserveConfig::nara_default(5);
        let f = fleet();
        let a = observe(&f, &config, mn_factory(config.area));
        let b = observe(&f, &config, mn_factory(config.area));
        assert_eq!(a, b);
        let mut config2 = config;
        config2.seed = 6;
        let c = observe(&f, &config2, mn_factory(config.area));
        assert_ne!(a, c);
    }
}
