//! Property-based tests for the geometry substrate.

use dummyloc_geo::{distance::haversine_m, rng, BBox, Grid, Point, Vec2};
use proptest::prelude::*;

const COORD: std::ops::RangeInclusive<f64> = -1.0e6..=1.0e6;

fn arb_point() -> impl Strategy<Value = Point> {
    (COORD, COORD).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (arb_point(), arb_point()).prop_map(|(a, b)| BBox::from_corners(a, b).unwrap())
}

/// A bbox with strictly positive extent, suitable for grids.
fn arb_fat_bbox() -> impl Strategy<Value = BBox> {
    (COORD, COORD, 1.0..1.0e5f64, 1.0..1.0e5f64)
        .prop_map(|(x, y, w, h)| BBox::new(Point::new(x, y), Point::new(x + w, y + h)).unwrap())
}

proptest! {
    #[test]
    fn distance_is_symmetric_and_triangular(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-6);
        // Triangle inequality with a relative tolerance for fp error.
        let lhs = a.distance(&c);
        let rhs = a.distance(&b) + b.distance(&c);
        prop_assert!(lhs <= rhs + 1e-6 * (1.0 + rhs));
    }

    #[test]
    fn lerp_stays_on_segment(a in arb_point(), b in arb_point(), t in 0.0..=1.0f64) {
        let p = a.lerp(&b, t);
        let seg = BBox::from_corners(a, b).unwrap();
        // Allow fp slack proportional to the segment size.
        let slack = 1e-9 * (1.0 + seg.width().max(seg.height()));
        prop_assert!(seg.expanded(slack).unwrap().contains(p));
    }

    #[test]
    fn bbox_clamp_is_contained_and_idempotent(bbox in arb_bbox(), p in arb_point()) {
        let c = bbox.clamp(p);
        prop_assert!(bbox.contains(c));
        prop_assert_eq!(bbox.clamp(c), c);
        if bbox.contains(p) {
            prop_assert_eq!(c, p);
        }
    }

    #[test]
    fn bbox_union_contains_both(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union(&b);
        prop_assert!(u.contains_bbox(&a));
        prop_assert!(u.contains_bbox(&b));
    }

    #[test]
    fn bbox_intersection_is_contained_in_both(a in arb_bbox(), b in arb_bbox()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_bbox(&i));
            prop_assert!(b.contains_bbox(&i));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn grid_cell_of_agrees_with_cell_bbox(
        bbox in arb_fat_bbox(),
        n in 1u32..40,
        fx in 0.0..1.0f64,
        fy in 0.0..1.0f64,
    ) {
        let grid = Grid::square(bbox, n).unwrap();
        let p = Point::new(
            bbox.min().x + fx * bbox.width(),
            bbox.min().y + fy * bbox.height(),
        );
        let cell = grid.cell_of(p).unwrap();
        let cb = grid.cell_bbox(cell).unwrap();
        // The cell's closed bbox must contain the point (up to fp slack at
        // shared edges, where cell_of assigns the higher cell).
        prop_assert!(cb.expanded(1e-6 * (1.0 + bbox.width())).unwrap().contains(p));
    }

    #[test]
    fn grid_linear_index_bijective(bbox in arb_fat_bbox(), cols in 1u32..20, rows in 1u32..20) {
        let grid = Grid::new(bbox, cols, rows).unwrap();
        let mut seen = vec![false; grid.cell_count()];
        for cell in grid.cells() {
            let i = grid.linear_index(cell).unwrap();
            prop_assert!(!seen[i], "index {} hit twice", i);
            seen[i] = true;
            prop_assert_eq!(grid.cell_at_index(i).unwrap(), cell);
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn grid_neighbors_are_adjacent_and_distinct(
        bbox in arb_fat_bbox(),
        n in 2u32..20,
        c in 0u32..20,
        r in 0u32..20,
    ) {
        let grid = Grid::square(bbox, n).unwrap();
        let cell = dummyloc_geo::CellId::new(c % n, r % n);
        let n8 = grid.neighbors8(cell).unwrap();
        for nb in &n8 {
            prop_assert_eq!(cell.chebyshev_distance(nb), 1);
            prop_assert!(grid.contains_cell(*nb));
        }
        let mut uniq = n8.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), n8.len());
        // neighbors4 ⊆ neighbors8
        for nb in grid.neighbors4(cell).unwrap() {
            prop_assert!(n8.contains(&nb));
            prop_assert_eq!(cell.manhattan_distance(&nb), 1);
        }
    }

    #[test]
    fn sample_uniform_always_inside(bbox in arb_bbox(), seed in any::<u64>()) {
        let mut r = rng::rng_from_seed(seed);
        for _ in 0..32 {
            prop_assert!(bbox.contains(rng::sample_uniform(&mut r, &bbox)));
        }
    }

    #[test]
    fn haversine_symmetric_nonnegative(
        lon1 in -180.0..=180.0f64, lat1 in -89.0..=89.0f64,
        lon2 in -180.0..=180.0f64, lat2 in -89.0..=89.0f64,
    ) {
        let a = Point::new(lon1, lat1);
        let b = Point::new(lon2, lat2);
        let d1 = haversine_m(&a, &b);
        let d2 = haversine_m(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6 * (1.0 + d1));
    }

    #[test]
    fn vec2_clamp_length_never_exceeds(dx in COORD, dy in COORD, max in 0.0..1.0e6f64) {
        let v = Vec2::new(dx, dy).clamp_length(max);
        prop_assert!(v.length() <= max * (1.0 + 1e-9) + 1e-12);
    }
}
