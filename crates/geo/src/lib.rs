//! Geometry substrate for the `dummyloc` workspace.
//!
//! This crate supplies the spatial vocabulary shared by every other crate in
//! the reproduction of *"Protection of Location Privacy using Dummies for
//! Location-based Services"* (Kido, Yanagisawa, Satoh — ICDE 2005):
//!
//! * [`Point`] / [`Vec2`] — planar positions and displacements,
//! * [`BBox`] — axis-aligned bounding boxes (the service area, dummy
//!   neighborhoods, cloaking regions),
//! * [`Grid`] — the uniform region partition the paper's anonymity metrics
//!   (`F`, `P`, `Shift(P)`) are computed over,
//! * [`distance`] — Euclidean and haversine metrics,
//! * [`rng`] — deterministic random-sampling helpers so every experiment in
//!   the workspace is reproducible from a seed.
//!
//! The paper works in an abstract planar coordinate system ("coordinates x
//! and y and time t"); we default to planar Euclidean geometry and provide
//! haversine only for users feeding real GPS tracks in.
//!
//! # Example
//!
//! ```
//! use dummyloc_geo::{BBox, Grid, Point};
//!
//! // A 1 km × 1 km service area split into the paper's 8×8 regions.
//! let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
//! let grid = Grid::new(area, 8, 8).unwrap();
//! let cell = grid.cell_of(Point::new(10.0, 990.0)).unwrap();
//! assert_eq!((cell.col, cell.row), (0, 7));
//! assert_eq!(grid.cell_count(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod error;
mod grid;
mod point;

pub mod distance;
pub mod rng;

pub use bbox::BBox;
pub use error::GeoError;
pub use grid::{CellId, Grid};
pub use point::{Point, Vec2};

/// Result alias used throughout the geometry crate.
pub type Result<T> = std::result::Result<T, GeoError>;
