use std::fmt;

/// Errors produced by the geometry substrate.
///
/// The crate is `forbid(unsafe_code)` and panic-free on its public surface:
/// every constructor that can receive degenerate input returns a
/// `Result<_, GeoError>` instead.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Which operation rejected the coordinate.
        context: &'static str,
    },
    /// A bounding box had `min > max` on some axis.
    InvalidBBox {
        /// Minimum corner as supplied.
        min: (f64, f64),
        /// Maximum corner as supplied.
        max: (f64, f64),
    },
    /// A bounding box had zero width or height where a positive extent is
    /// required (e.g. to build a grid over it).
    DegenerateBBox {
        /// Width of the rejected box.
        width: f64,
        /// Height of the rejected box.
        height: f64,
    },
    /// A grid was requested with zero rows or columns.
    EmptyGrid,
    /// A point lies outside the domain it was required to be inside.
    OutOfBounds {
        /// The offending point.
        point: (f64, f64),
    },
    /// A cell index addressed a cell that does not exist in the grid.
    CellOutOfRange {
        /// Requested column.
        col: u32,
        /// Requested row.
        row: u32,
        /// Grid columns.
        cols: u32,
        /// Grid rows.
        rows: u32,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::NonFiniteCoordinate { context } => {
                write!(f, "non-finite coordinate in {context}")
            }
            GeoError::InvalidBBox { min, max } => write!(
                f,
                "invalid bounding box: min ({}, {}) exceeds max ({}, {})",
                min.0, min.1, max.0, max.1
            ),
            GeoError::DegenerateBBox { width, height } => write!(
                f,
                "degenerate bounding box: width {width}, height {height} (positive extent required)"
            ),
            GeoError::EmptyGrid => write!(f, "grid must have at least one row and one column"),
            GeoError::OutOfBounds { point } => {
                write!(f, "point ({}, {}) is outside the domain", point.0, point.1)
            }
            GeoError::CellOutOfRange {
                col,
                row,
                cols,
                rows,
            } => write!(
                f,
                "cell ({col}, {row}) out of range for a {cols}x{rows} grid"
            ),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_values() {
        let err = GeoError::CellOutOfRange {
            col: 9,
            row: 1,
            cols: 8,
            rows: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains("(9, 1)"));
        assert!(msg.contains("8x8"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GeoError::EmptyGrid);
    }
}
