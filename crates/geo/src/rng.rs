//! Deterministic random-sampling helpers.
//!
//! Every stochastic component in the workspace — dummy generators, mobility
//! models, the experiment runner — draws randomness through an explicit
//! `&mut impl Rng`, and top-level entry points construct their RNG from a
//! `u64` seed via [`rng_from_seed`]. This makes every experiment in
//! `EXPERIMENTS.md` exactly reproducible.
//!
//! Sub-streams: when one seed has to drive several independent components
//! (e.g. one RNG per simulated user), derive child seeds with
//! [`derive_seed`] instead of sharing one RNG, so adding a user never
//! perturbs the streams of the others.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{BBox, Point};

/// Constructs the workspace-standard deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A checkpointable deterministic RNG: xoshiro256** seeded via SplitMix64
/// expansion, with its full 256-bit state serializable and restorable.
///
/// `StdRng` hides its state, which makes a simulation using it impossible
/// to checkpoint mid-run. `SimRng` is the workspace-owned replacement for
/// per-user simulation streams: same `u64`-seed construction discipline,
/// plus [`SimRng::state`]/[`SimRng::from_state`] for exact suspend/resume.
/// Restoring a saved state continues the stream bit-for-bit, which is what
/// makes a resumed simulation byte-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds from a `u64` via SplitMix64 expansion (the same scheme
    /// `rand_core` documents for small seeds).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The full generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a checkpointed state; the stream
    /// continues exactly where [`SimRng::state`] captured it.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }
}

impl rand::RngCore for SimRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finalizer, whose output is well distributed even for
/// consecutive `(seed, index)` inputs.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a point uniformly from a bounding box.
///
/// This is exactly the paper's `random(x-m, x+m), random(y-m, y+m)` next-
/// position draw when given the MN neighborhood box
/// ([`BBox::centered`]). Zero-extent axes collapse to the corresponding
/// coordinate.
pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, bbox: &BBox) -> Point {
    let x = sample_range(rng, bbox.min().x, bbox.max().x);
    let y = sample_range(rng, bbox.min().y, bbox.max().y);
    Point::new(x, y)
}

/// Samples uniformly from `[lo, hi]`, tolerating `lo == hi`.
fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if lo < hi {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

/// Samples a point uniformly from the disc of radius `r` around `center`
/// (used by the Gaussian/disc ablation variants of the MN generator).
pub fn sample_disc<R: Rng + ?Sized>(rng: &mut R, center: Point, r: f64) -> Point {
    debug_assert!(r >= 0.0);
    // Inverse-CDF sampling: radius ∝ sqrt(u) gives an area-uniform draw.
    let radius = r * rng.gen::<f64>().sqrt();
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    Point::new(
        center.x + radius * angle.cos(),
        center.y + radius * angle.sin(),
    )
}

/// Fisher–Yates shuffle of a slice (thin wrapper so callers don't need the
/// `rand` prelude in scope).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, slice: &mut [T]) {
    use rand::seq::SliceRandom;
    slice.shuffle(rng);
}

/// Chooses `k` distinct indices out of `0..n` uniformly (partial
/// Fisher–Yates; `O(n)` memory, `O(k)` swaps).
pub fn choose_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_from_seed_is_deterministic() {
        let a: Vec<u32> = (0..8).map(|_| rng_from_seed(42).gen()).collect();
        let mut r = rng_from_seed(42);
        let first: u32 = r.gen();
        assert!(a.iter().all(|&v| v == first));
        let mut r1 = rng_from_seed(42);
        let mut r2 = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn sim_rng_state_roundtrip_continues_stream() {
        use rand::RngCore;
        let mut a = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            a.next_u64();
        }
        let saved = a.state();
        let mut b = SimRng::from_state(saved);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Serde round trip preserves the state exactly.
        let json = serde_json::to_string(&SimRng::from_state(saved)).unwrap();
        let c: SimRng = serde_json::from_str(&json).unwrap();
        assert_eq!(c.state(), saved);
    }

    #[test]
    fn sim_rng_usable_as_generic_and_dyn_rng() {
        let mut r = SimRng::seed_from_u64(7);
        let bbox = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let p = sample_uniform(&mut r, &bbox);
        assert!(bbox.contains(p));
        let dynr: &mut dyn rand::RngCore = &mut r;
        let x: f64 = dynr.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s = 7;
        let children: Vec<u64> = (0..100).map(|i| derive_seed(s, i)).collect();
        let mut uniq = children.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), children.len(), "child seeds must be distinct");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn sample_uniform_stays_in_bbox() {
        let bbox = BBox::new(Point::new(-5.0, 10.0), Point::new(5.0, 20.0)).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..1000 {
            let p = sample_uniform(&mut rng, &bbox);
            assert!(bbox.contains(p), "{p:?} escaped {bbox:?}");
        }
    }

    #[test]
    fn sample_uniform_handles_degenerate_box() {
        let p0 = Point::new(3.0, 4.0);
        let bbox = BBox::new(p0, p0).unwrap();
        let mut rng = rng_from_seed(1);
        assert_eq!(sample_uniform(&mut rng, &bbox), p0);
    }

    #[test]
    fn sample_uniform_covers_all_quadrants() {
        let bbox = BBox::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)).unwrap();
        let mut rng = rng_from_seed(3);
        let mut quadrants = [false; 4];
        for _ in 0..200 {
            let p = sample_uniform(&mut rng, &bbox);
            let q = (p.x >= 0.0) as usize * 2 + (p.y >= 0.0) as usize;
            quadrants[q] = true;
        }
        assert!(
            quadrants.iter().all(|&b| b),
            "uniform draw missed a quadrant"
        );
    }

    #[test]
    fn sample_disc_stays_in_radius() {
        let c = Point::new(10.0, -10.0);
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            let p = sample_disc(&mut rng, c, 3.0);
            assert!(c.distance(&p) <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn sample_disc_is_area_uniform_ish() {
        // Half the samples should land beyond r/sqrt(2) (the equal-area split).
        let c = Point::ORIGIN;
        let mut rng = rng_from_seed(11);
        let n = 10_000;
        let outer = (0..n)
            .filter(|_| {
                c.distance(&sample_disc(&mut rng, c, 1.0)) > std::f64::consts::FRAC_1_SQRT_2
            })
            .count();
        let frac = outer as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "outer fraction {frac}");
    }

    #[test]
    fn choose_indices_are_distinct_and_in_range() {
        let mut rng = rng_from_seed(9);
        for _ in 0..50 {
            let picks = choose_indices(&mut rng, 20, 5);
            assert_eq!(picks.len(), 5);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
            assert!(picks.iter().all(|&i| i < 20));
        }
        assert_eq!(choose_indices(&mut rng, 3, 10).len(), 3);
        assert!(choose_indices(&mut rng, 0, 4).is_empty());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = rng_from_seed(2);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should not be identity");
    }
}
