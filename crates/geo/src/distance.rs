//! Distance metrics.
//!
//! The reproduction runs in a planar coordinate system (metres), so
//! [`Euclidean`] is the default everywhere. [`Haversine`] is provided for
//! users feeding real GPS tracks (longitude as `x`, latitude as `y`, both in
//! degrees) into the library; the mobility simulator never produces such
//! tracks itself.

use crate::Point;

/// Mean Earth radius in metres (IUGG value), used by [`Haversine`].
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A distance metric over [`Point`]s.
///
/// Implementors must be symmetric and non-negative with `d(p, p) = 0`.
pub trait Metric {
    /// Distance between two points.
    fn distance(&self, a: &Point, b: &Point) -> f64;

    /// A value monotone in the distance, for comparisons; defaults to the
    /// distance itself. [`Euclidean`] overrides it with the squared distance
    /// to avoid square roots in k-NN loops.
    fn distance_cmp(&self, a: &Point, b: &Point) -> f64 {
        self.distance(a, b)
    }
}

/// Planar Euclidean distance (the workspace default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        a.distance(b)
    }

    #[inline]
    fn distance_cmp(&self, a: &Point, b: &Point) -> f64 {
        a.distance_sq(b)
    }
}

/// Great-circle distance on a spherical Earth for points given as
/// `(longitude°, latitude°)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Haversine;

impl Metric for Haversine {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        haversine_m(a, b)
    }
}

/// Great-circle distance in metres between `(lon°, lat°)` points.
pub fn haversine_m(a: &Point, b: &Point) -> f64 {
    let (lon1, lat1) = (a.x.to_radians(), a.y.to_radians());
    let (lon2, lat2) = (b.x.to_radians(), b.y.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(Euclidean.distance(&a, &b), 5.0);
        assert_eq!(Euclidean.distance_cmp(&a, &b), 25.0);
    }

    #[test]
    fn haversine_identity_is_zero() {
        let p = Point::new(135.839, 34.685); // Nara, Japan
        assert_eq!(haversine_m(&p, &p), 0.0);
    }

    #[test]
    fn haversine_one_degree_latitude_is_about_111km() {
        let a = Point::new(135.0, 34.0);
        let b = Point::new(135.0, 35.0);
        let d = haversine_m(&a, &b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = Point::new(135.839, 34.685);
        let b = Point::new(135.805, 34.684); // ~3 km west
        assert!((haversine_m(&a, &b) - haversine_m(&b, &a)).abs() < 1e-9);
        // Sanity: central Nara is a few km across.
        let d = haversine_m(&a, &b);
        assert!(d > 2_000.0 && d < 4_000.0, "got {d}");
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(180.0, 0.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((haversine_m(&a, &b) - half).abs() < 1.0);
    }
}
