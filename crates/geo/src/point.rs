use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{GeoError, Result};

/// A position in the planar coordinate system used throughout the workspace.
///
/// The paper models positions as `(x, y)` pairs in an abstract plane; we use
/// `f64` metres by convention (the mobility models and experiment configs all
/// speak metres), but nothing in this crate assumes a particular unit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (east in map terms).
    pub x: f64,
    /// Vertical coordinate (north in map terms).
    pub y: f64,
}

/// A displacement between two [`Point`]s.
///
/// Kept distinct from `Point` so that APIs say what they mean: mobility
/// models return velocities and step displacements as `Vec2`, never as
/// absolute positions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub dx: f64,
    /// Vertical component.
    pub dy: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point. Accepts any `f64`s, including non-finite ones; use
    /// [`Point::new_finite`] when input comes from untrusted data.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point, rejecting NaN and infinite coordinates.
    pub fn new_finite(x: f64, y: f64) -> Result<Self> {
        if x.is_finite() && y.is_finite() {
            Ok(Point { x, y })
        } else {
            Err(GeoError::NonFiniteCoordinate {
                context: "Point::new_finite",
            })
        }
    }

    /// Whether both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Displacement from `self` to `other` (`other - self`).
    #[inline]
    pub fn to(self, other: Point) -> Vec2 {
        Vec2 {
            dx: other.x - self.x,
            dy: other.y - self.y,
        }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper for comparisons).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    ///
    /// `t` is *not* clamped; callers interpolating trajectory segments pass
    /// `t ∈ [0, 1]` and extrapolating callers may exceed it deliberately.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl Vec2 {
    /// The zero displacement.
    pub const ZERO: Vec2 = Vec2 { dx: 0.0, dy: 0.0 };

    /// Creates a displacement vector.
    #[inline]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Vec2 { dx, dy }
    }

    /// A unit vector pointing at `angle` radians (0 = +x, counterclockwise).
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2 {
            dx: angle.cos(),
            dy: angle.sin(),
        }
    }

    /// Euclidean length of the displacement.
    #[inline]
    pub fn length(&self) -> f64 {
        self.length_sq().sqrt()
    }

    /// Squared length (cheaper for comparisons).
    #[inline]
    pub fn length_sq(&self) -> f64 {
        self.dx * self.dx + self.dy * self.dy
    }

    /// Angle of the displacement in radians, in `(-π, π]` (atan2 convention).
    #[inline]
    pub fn angle(&self) -> f64 {
        self.dy.atan2(self.dx)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: &Vec2) -> f64 {
        self.dx * other.dx + self.dy * other.dy
    }

    /// Returns this vector scaled to unit length, or `None` for the zero
    /// vector (whose direction is undefined).
    pub fn normalized(&self) -> Option<Vec2> {
        let len = self.length();
        if len > 0.0 {
            Some(Vec2 {
                dx: self.dx / len,
                dy: self.dy / len,
            })
        } else {
            None
        }
    }

    /// Returns the vector clamped to at most `max_len`, preserving direction.
    ///
    /// Mobility models use this to enforce per-step speed limits.
    pub fn clamp_length(&self, max_len: f64) -> Vec2 {
        debug_assert!(max_len >= 0.0, "clamp_length expects a non-negative bound");
        let len_sq = self.length_sq();
        if len_sq > max_len * max_len {
            let scale = max_len / len_sq.sqrt();
            Vec2 {
                dx: self.dx * scale,
                dy: self.dy * scale,
            }
        } else {
            *self
        }
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point {
            x: self.x + rhs.dx,
            y: self.y + rhs.dy,
        }
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.dx;
        self.y += rhs.dy;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point {
            x: self.x - rhs.dx,
            y: self.y - rhs.dy,
        }
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2 {
            dx: self.x - rhs.x,
            dy: self.y - rhs.y,
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            dx: self.dx + rhs.dx,
            dy: self.dy + rhs.dy,
        }
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.dx += rhs.dx;
        self.dy += rhs.dy;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            dx: self.dx - rhs.dx,
            dy: self.dy - rhs.dy,
        }
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.dx -= rhs.dx;
        self.dy -= rhs.dy;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2 {
            dx: self.dx * rhs,
            dy: self.dy * rhs,
        }
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2 {
            dx: self.dx / rhs,
            dy: self.dy / rhs,
        }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2 {
            dx: -self.dx,
            dy: -self.dy,
        }
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point { x, y }
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_finite_rejects_nan_and_inf() {
        assert!(Point::new_finite(f64::NAN, 0.0).is_err());
        assert!(Point::new_finite(0.0, f64::INFINITY).is_err());
        assert!(Point::new_finite(1.0, -2.0).is_ok());
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), Point::new(5.0, 5.0));
    }

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let p = Point::new(2.0, 3.0);
        let v = Vec2::new(1.0, -1.0);
        assert_eq!((p + v) - v, p);
        assert_eq!(p + v - p, v);
        let mut q = p;
        q += v;
        assert_eq!(q, p + v);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert_eq!(Vec2::ZERO.normalized(), None);
        let n = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert_eq!(n, Vec2::new(0.0, 1.0));
    }

    #[test]
    fn clamp_length_preserves_short_vectors() {
        let v = Vec2::new(1.0, 1.0);
        assert_eq!(v.clamp_length(10.0), v);
        let clamped = Vec2::new(3.0, 4.0).clamp_length(2.5);
        assert!((clamped.length() - 2.5).abs() < 1e-12);
        // direction preserved
        assert!((clamped.angle() - Vec2::new(3.0, 4.0).angle()).abs() < 1e-12);
    }

    #[test]
    fn from_angle_is_unit_length() {
        for k in 0..8 {
            let a = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!((Vec2::from_angle(a).length() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_product_orthogonal_is_zero() {
        assert_eq!(Vec2::new(1.0, 0.0).dot(&Vec2::new(0.0, 7.0)), 0.0);
    }

    #[test]
    fn tuple_conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }
}
