use serde::{Deserialize, Serialize};

use crate::{GeoError, Point, Result, Vec2};

/// An axis-aligned bounding box, closed on all sides: a point on the boundary
/// is *contained*.
///
/// Bounding boxes play three roles in the reproduction:
///
/// * the **service area** every trajectory and grid lives in,
/// * the **dummy neighborhood** of MN/MLN — the paper's
///   `random(prev±m)` draws the next dummy position uniformly from the
///   `2m × 2m` box centred on the previous one ([`BBox::centered`] +
///   [`BBox::sample_uniform`](crate::rng::sample_uniform)),
/// * the **cloaking region** of the accuracy-reduction baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a bounding box from its min and max corners.
    ///
    /// Returns an error if any coordinate is non-finite or `min > max` on
    /// either axis. Zero-extent boxes (a point or a segment) are allowed;
    /// use [`Grid::new`](crate::Grid::new) callers reject them where a
    /// positive extent matters.
    pub fn new(min: Point, max: Point) -> Result<Self> {
        if !min.is_finite() || !max.is_finite() {
            return Err(GeoError::NonFiniteCoordinate {
                context: "BBox::new",
            });
        }
        if min.x > max.x || min.y > max.y {
            return Err(GeoError::InvalidBBox {
                min: (min.x, min.y),
                max: (max.x, max.y),
            });
        }
        Ok(BBox { min, max })
    }

    /// Creates the bounding box spanning two arbitrary corner points,
    /// normalizing the corner order.
    pub fn from_corners(a: Point, b: Point) -> Result<Self> {
        BBox::new(
            Point::new(a.x.min(b.x), a.y.min(b.y)),
            Point::new(a.x.max(b.x), a.y.max(b.y)),
        )
    }

    /// The `2·half_extent × 2·half_extent` box centred on `center` — the MN
    /// neighborhood `[x−m, x+m] × [y−m, y+m]` from Table 2 of the paper.
    pub fn centered(center: Point, half_extent: f64) -> Result<Self> {
        if !(half_extent.is_finite() && half_extent >= 0.0) {
            return Err(GeoError::NonFiniteCoordinate {
                context: "BBox::centered",
            });
        }
        BBox::new(
            Point::new(center.x - half_extent, center.y - half_extent),
            Point::new(center.x + half_extent, center.y + half_extent),
        )
    }

    /// Smallest box containing every point of a non-empty iterator, or
    /// `None` for an empty one.
    pub fn enclosing<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for p in it {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        // Input points may be non-finite; `new` re-validates.
        BBox::new(min, max).ok()
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area (`width × height`).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` is entirely inside `self` (boundary touching allowed).
    #[inline]
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Whether the two boxes share any point (boundary touching counts).
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The overlapping region of two boxes, or `None` if they are disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        BBox::new(
            Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        )
        .ok()
    }

    /// Smallest box containing both inputs.
    pub fn union(&self, other: &BBox) -> BBox {
        // Both inputs are valid boxes, so the component-wise min/max corners
        // are finite and ordered; construction cannot fail.
        BBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The point of `self` closest to `p` (i.e. `p` clamped to the box).
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Euclidean distance from `p` to the box (zero if contained).
    pub fn distance_to(&self, p: Point) -> f64 {
        self.clamp(p).distance(&p)
    }

    /// Squared Euclidean distance from `p` to the box (zero if contained).
    pub fn distance_sq_to(&self, p: Point) -> f64 {
        self.clamp(p).distance_sq(&p)
    }

    /// Box expanded by `margin` on all sides (shrunk if negative).
    ///
    /// Returns an error if a negative margin would invert the box.
    pub fn expanded(&self, margin: f64) -> Result<BBox> {
        BBox::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }

    /// Box translated by `v`.
    pub fn translated(&self, v: Vec2) -> BBox {
        BBox {
            min: self.min + v,
            max: self.max + v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn new_rejects_inverted_and_nonfinite() {
        assert!(BBox::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0)).is_err());
        assert!(BBox::new(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0)).is_err());
    }

    #[test]
    fn from_corners_normalizes() {
        let b = BBox::from_corners(Point::new(5.0, 1.0), Point::new(1.0, 5.0)).unwrap();
        assert_eq!(b.min(), Point::new(1.0, 1.0));
        assert_eq!(b.max(), Point::new(5.0, 5.0));
    }

    #[test]
    fn centered_builds_mn_neighborhood() {
        let b = BBox::centered(Point::new(10.0, 20.0), 3.0).unwrap();
        assert_eq!(b.min(), Point::new(7.0, 17.0));
        assert_eq!(b.max(), Point::new(13.0, 23.0));
        assert_eq!(b.width(), 6.0);
        assert!(BBox::centered(Point::ORIGIN, -1.0).is_err());
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let b = bb(0.0, 0.0, 10.0, 10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(b.contains(Point::new(5.0, 10.0)));
        assert!(!b.contains(Point::new(10.000001, 5.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = bb(0.0, 0.0, 10.0, 10.0);
        let b = bb(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, bb(5.0, 5.0, 10.0, 10.0));
        let u = a.union(&b);
        assert_eq!(u, bb(0.0, 0.0, 15.0, 15.0));
        let disjoint = bb(20.0, 20.0, 30.0, 30.0);
        assert!(a.intersection(&disjoint).is_none());
        assert!(!a.intersects(&disjoint));
        // Touching boxes intersect on the shared edge.
        let touching = bb(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&touching));
        assert_eq!(a.intersection(&touching).unwrap().area(), 0.0);
    }

    #[test]
    fn clamp_and_distance() {
        let b = bb(0.0, 0.0, 10.0, 10.0);
        assert_eq!(b.clamp(Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(b.distance_to(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(b.distance_to(Point::new(3.0, 3.0)), 0.0);
    }

    #[test]
    fn enclosing_spans_all_points() {
        let pts = vec![
            Point::new(1.0, 9.0),
            Point::new(-2.0, 4.0),
            Point::new(7.0, 0.0),
        ];
        let b = BBox::enclosing(pts.clone()).unwrap();
        assert_eq!(b, bb(-2.0, 0.0, 7.0, 9.0));
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(BBox::enclosing(std::iter::empty()).is_none());
    }

    #[test]
    fn expanded_and_translated() {
        let b = bb(0.0, 0.0, 10.0, 10.0);
        assert_eq!(b.expanded(2.0).unwrap(), bb(-2.0, -2.0, 12.0, 12.0));
        assert!(b.expanded(-6.0).is_err());
        assert_eq!(b.translated(Vec2::new(1.0, -1.0)), bb(1.0, -1.0, 11.0, 9.0));
    }

    #[test]
    fn zero_extent_box_is_allowed() {
        let p = Point::new(3.0, 3.0);
        let b = BBox::new(p, p).unwrap();
        assert_eq!(b.area(), 0.0);
        assert!(b.contains(p));
    }
}
