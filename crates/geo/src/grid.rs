use serde::{Deserialize, Serialize};

use crate::{BBox, GeoError, Point, Result};

/// Identifier of one region (cell) of a [`Grid`].
///
/// `col` increases with x (west → east), `row` with y (south → north).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Column index, `0 ..= cols-1`.
    pub col: u32,
    /// Row index, `0 ..= rows-1`.
    pub row: u32,
}

impl CellId {
    /// Creates a cell id. Validity against a particular grid is checked by
    /// the grid methods that consume it.
    #[inline]
    pub const fn new(col: u32, row: u32) -> Self {
        CellId { col, row }
    }

    /// Chebyshev (chessboard) distance between two cells: the number of
    /// region-steps an entity moving one ring per tick needs.
    pub fn chebyshev_distance(&self, other: &CellId) -> u32 {
        let dc = self.col.abs_diff(other.col);
        let dr = self.row.abs_diff(other.row);
        dc.max(dr)
    }

    /// Manhattan distance between two cells.
    pub fn manhattan_distance(&self, other: &CellId) -> u32 {
        self.col.abs_diff(other.col) + self.row.abs_diff(other.row)
    }
}

/// A uniform partition of a bounding box into `cols × rows` equal regions.
///
/// This is the paper's region decomposition: *"All areas that provide the
/// service are divided into regions … The precision of the position data is
/// the same scale as the regions."* The anonymity metrics `F` (ubiquity),
/// `P` (congestion) and `Shift(P)` are all computed per grid cell, and the
/// experiments sweep the grid size over 8×8, 10×10 and 12×12.
///
/// Every cell is half-open `[x0, x1) × [y0, y1)` except the cells touching
/// the grid's max edges, which are closed so that the whole service area —
/// boundary included — maps to exactly one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    bounds: BBox,
    cols: u32,
    rows: u32,
    cell_width: f64,
    cell_height: f64,
}

impl Grid {
    /// Creates a grid of `cols × rows` regions over `bounds`.
    ///
    /// Errors if `cols` or `rows` is zero or `bounds` has zero extent on
    /// either axis.
    pub fn new(bounds: BBox, cols: u32, rows: u32) -> Result<Self> {
        if cols == 0 || rows == 0 {
            return Err(GeoError::EmptyGrid);
        }
        if bounds.width() <= 0.0 || bounds.height() <= 0.0 {
            return Err(GeoError::DegenerateBBox {
                width: bounds.width(),
                height: bounds.height(),
            });
        }
        Ok(Grid {
            bounds,
            cols,
            rows,
            cell_width: bounds.width() / cols as f64,
            cell_height: bounds.height() / rows as f64,
        })
    }

    /// Convenience constructor for the paper's square `n × n` grids.
    pub fn square(bounds: BBox, n: u32) -> Result<Self> {
        Grid::new(bounds, n, n)
    }

    /// The partitioned area.
    #[inline]
    pub fn bounds(&self) -> BBox {
        self.bounds
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of regions (`cols × rows`) — the paper's `|A_F|`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Width of one cell.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Height of one cell.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_height
    }

    /// The region containing `p`, or an error if `p` is outside the grid.
    pub fn cell_of(&self, p: Point) -> Result<CellId> {
        if !self.bounds.contains(p) {
            return Err(GeoError::OutOfBounds { point: (p.x, p.y) });
        }
        Ok(self.cell_of_unchecked(p))
    }

    /// The region containing the point of the grid closest to `p` — i.e.
    /// `p` clamped into bounds first. Never fails for finite points.
    pub fn cell_of_clamped(&self, p: Point) -> CellId {
        self.cell_of_unchecked(self.bounds.clamp(p))
    }

    fn cell_of_unchecked(&self, p: Point) -> CellId {
        let col = (((p.x - self.bounds.min().x) / self.cell_width) as u32).min(self.cols - 1);
        let row = (((p.y - self.bounds.min().y) / self.cell_height) as u32).min(self.rows - 1);
        CellId { col, row }
    }

    /// Whether `cell` addresses an existing region of this grid.
    #[inline]
    pub fn contains_cell(&self, cell: CellId) -> bool {
        cell.col < self.cols && cell.row < self.rows
    }

    /// The bounding box of one region.
    pub fn cell_bbox(&self, cell: CellId) -> Result<BBox> {
        self.check_cell(cell)?;
        let min = Point::new(
            self.bounds.min().x + cell.col as f64 * self.cell_width,
            self.bounds.min().y + cell.row as f64 * self.cell_height,
        );
        let max = Point::new(min.x + self.cell_width, min.y + self.cell_height);
        BBox::new(min, max)
    }

    /// The center point of one region.
    pub fn cell_center(&self, cell: CellId) -> Result<Point> {
        Ok(self.cell_bbox(cell)?.center())
    }

    /// Row-major linear index of a cell (for dense per-region arrays such as
    /// the population counters behind `P` and `Shift(P)`).
    pub fn linear_index(&self, cell: CellId) -> Result<usize> {
        self.check_cell(cell)?;
        Ok(cell.row as usize * self.cols as usize + cell.col as usize)
    }

    /// Inverse of [`Grid::linear_index`].
    pub fn cell_at_index(&self, index: usize) -> Result<CellId> {
        if index >= self.cell_count() {
            return Err(GeoError::CellOutOfRange {
                col: (index % self.cols as usize) as u32,
                row: (index / self.cols as usize) as u32,
                cols: self.cols,
                rows: self.rows,
            });
        }
        Ok(CellId {
            col: (index % self.cols as usize) as u32,
            row: (index / self.cols as usize) as u32,
        })
    }

    /// Iterates over all regions in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |row| (0..cols).map(move |col| CellId { col, row }))
    }

    /// The up-to-8 regions adjacent to `cell` (Moore neighborhood), clipped
    /// at the grid edges.
    pub fn neighbors8(&self, cell: CellId) -> Result<Vec<CellId>> {
        self.check_cell(cell)?;
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let col = cell.col as i64 + dc;
                let row = cell.row as i64 + dr;
                if col >= 0 && row >= 0 && (col as u32) < self.cols && (row as u32) < self.rows {
                    out.push(CellId {
                        col: col as u32,
                        row: row as u32,
                    });
                }
            }
        }
        Ok(out)
    }

    /// The up-to-4 regions sharing an edge with `cell` (von Neumann
    /// neighborhood), clipped at the grid edges.
    pub fn neighbors4(&self, cell: CellId) -> Result<Vec<CellId>> {
        self.check_cell(cell)?;
        let mut out = Vec::with_capacity(4);
        let (c, r) = (cell.col, cell.row);
        if c > 0 {
            out.push(CellId { col: c - 1, row: r });
        }
        if c + 1 < self.cols {
            out.push(CellId { col: c + 1, row: r });
        }
        if r > 0 {
            out.push(CellId { col: c, row: r - 1 });
        }
        if r + 1 < self.rows {
            out.push(CellId { col: c, row: r + 1 });
        }
        Ok(out)
    }

    /// All regions whose bbox intersects `query` (used by range queries and
    /// the cloaking baseline to enumerate candidate regions).
    pub fn cells_intersecting(&self, query: &BBox) -> Vec<CellId> {
        let Some(overlap) = self.bounds.intersection(query) else {
            return Vec::new();
        };
        let lo = self.cell_of_unchecked(overlap.min());
        let hi = self.cell_of_unchecked(overlap.max());
        let mut out = Vec::with_capacity(((hi.col - lo.col + 1) * (hi.row - lo.row + 1)) as usize);
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                out.push(CellId { col, row });
            }
        }
        out
    }

    fn check_cell(&self, cell: CellId) -> Result<()> {
        if self.contains_cell(cell) {
            Ok(())
        } else {
            Err(GeoError::CellOutOfRange {
                col: cell.col,
                row: cell.row,
                cols: self.cols,
                rows: self.rows,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1km(n: u32) -> Grid {
        let bounds = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        Grid::square(bounds, n).unwrap()
    }

    #[test]
    fn new_rejects_degenerate_inputs() {
        let bounds = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        assert!(Grid::new(bounds, 0, 8).is_err());
        assert!(Grid::new(bounds, 8, 0).is_err());
        let flat = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0)).unwrap();
        assert!(Grid::new(flat, 8, 8).is_err());
    }

    #[test]
    fn paper_grid_sizes() {
        for n in [8u32, 10, 12] {
            let g = grid_1km(n);
            assert_eq!(g.cell_count(), (n * n) as usize);
            assert_eq!(g.cell_width(), 1000.0 / n as f64);
        }
    }

    #[test]
    fn cell_of_maps_interior_points() {
        let g = grid_1km(8); // cells are 125 m
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)).unwrap(), CellId::new(0, 0));
        assert_eq!(
            g.cell_of(Point::new(124.9, 0.0)).unwrap(),
            CellId::new(0, 0)
        );
        assert_eq!(
            g.cell_of(Point::new(125.0, 0.0)).unwrap(),
            CellId::new(1, 0)
        );
        assert_eq!(
            g.cell_of(Point::new(999.0, 999.0)).unwrap(),
            CellId::new(7, 7)
        );
    }

    #[test]
    fn max_edge_maps_to_last_cell() {
        let g = grid_1km(8);
        assert_eq!(
            g.cell_of(Point::new(1000.0, 1000.0)).unwrap(),
            CellId::new(7, 7)
        );
        assert_eq!(
            g.cell_of(Point::new(1000.0, 0.0)).unwrap(),
            CellId::new(7, 0)
        );
    }

    #[test]
    fn cell_of_rejects_outside_points_but_clamped_does_not() {
        let g = grid_1km(8);
        assert!(g.cell_of(Point::new(-1.0, 500.0)).is_err());
        assert_eq!(
            g.cell_of_clamped(Point::new(-1.0, 500.0)),
            CellId::new(0, 4)
        );
        assert_eq!(
            g.cell_of_clamped(Point::new(5000.0, 5000.0)),
            CellId::new(7, 7)
        );
    }

    #[test]
    fn cell_bbox_round_trips_with_cell_of() {
        let g = grid_1km(10);
        for cell in g.cells() {
            let bbox = g.cell_bbox(cell).unwrap();
            assert_eq!(g.cell_of(bbox.center()).unwrap(), cell);
        }
    }

    #[test]
    fn linear_index_round_trips() {
        let g = grid_1km(12);
        for (i, cell) in g.cells().enumerate() {
            assert_eq!(g.linear_index(cell).unwrap(), i);
            assert_eq!(g.cell_at_index(i).unwrap(), cell);
        }
        assert!(g.cell_at_index(144).is_err());
        assert!(g.linear_index(CellId::new(12, 0)).is_err());
    }

    #[test]
    fn neighbor_counts() {
        let g = grid_1km(8);
        assert_eq!(g.neighbors8(CellId::new(0, 0)).unwrap().len(), 3);
        assert_eq!(g.neighbors8(CellId::new(4, 0)).unwrap().len(), 5);
        assert_eq!(g.neighbors8(CellId::new(4, 4)).unwrap().len(), 8);
        assert_eq!(g.neighbors4(CellId::new(0, 0)).unwrap().len(), 2);
        assert_eq!(g.neighbors4(CellId::new(4, 4)).unwrap().len(), 4);
        assert!(g.neighbors8(CellId::new(8, 8)).is_err());
    }

    #[test]
    fn cells_intersecting_counts_overlapped_regions() {
        let g = grid_1km(8); // 125 m cells
        let q = BBox::new(Point::new(100.0, 100.0), Point::new(300.0, 150.0)).unwrap();
        // x spans cells 0..=2, y spans cells 0..=1 → 6 cells
        let cells = g.cells_intersecting(&q);
        assert_eq!(cells.len(), 6);
        let outside = BBox::new(Point::new(2000.0, 2000.0), Point::new(3000.0, 3000.0)).unwrap();
        assert!(g.cells_intersecting(&outside).is_empty());
    }

    #[test]
    fn chebyshev_and_manhattan_distance() {
        let a = CellId::new(1, 1);
        let b = CellId::new(4, 3);
        assert_eq!(a.chebyshev_distance(&b), 3);
        assert_eq!(a.manhattan_distance(&b), 5);
        assert_eq!(a.chebyshev_distance(&a), 0);
    }
}
