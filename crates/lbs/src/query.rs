//! The service vocabulary: what a client can ask and what it gets back.

use dummyloc_geo::Point;
use serde::{Deserialize, Serialize};

use crate::poi::{Category, Poi};

/// What the client asks for. One query applies to *every* position in the
/// request — the provider cannot know which position the user cares about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryKind {
    /// "Where is the nearest …?" — the paper's Figure-1 restaurant
    /// service when filtered to restaurants.
    NearestPoi {
        /// Restrict to one category, or `None` for any POI.
        category: Option<Category>,
    },
    /// "What is around me?" — all POIs within `radius`.
    PoisInRange {
        /// Search radius in metres (non-negative).
        radius: f64,
    },
    /// "When does the next bus arrive at the nearest stop in my current
    /// vicinity?" — the paper's §2.1 motivating service.
    NextBus,
}

/// A POI as reported to clients, with the distance from the queried
/// position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiInfo {
    /// POI id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Location.
    pub pos: Point,
    /// Distance from the queried position in metres.
    pub distance: f64,
}

impl PoiInfo {
    /// Builds the client-facing record for `poi` as seen from `from`.
    pub fn for_poi(poi: &Poi, from: Point) -> Self {
        PoiInfo {
            id: poi.id,
            name: poi.name.clone(),
            category: poi.category,
            pos: poi.pos,
            distance: poi.pos.distance(&from),
        }
    }
}

/// The answer for one reported position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// Nearest POI (if the database has any matching one).
    NearestPoi(Option<PoiInfo>),
    /// POIs within the requested radius, ascending by distance.
    PoisInRange(Vec<PoiInfo>),
    /// Nearest bus stop and its next arrival time, if any stop exists.
    NextBus(Option<BusAnswer>),
}

/// The §2.1 timetable answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusAnswer {
    /// The nearest stop.
    pub stop: PoiInfo,
    /// Seconds-of-day of the next arrival at that stop.
    pub arrival: f64,
}

/// The provider's reply: exactly one [`Answer`] per position in the
/// request, in request order (so the client can pick the answer at its
/// private `truth_index` and discard the rest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceResponse {
    /// Per-position answers.
    pub answers: Vec<Answer>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poi_info_records_distance() {
        let poi = Poi {
            id: 3,
            name: "x".into(),
            category: Category::Shop,
            pos: Point::new(3.0, 4.0),
            schedule: None,
        };
        let info = PoiInfo::for_poi(&poi, Point::ORIGIN);
        assert_eq!(info.distance, 5.0);
        assert_eq!(info.id, 3);
        assert_eq!(info.category, Category::Shop);
    }

    #[test]
    fn query_kinds_serialize_round_trip() {
        for q in [
            QueryKind::NearestPoi {
                category: Some(Category::Clinic),
            },
            QueryKind::NearestPoi { category: None },
            QueryKind::PoisInRange { radius: 120.0 },
            QueryKind::NextBus,
        ] {
            let s = serde_json::to_string(&q).unwrap();
            let back: QueryKind = serde_json::from_str(&s).unwrap();
            assert_eq!(q, back);
        }
    }
}
