//! Provider-side storage for the *cloaking* baseline.
//!
//! Under accuracy reduction the provider receives regions, not points
//! (Figure 4(a)). This log is the rectangle counterpart of
//! [`ObserverLog`](crate::provider::ObserverLog): it stores every cloak,
//! indexed in an [`RTree`] so the mining queries the paper warns about —
//! *"which pseudonyms were ever near the clinic?"* — run in logarithmic
//! time. Its existence is the point: cloaks are cheap to store and cheap
//! to mine, which is why the paper replaces them with dummies.

use std::collections::HashMap;

use dummyloc_geo::{BBox, Point};
use dummyloc_index::RTree;

/// One stored cloaked observation.
#[derive(Debug, Clone, PartialEq)]
pub struct CloakRecord {
    /// The reporting pseudonym.
    pub pseudonym: String,
    /// Receipt time.
    pub t: f64,
    /// The reported region.
    pub region: BBox,
}

/// An R-tree-indexed archive of cloaked requests.
#[derive(Debug, Clone, Default)]
pub struct CloakLog {
    tree: RTree<CloakRecord>,
    per_pseudonym: HashMap<String, usize>,
}

impl CloakLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CloakLog::default()
    }

    /// Stores one cloaked observation.
    pub fn record(&mut self, pseudonym: impl Into<String>, t: f64, region: BBox) {
        let pseudonym = pseudonym.into();
        *self.per_pseudonym.entry(pseudonym.clone()).or_insert(0) += 1;
        self.tree.insert(
            region,
            CloakRecord {
                pseudonym,
                t,
                region,
            },
        );
    }

    /// Total stored observations.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Observations per pseudonym.
    pub fn count_of(&self, pseudonym: &str) -> usize {
        self.per_pseudonym.get(pseudonym).copied().unwrap_or(0)
    }

    /// The mining query of the paper's §2.1 threat: every record whose
    /// cloak covers `place` (e.g. the clinic), in arrival order.
    pub fn records_covering(&self, place: Point) -> Vec<&CloakRecord> {
        self.tree
            .containing(place)
            .into_iter()
            .map(|e| &e.item)
            .collect()
    }

    /// Distinct pseudonyms whose cloaks ever covered `place`, in first-
    /// appearance order — the provider's "who visits the clinic" list.
    pub fn pseudonyms_near(&self, place: Point) -> Vec<&str> {
        let mut seen = Vec::new();
        for rec in self.records_covering(place) {
            if !seen.contains(&rec.pseudonym.as_str()) {
                seen.push(rec.pseudonym.as_str());
            }
        }
        seen
    }

    /// All records whose cloak intersects `area`, in arrival order
    /// (coarse survey queries).
    pub fn records_intersecting(&self, area: &BBox) -> Vec<&CloakRecord> {
        self.tree
            .intersecting(area)
            .into_iter()
            .map(|e| &e.item)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::cloaking::GridCloak;
    use dummyloc_geo::Grid;

    fn area() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()
    }

    #[test]
    fn records_and_counts() {
        let mut log = CloakLog::new();
        assert!(log.is_empty());
        log.record(
            "a",
            0.0,
            BBox::centered(Point::new(100.0, 100.0), 50.0).unwrap(),
        );
        log.record(
            "a",
            10.0,
            BBox::centered(Point::new(110.0, 100.0), 50.0).unwrap(),
        );
        log.record(
            "b",
            0.0,
            BBox::centered(Point::new(900.0, 900.0), 50.0).unwrap(),
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_of("a"), 2);
        assert_eq!(log.count_of("b"), 1);
        assert_eq!(log.count_of("nobody"), 0);
    }

    #[test]
    fn clinic_query_finds_the_weekly_patient() {
        // The paper's §2.1 scenario on the provider's stored cloaks.
        let grid = Grid::square(area(), 10).unwrap();
        let cloak = GridCloak::new(grid);
        let clinic = Point::new(420.0, 380.0);
        let mut log = CloakLog::new();
        // The patient visits weekly; others wander elsewhere.
        for week in 0..4 {
            let req = cloak.cloak("patient", clinic).unwrap();
            log.record(req.pseudonym, week as f64 * 604_800.0, req.region);
            let req = cloak
                .cloak("other", Point::new(50.0 + week as f64, 900.0))
                .unwrap();
            log.record(req.pseudonym, week as f64 * 604_800.0, req.region);
        }
        let visitors = log.pseudonyms_near(clinic);
        assert_eq!(visitors, vec!["patient"]);
        let visits = log.records_covering(clinic);
        assert_eq!(visits.len(), 4);
        // Arrival order is preserved.
        assert!(visits.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn survey_queries_intersecting() {
        let mut log = CloakLog::new();
        for i in 0..20 {
            let c = Point::new(25.0 + i as f64 * 50.0, 500.0);
            log.record(format!("u{i}"), i as f64, BBox::centered(c, 25.0).unwrap());
        }
        let west = BBox::new(Point::new(0.0, 0.0), Point::new(200.0, 1000.0)).unwrap();
        let hits = log.records_intersecting(&west);
        // Cloaks centred at 25, 75, 125, 175 lie inside; the one at 225
        // spans [200, 250] and touches the survey's x = 200 edge, which
        // counts as intersecting (closed boxes).
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!(h.region.intersects(&west));
        }
    }

    #[test]
    fn point_not_covered_by_anyone() {
        let mut log = CloakLog::new();
        log.record(
            "a",
            0.0,
            BBox::centered(Point::new(100.0, 100.0), 10.0).unwrap(),
        );
        assert!(log.records_covering(Point::new(500.0, 500.0)).is_empty());
        assert!(log.pseudonyms_near(Point::new(500.0, 500.0)).is_empty());
    }
}
