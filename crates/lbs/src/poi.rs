//! The provider's point-of-interest database.

use dummyloc_geo::rng::{rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Point};
use dummyloc_index::{KdTree, PointIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// POI categories used by the example services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Restaurants — the paper's Figure 1 service.
    Restaurant,
    /// Bus stops — the paper's §2.1 timetable service. Bus-stop POIs carry
    /// a [`BusSchedule`].
    BusStop,
    /// Tourist landmarks (temples, parks — what rickshaws tour between).
    Landmark,
    /// Hospitals/clinics — the paper's §2.1 privacy-invasion example.
    Clinic,
    /// Generic shops.
    Shop,
}

impl Category {
    /// All categories, for iteration.
    pub const ALL: [Category; 5] = [
        Category::Restaurant,
        Category::BusStop,
        Category::Landmark,
        Category::Clinic,
        Category::Shop,
    ];

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Restaurant => "restaurant",
            Category::BusStop => "bus-stop",
            Category::Landmark => "landmark",
            Category::Clinic => "clinic",
            Category::Shop => "shop",
        }
    }
}

/// A periodic bus timetable: arrivals at `offset + n·headway` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusSchedule {
    /// Seconds between consecutive buses (positive).
    pub headway: f64,
    /// Phase of the first bus of the day in seconds.
    pub offset: f64,
}

impl BusSchedule {
    /// The first arrival at or after time `t`.
    pub fn next_arrival(&self, t: f64) -> f64 {
        debug_assert!(self.headway > 0.0);
        if t <= self.offset {
            return self.offset;
        }
        let n = ((t - self.offset) / self.headway).ceil();
        self.offset + n * self.headway
    }
}

/// One point of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Stable identifier.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Location.
    pub pos: Point,
    /// Timetable, present on bus stops.
    pub schedule: Option<BusSchedule>,
}

/// The provider's POI database: a global k-d tree plus one per category so
/// category-filtered nearest-neighbor queries stay logarithmic.
#[derive(Debug, Clone)]
pub struct PoiDatabase {
    area: BBox,
    all: KdTree<Poi>,
    by_category: Vec<(Category, KdTree<Poi>)>,
}

impl PoiDatabase {
    /// Builds the database from a POI list.
    pub fn new(area: BBox, pois: Vec<Poi>) -> Self {
        let mut by_category = Vec::with_capacity(Category::ALL.len());
        for cat in Category::ALL {
            let subset: Vec<(Point, Poi)> = pois
                .iter()
                .filter(|p| p.category == cat)
                .map(|p| (p.pos, p.clone()))
                .collect();
            by_category.push((cat, KdTree::bulk_build(subset)));
        }
        let all = KdTree::bulk_build(pois.into_iter().map(|p| (p.pos, p)));
        PoiDatabase {
            area,
            all,
            by_category,
        }
    }

    /// Generates a synthetic database of `count` POIs uniformly placed in
    /// `area`, cycling through all categories; deterministic per seed.
    /// Bus stops get a schedule with a 300–1200 s headway.
    pub fn generate(area: BBox, count: usize, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let pois = (0..count)
            .map(|i| {
                let category = Category::ALL[i % Category::ALL.len()];
                let schedule = (category == Category::BusStop).then(|| BusSchedule {
                    headway: rng.gen_range(300.0..1200.0),
                    offset: rng.gen_range(0.0..300.0),
                });
                Poi {
                    id: i as u64,
                    name: format!("{}-{i}", category.label()),
                    category,
                    pos: sample_uniform(&mut rng, &area),
                    schedule,
                }
            })
            .collect();
        PoiDatabase::new(area, pois)
    }

    /// The service area.
    pub fn area(&self) -> BBox {
        self.area
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Nearest POI to `q`, optionally restricted to a category.
    pub fn nearest(&self, q: Point, category: Option<Category>) -> Option<&Poi> {
        let tree = match category {
            None => &self.all,
            Some(cat) => {
                &self
                    .by_category
                    .iter()
                    .find(|(c, _)| *c == cat)
                    .expect("all categories are indexed")
                    .1
            }
        };
        tree.nearest(q).map(|e| e.item())
    }

    /// The `k` POIs nearest to `q` (unfiltered), ascending by distance.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<&Poi> {
        self.all
            .k_nearest(q, k)
            .into_iter()
            .map(|e| e.item())
            .collect()
    }

    /// All POIs within `radius` of `q`, ascending by distance.
    pub fn within_radius(&self, q: Point, radius: f64) -> Vec<&Poi> {
        let bbox = match BBox::centered(q, radius) {
            Ok(b) => b,
            Err(_) => return Vec::new(), // negative/non-finite radius
        };
        let mut hits: Vec<&Poi> = self
            .all
            .in_bbox(&bbox)
            .into_iter()
            .map(|e| e.item())
            .filter(|p| p.pos.distance(&q) <= radius)
            .collect();
        hits.sort_by(|a, b| {
            a.pos
                .distance_sq(&q)
                .partial_cmp(&b.pos.distance_sq(&q))
                .expect("positions are finite")
                .then(a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()
    }

    #[test]
    fn generate_is_deterministic_and_categorized() {
        let a = PoiDatabase::generate(area(), 50, 1);
        let b = PoiDatabase::generate(area(), 50, 1);
        assert_eq!(a.len(), 50);
        assert_eq!(
            a.k_nearest(Point::new(500.0, 500.0), 5)
                .iter()
                .map(|p| p.id)
                .collect::<Vec<_>>(),
            b.k_nearest(Point::new(500.0, 500.0), 5)
                .iter()
                .map(|p| p.id)
                .collect::<Vec<_>>()
        );
        // 50 POIs over 5 categories → 10 each.
        for cat in Category::ALL {
            let nearest = a.nearest(Point::new(500.0, 500.0), Some(cat)).unwrap();
            assert_eq!(nearest.category, cat);
        }
    }

    #[test]
    fn bus_stops_have_schedules_others_do_not() {
        let db = PoiDatabase::generate(area(), 50, 2);
        let stop = db
            .nearest(Point::new(1.0, 1.0), Some(Category::BusStop))
            .unwrap();
        assert!(stop.schedule.is_some());
        let rest = db
            .nearest(Point::new(1.0, 1.0), Some(Category::Restaurant))
            .unwrap();
        assert!(rest.schedule.is_none());
    }

    #[test]
    fn nearest_filtered_vs_unfiltered() {
        let pois = vec![
            Poi {
                id: 0,
                name: "r".into(),
                category: Category::Restaurant,
                pos: Point::new(10.0, 10.0),
                schedule: None,
            },
            Poi {
                id: 1,
                name: "b".into(),
                category: Category::BusStop,
                pos: Point::new(900.0, 900.0),
                schedule: Some(BusSchedule {
                    headway: 600.0,
                    offset: 0.0,
                }),
            },
        ];
        let db = PoiDatabase::new(area(), pois);
        let q = Point::new(0.0, 0.0);
        assert_eq!(db.nearest(q, None).unwrap().id, 0);
        assert_eq!(db.nearest(q, Some(Category::BusStop)).unwrap().id, 1);
        assert!(db.nearest(q, Some(Category::Clinic)).is_none());
    }

    #[test]
    fn within_radius_is_exact_and_sorted() {
        let db = PoiDatabase::generate(area(), 200, 3);
        let q = Point::new(500.0, 500.0);
        let hits = db.within_radius(q, 150.0);
        for p in &hits {
            assert!(p.pos.distance(&q) <= 150.0);
        }
        for w in hits.windows(2) {
            assert!(w[0].pos.distance(&q) <= w[1].pos.distance(&q));
        }
        // Exactness: brute-force count matches.
        let brute = db
            .k_nearest(q, 200)
            .iter()
            .filter(|p| p.pos.distance(&q) <= 150.0)
            .count();
        assert_eq!(hits.len(), brute);
        assert!(db.within_radius(q, -1.0).is_empty());
    }

    #[test]
    fn bus_schedule_next_arrival() {
        let s = BusSchedule {
            headway: 600.0,
            offset: 100.0,
        };
        assert_eq!(s.next_arrival(0.0), 100.0);
        assert_eq!(s.next_arrival(100.0), 100.0);
        assert_eq!(s.next_arrival(100.1), 700.0);
        assert_eq!(s.next_arrival(700.0), 700.0);
        assert_eq!(s.next_arrival(1900.5), 2500.0);
    }

    #[test]
    fn empty_database_behaviour() {
        let db = PoiDatabase::new(area(), vec![]);
        assert!(db.is_empty());
        assert!(db.nearest(Point::ORIGIN, None).is_none());
        assert!(db.k_nearest(Point::ORIGIN, 3).is_empty());
        assert!(db.within_radius(Point::ORIGIN, 100.0).is_empty());
    }
}
