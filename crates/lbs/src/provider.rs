//! The service provider: answers every position, remembers everything.
//!
//! The observer state itself lives in `dummyloc-store`: [`ObserverLog`]
//! here is a thin façade over a pluggable [`Storage`] backend. The
//! default (and the only backend the in-process provider ever uses) is
//! the in-memory map, whose semantics are unchanged from when it lived
//! in this file; the server can point the same trait at the durable
//! log-structured store.

use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use dummyloc_store::memory::MemoryBackend;
use dummyloc_store::Storage;

use crate::cost::{CostAccounting, CostModel};
use crate::poi::{Category, PoiDatabase};
use crate::query::{Answer, BusAnswer, PoiInfo, QueryKind, ServiceResponse};

pub use dummyloc_store::memory::{StreamView, TimeIter};

/// Message used when a borrowed-slice API is called on a non-memory
/// backend: those views borrow RAM that a durable backend does not keep.
const MEMORY_ONLY: &str = "this ObserverLog API needs the in-memory backend; \
     durable backends are queried through `storage()` (scan/snapshot/digests)";

/// Everything an honest-but-curious provider retains about its users:
/// per-pseudonym, the full time-ordered sequence of received requests.
///
/// This is precisely the input the paper's threat model gives the
/// observer (*"users cannot prevent service providers from analyzing
/// motion patterns using the stored true position data"*); the adversary
/// models in `dummyloc-core` consume these streams.
///
/// The log delegates to a pluggable [`Storage`] backend. Constructed via
/// [`Default`] it wraps the in-memory map ([`MemoryBackend`]) and every
/// method below behaves exactly as it always has; constructed via
/// [`ObserverLog::with_storage`] it can sit on any backend, with the
/// borrowed-slice views ([`ObserverLog::requests_of`],
/// [`ObserverLog::stream`], …) remaining memory-only (they hand out
/// references into RAM that a durable backend does not keep — use
/// [`ObserverLog::storage`] scans there).
#[derive(Debug)]
pub struct ObserverLog {
    storage: Box<dyn Storage>,
}

impl Default for ObserverLog {
    fn default() -> Self {
        ObserverLog {
            storage: Box::new(MemoryBackend::default()),
        }
    }
}

impl Clone for ObserverLog {
    /// Cloning requires the in-memory backend (the provider and the
    /// server's shard-merging path only ever clone RAM-backed logs).
    fn clone(&self) -> Self {
        ObserverLog {
            storage: Box::new(self.mem().clone()),
        }
    }
}

impl ObserverLog {
    /// A log over an explicit storage backend.
    pub fn with_storage(storage: Box<dyn Storage>) -> Self {
        ObserverLog { storage }
    }

    /// The backend, for trait-level access (scans, snapshots, flushes).
    pub fn storage(&self) -> &dyn Storage {
        self.storage.as_ref()
    }

    /// Mutable access to the backend.
    pub fn storage_mut(&mut self) -> &mut dyn Storage {
        self.storage.as_mut()
    }

    fn mem(&self) -> &MemoryBackend {
        self.storage.as_memory().expect(MEMORY_ONLY)
    }

    fn mem_mut(&mut self) -> &mut MemoryBackend {
        self.storage.as_memory_mut().expect(MEMORY_ONLY)
    }

    /// Records one received request at time `t` (clones the request; the
    /// server's ingest path uses [`ObserverLog::record_owned`]).
    pub fn record(&mut self, t: f64, request: &Request) {
        self.mem_mut().record(t, request);
    }

    /// Records one received request at time `t`, taking ownership so the
    /// hot path never clones position vectors.
    pub fn record_owned(&mut self, t: f64, request: Request) {
        self.mem_mut().record_owned(t, request);
    }

    /// Records one received request carrying an idempotent request id.
    /// Returns `false` (and records nothing) when this pseudonym already
    /// reported the same id — how a retried query stays single-counted in
    /// the observer's view even though the provider answered it twice.
    pub fn record_owned_unique(&mut self, t: f64, request_id: u64, request: Request) -> bool {
        self.mem_mut().record_owned_unique(t, request_id, request)
    }

    /// Full-control record used by sharded server logs: an explicit
    /// arrival sequence number `seq` (globally monotone across shards, so
    /// [`ObserverLog::absorb`] reconstructs exact arrival order even for
    /// equal timestamps) and an optional idempotent request id. Returns
    /// `false` when the id was already seen for this pseudonym.
    pub fn record_full(
        &mut self,
        t: f64,
        seq: u64,
        request_id: Option<u64>,
        request: Request,
    ) -> bool {
        self.mem_mut().record_full(t, seq, request_id, request)
    }

    /// Seeds a pseudonym's seen-id set without recording anything — the
    /// server's store-recovery path (see
    /// [`MemoryBackend::preload_seen`]).
    pub fn preload_seen(&mut self, pseudonym: &str, ids: impl IntoIterator<Item = u64>) {
        self.mem_mut().preload_seen(pseudonym, ids);
    }

    /// Advances the internal sequence counter past `next`.
    pub fn advance_seq(&mut self, next: u64) {
        self.mem_mut().advance_seq(next);
    }

    /// Pseudonyms in order of first appearance.
    pub fn pseudonyms(&self) -> &[String] {
        self.mem().pseudonyms()
    }

    /// The time-ordered request stream of one pseudonym.
    pub fn stream(&self, pseudonym: &str) -> Option<StreamView<'_>> {
        self.mem().stream(pseudonym)
    }

    /// The request sequence of one pseudonym without timestamps — the
    /// shape the [`Adversary`](dummyloc_core::adversary::Adversary) trait
    /// consumes. Borrowed: unknown pseudonyms yield an empty slice, and
    /// no request is ever cloned.
    pub fn requests_of(&self, pseudonym: &str) -> &[Request] {
        self.mem().requests_of(pseudonym)
    }

    /// Iterates one pseudonym's requests in receive order without cloning.
    pub fn iter_requests_of(&self, pseudonym: &str) -> std::slice::Iter<'_, Request> {
        self.mem().iter_requests_of(pseudonym)
    }

    /// Streams one pseudonym's requests in receive order without
    /// materializing the whole stream — unlike the borrowed views above
    /// this works on **any** backend (it rides
    /// [`Storage::scan_stream`]), so the attack pipeline can walk a
    /// durable log bigger than RAM. Unknown pseudonyms yield an empty
    /// iterator; backend decode failures surface as `Err` items.
    pub fn scan_stream<'a>(
        &'a self,
        pseudonym: &str,
    ) -> dummyloc_store::StoreResult<
        Box<dyn Iterator<Item = dummyloc_store::StoreResult<Request>> + 'a>,
    > {
        Ok(Box::new(
            self.storage
                .scan_stream(pseudonym)?
                .map(|r| r.map(|rec| rec.request)),
        ))
    }

    /// Merges another log into this one, preserving per-stream `(time,
    /// arrival-sequence)` order — how the server folds its per-shard logs
    /// into one observer view. The merge is *stable*: records with equal
    /// timestamps keep their arrival-sequence order, so folding shards in
    /// any order produces the same streams. Already-seen request ids are
    /// carried over; records are deduplicated at record time (a pseudonym
    /// always lands in one shard), not during the merge.
    pub fn absorb(&mut self, mut other: ObserverLog) {
        let incoming = std::mem::take(other.storage.as_memory_mut().expect(MEMORY_ONLY));
        self.mem_mut().absorb(incoming);
    }

    /// FNV-1a digest of one pseudonym's time-ordered stream: timestamps
    /// and every reported position folded bit-exactly (f64 bit patterns,
    /// little-endian). Two logs agree on a pseudonym's digest iff they
    /// recorded the same reports in the same order — the check the WAL
    /// replay and crash-recovery suites rely on. `None` for unknown
    /// pseudonyms. Works on every backend (digests are part of the
    /// [`Storage`] contract and bit-identical across backends).
    pub fn stream_digest(&self, pseudonym: &str) -> Option<u64> {
        self.storage.stream_digest(pseudonym)
    }

    /// [`ObserverLog::stream_digest`] for every pseudonym, sorted by
    /// pseudonym — the canonical whole-log fingerprint (independent of
    /// first-appearance order, which sharding perturbs).
    pub fn stream_digests(&self) -> Vec<(String, u64)> {
        self.storage.stream_digests()
    }

    /// Total recorded requests.
    pub fn len(&self) -> usize {
        self.storage.len() as usize
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }
}

/// The LBS provider of Figure 5: answers each position in a request
/// independently, bills the cost, and logs the request.
#[derive(Debug, Clone)]
pub struct Provider {
    pois: PoiDatabase,
    cost_model: CostModel,
    cost: CostAccounting,
    log: ObserverLog,
}

impl Provider {
    /// Creates a provider over a POI database with the default cost model.
    pub fn new(pois: PoiDatabase) -> Self {
        Provider {
            pois,
            cost_model: CostModel::default(),
            cost: CostAccounting::default(),
            log: ObserverLog::default(),
        }
    }

    /// Creates a provider with an explicit cost model.
    pub fn with_cost_model(pois: PoiDatabase, cost_model: CostModel) -> Self {
        Provider {
            pois,
            cost_model,
            cost: CostAccounting::default(),
            log: ObserverLog::default(),
        }
    }

    /// The POI database being served.
    pub fn pois(&self) -> &PoiDatabase {
        &self.pois
    }

    /// Restores checkpointed cost counters — the simulation engine's
    /// resume path: the counters are a pure fold over the requests served
    /// so far, so reinstating them (rather than replaying every request)
    /// continues the accounting exactly. The observer log is *not*
    /// restored; nothing in a simulation outcome reads it.
    pub fn restore_cost(&mut self, cost: CostAccounting) {
        self.cost = cost;
    }

    /// Accumulated cost counters.
    pub fn cost(&self) -> &CostAccounting {
        &self.cost
    }

    /// Everything the provider has stored about its users.
    pub fn observer_log(&self) -> &ObserverLog {
        &self.log
    }

    /// Handles one request at time `t`: answers every position (the
    /// provider cannot know which is true), logs the request, and bills
    /// the cost.
    pub fn handle(&mut self, t: f64, request: &Request, query: &QueryKind) -> ServiceResponse {
        let response = answer_request(&self.pois, t, request, query);
        self.cost
            .record(&self.cost_model, request.positions.len(), &response);
        self.log.record(t, request);
        response
    }
}

/// Answers one position at time `t` against a POI database — the pure,
/// stateless core of [`Provider::handle`], shared with the concurrent
/// server (which holds the database read-only behind an `Arc` and keeps
/// logging and billing elsewhere).
pub fn answer_position(pois: &PoiDatabase, t: f64, pos: Point, query: &QueryKind) -> Answer {
    match *query {
        QueryKind::NearestPoi { category } => Answer::NearestPoi(
            pois.nearest(pos, category)
                .map(|p| PoiInfo::for_poi(p, pos)),
        ),
        QueryKind::PoisInRange { radius } => Answer::PoisInRange(
            pois.within_radius(pos, radius)
                .into_iter()
                .map(|p| PoiInfo::for_poi(p, pos))
                .collect(),
        ),
        QueryKind::NextBus => {
            Answer::NextBus(pois.nearest(pos, Some(Category::BusStop)).map(|stop| {
                BusAnswer {
                    stop: PoiInfo::for_poi(stop, pos),
                    arrival: stop
                        .schedule
                        .expect("bus stops carry schedules")
                        .next_arrival(t),
                }
            }))
        }
    }
}

/// Answers every position of `request` in order — exactly what the paper's
/// provider must do, since it cannot tell truth from dummies.
pub fn answer_request(
    pois: &PoiDatabase,
    t: f64,
    request: &Request,
    query: &QueryKind,
) -> ServiceResponse {
    ServiceResponse {
        answers: request
            .positions
            .iter()
            .map(|&p| answer_position(pois, t, p, query))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::BBox;

    fn provider() -> Provider {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        Provider::new(PoiDatabase::generate(area, 100, 5))
    }

    fn request(pseudonym: &str, positions: Vec<Point>) -> Request {
        Request {
            pseudonym: pseudonym.into(),
            positions,
        }
    }

    #[test]
    fn one_answer_per_position_in_order() {
        let mut p = provider();
        let req = request(
            "p1",
            vec![
                Point::new(10.0, 10.0),
                Point::new(900.0, 900.0),
                Point::new(500.0, 10.0),
            ],
        );
        let resp = p.handle(0.0, &req, &QueryKind::NearestPoi { category: None });
        assert_eq!(resp.answers.len(), 3);
        // Each answer is the nearest POI to its own position.
        for (i, a) in resp.answers.iter().enumerate() {
            let Answer::NearestPoi(Some(info)) = a else {
                panic!("expected a POI")
            };
            let expect = p.pois().nearest(req.positions[i], None).unwrap();
            assert_eq!(info.id, expect.id);
        }
    }

    #[test]
    fn next_bus_answers_use_query_time() {
        let mut p = provider();
        let req = request("p1", vec![Point::new(500.0, 500.0)]);
        let r1 = p.handle(0.0, &req, &QueryKind::NextBus);
        let r2 = p.handle(100_000.0, &req, &QueryKind::NextBus);
        let Answer::NextBus(Some(a1)) = &r1.answers[0] else {
            panic!()
        };
        let Answer::NextBus(Some(a2)) = &r2.answers[0] else {
            panic!()
        };
        assert_eq!(a1.stop.id, a2.stop.id);
        assert!(a2.arrival >= 100_000.0);
        assert!(a1.arrival < 100_000.0);
    }

    #[test]
    fn range_answers_respect_radius() {
        let mut p = provider();
        let req = request("p1", vec![Point::new(500.0, 500.0)]);
        let resp = p.handle(0.0, &req, &QueryKind::PoisInRange { radius: 120.0 });
        let Answer::PoisInRange(hits) = &resp.answers[0] else {
            panic!()
        };
        for h in hits {
            assert!(h.distance <= 120.0);
        }
    }

    #[test]
    fn cost_grows_with_dummy_count() {
        let mut p = provider();
        let q = QueryKind::NearestPoi { category: None };
        p.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        let up1 = p.cost().uplink_bytes;
        let mut p2 = provider();
        p2.handle(0.0, &request("a", vec![Point::new(1.0, 1.0); 5]), &q);
        assert!(p2.cost().uplink_bytes > up1);
        assert!(p2.cost().downlink_bytes > p.cost().downlink_bytes);
        assert_eq!(p2.cost().positions_per_request(), 5.0);
    }

    #[test]
    fn observer_log_keeps_streams_in_order() {
        let mut p = provider();
        let q = QueryKind::NextBus;
        p.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        p.handle(1.0, &request("b", vec![Point::new(2.0, 2.0)]), &q);
        p.handle(2.0, &request("a", vec![Point::new(3.0, 3.0)]), &q);
        let log = p.observer_log();
        assert_eq!(log.pseudonyms(), &["a".to_string(), "b".to_string()]);
        assert_eq!(log.len(), 3);
        let a = log.stream("a").unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.times(), &[0.0, 2.0]);
        let (t_last, r_last) = a.last().unwrap();
        assert_eq!(t_last, 2.0);
        assert_eq!(r_last.positions, vec![Point::new(3.0, 3.0)]);
        assert_eq!(a.iter().count(), 2);
        assert_eq!(log.requests_of("a").len(), 2);
        assert_eq!(log.iter_requests_of("a").count(), 2);
        assert!(log.requests_of("zz").is_empty());
        assert!(log.stream("zz").is_none());
        assert!(!log.is_empty());
    }

    #[test]
    fn absorb_merges_shards_preserving_time_order() {
        let q = QueryKind::NextBus;
        let mut shard0 = provider();
        let mut shard1 = provider();
        // Disjoint pseudonyms plus one pseudonym split across shards with
        // interleaved timestamps.
        shard0.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        shard0.handle(2.0, &request("both", vec![Point::new(2.0, 2.0)]), &q);
        shard1.handle(1.0, &request("both", vec![Point::new(3.0, 3.0)]), &q);
        shard1.handle(3.0, &request("b", vec![Point::new(4.0, 4.0)]), &q);

        let mut merged = shard0.observer_log().clone();
        merged.absorb(shard1.observer_log().clone());
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.pseudonyms().len(), 3);
        let both = merged.stream("both").unwrap();
        assert_eq!(both.times(), &[1.0, 2.0]);
        assert_eq!(merged.requests_of("a").len(), 1);
        assert_eq!(merged.requests_of("b").len(), 1);
    }

    /// Regression: `absorb` used to preserve time order but left the
    /// relative order of equal timestamps to whichever log was folded in
    /// first. With arrival sequence numbers the merge is stable — the same
    /// streams come out no matter the fold order.
    #[test]
    fn absorb_breaks_timestamp_ties_by_arrival_sequence() {
        let build = |seqs: &[u64]| {
            let mut log = ObserverLog::default();
            for &s in seqs {
                // All at t = 5.0; the x-coordinate encodes the arrival seq.
                log.record_full(5.0, s, None, request("p", vec![Point::new(s as f64, 0.0)]));
            }
            log
        };
        // One arrival order 0..6 split alternately across two shard logs.
        let a = build(&[0, 2, 4]);
        let b = build(&[1, 3, 5]);

        let mut ab = a.clone();
        ab.absorb(b.clone());
        let mut ba = b;
        ba.absorb(a);

        let xs = |log: &ObserverLog| -> Vec<f64> {
            log.requests_of("p")
                .iter()
                .map(|r| r.positions[0].x)
                .collect()
        };
        assert_eq!(xs(&ab), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(xs(&ab), xs(&ba), "fold order must not change the stream");
        assert_eq!(ab.stream("p").unwrap().times(), &[5.0; 6]);
    }

    #[test]
    fn duplicate_request_ids_are_recorded_once() {
        let mut log = ObserverLog::default();
        let req = request("p", vec![Point::new(1.0, 1.0)]);
        assert!(log.record_owned_unique(0.0, 7, req.clone()));
        assert!(!log.record_owned_unique(30.0, 7, req.clone()));
        assert!(log.record_owned_unique(30.0, 8, req.clone()));
        assert_eq!(log.requests_of("p").len(), 2);
        // Ids are scoped per pseudonym: another user may reuse id 7.
        assert!(log.record_owned_unique(0.0, 7, request("q", vec![Point::new(2.0, 2.0)])));
        // The seen set survives an absorb.
        let mut merged = ObserverLog::default();
        merged.absorb(log);
        assert!(!merged.record_owned_unique(60.0, 8, req));
        assert_eq!(merged.requests_of("p").len(), 2);
    }

    /// Satellite regression for the storage seam: an `ObserverLog` over
    /// an explicitly-injected `MemoryBackend` behaves identically to the
    /// default-constructed one — same streams, same borrowed views, same
    /// digests — and the digest recipe is byte-identical to what this
    /// file computed before the extraction.
    #[test]
    fn storage_seam_preserves_observer_semantics() {
        let drive = |log: &mut ObserverLog| {
            assert!(log.record_owned_unique(0.0, 0, request("a", vec![Point::new(1.0, 2.0)])));
            assert!(!log.record_owned_unique(5.0, 0, request("a", vec![Point::new(9.0, 9.0)])));
            log.record(10.0, &request("b", vec![Point::new(3.0, 4.0)]));
            log.record_owned(20.0, request("a", vec![Point::new(5.0, 6.0)]));
        };
        let mut legacy = ObserverLog::default();
        let mut seamed =
            ObserverLog::with_storage(Box::new(dummyloc_store::MemoryBackend::default()));
        drive(&mut legacy);
        drive(&mut seamed);

        assert_eq!(legacy.stream_digests(), seamed.stream_digests());
        assert_eq!(legacy.pseudonyms(), seamed.pseudonyms());
        assert_eq!(legacy.requests_of("a"), seamed.requests_of("a"));
        assert_eq!(
            legacy.stream("a").unwrap().times(),
            seamed.stream("a").unwrap().times()
        );
        assert_eq!(legacy.len(), 3);

        // The digest recipe is pinned: the historic inline FNV-1a fold,
        // recomputed here by hand, must match what the backend reports.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (t, req) in legacy.stream("a").unwrap().iter() {
            fold(&mut h, &t.to_bits().to_le_bytes());
            fold(&mut h, req.pseudonym.as_bytes());
            for p in &req.positions {
                fold(&mut h, &p.x.to_bits().to_le_bytes());
                fold(&mut h, &p.y.to_bits().to_le_bytes());
            }
        }
        assert_eq!(legacy.stream_digest("a"), Some(h));

        // Clones are deep, and absorbing into an empty log reproduces
        // the source exactly.
        let cloned = legacy.clone();
        let mut merged = ObserverLog::default();
        merged.absorb(legacy);
        assert_eq!(cloned.stream_digests(), merged.stream_digests());
        assert_eq!(cloned.stream_digests(), seamed.stream_digests());

        // Trait-level access reaches the same state.
        assert_eq!(seamed.storage().pseudonym_list().len(), 2);
        assert!(seamed.storage().as_memory().is_some());
    }

    #[test]
    fn empty_database_yields_none_answers() {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let mut p = Provider::new(PoiDatabase::new(area, vec![]));
        let resp = p.handle(
            0.0,
            &request("a", vec![Point::new(1.0, 1.0)]),
            &QueryKind::NearestPoi { category: None },
        );
        assert_eq!(resp.answers, vec![Answer::NearestPoi(None)]);
        let resp = p.handle(
            0.0,
            &request("a", vec![Point::new(1.0, 1.0)]),
            &QueryKind::NextBus,
        );
        assert_eq!(resp.answers, vec![Answer::NextBus(None)]);
    }
}
