//! The service provider: answers every position, remembers everything.

use std::collections::HashMap;

use dummyloc_core::client::Request;
use dummyloc_geo::Point;

use crate::cost::{CostAccounting, CostModel};
use crate::poi::{Category, PoiDatabase};
use crate::query::{Answer, BusAnswer, PoiInfo, QueryKind, ServiceResponse};

/// Everything an honest-but-curious provider retains about its users:
/// per-pseudonym, the full time-ordered sequence of received requests.
///
/// This is precisely the input the paper's threat model gives the
/// observer (*"users cannot prevent service providers from analyzing
/// motion patterns using the stored true position data"*); the adversary
/// models in `dummyloc-core` consume these streams.
#[derive(Debug, Clone, Default)]
pub struct ObserverLog {
    order: Vec<String>,
    streams: HashMap<String, Vec<(f64, Request)>>,
}

impl ObserverLog {
    /// Records one received request at time `t`.
    pub fn record(&mut self, t: f64, request: &Request) {
        let stream = self
            .streams
            .entry(request.pseudonym.clone())
            .or_insert_with(|| {
                self.order.push(request.pseudonym.clone());
                Vec::new()
            });
        stream.push((t, request.clone()));
    }

    /// Pseudonyms in order of first appearance.
    pub fn pseudonyms(&self) -> &[String] {
        &self.order
    }

    /// The time-ordered request stream of one pseudonym.
    pub fn stream(&self, pseudonym: &str) -> Option<&[(f64, Request)]> {
        self.streams.get(pseudonym).map(Vec::as_slice)
    }

    /// The request sequence of one pseudonym without timestamps — the
    /// shape the [`Adversary`](dummyloc_core::adversary::Adversary) trait
    /// consumes.
    pub fn requests_of(&self, pseudonym: &str) -> Vec<Request> {
        self.streams
            .get(pseudonym)
            .map(|s| s.iter().map(|(_, r)| r.clone()).collect())
            .unwrap_or_default()
    }

    /// Total recorded requests.
    pub fn len(&self) -> usize {
        self.streams.values().map(Vec::len).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

/// The LBS provider of Figure 5: answers each position in a request
/// independently, bills the cost, and logs the request.
#[derive(Debug, Clone)]
pub struct Provider {
    pois: PoiDatabase,
    cost_model: CostModel,
    cost: CostAccounting,
    log: ObserverLog,
}

impl Provider {
    /// Creates a provider over a POI database with the default cost model.
    pub fn new(pois: PoiDatabase) -> Self {
        Provider {
            pois,
            cost_model: CostModel::default(),
            cost: CostAccounting::default(),
            log: ObserverLog::default(),
        }
    }

    /// Creates a provider with an explicit cost model.
    pub fn with_cost_model(pois: PoiDatabase, cost_model: CostModel) -> Self {
        Provider {
            pois,
            cost_model,
            cost: CostAccounting::default(),
            log: ObserverLog::default(),
        }
    }

    /// The POI database being served.
    pub fn pois(&self) -> &PoiDatabase {
        &self.pois
    }

    /// Accumulated cost counters.
    pub fn cost(&self) -> &CostAccounting {
        &self.cost
    }

    /// Everything the provider has stored about its users.
    pub fn observer_log(&self) -> &ObserverLog {
        &self.log
    }

    /// Handles one request at time `t`: answers every position (the
    /// provider cannot know which is true), logs the request, and bills
    /// the cost.
    pub fn handle(&mut self, t: f64, request: &Request, query: &QueryKind) -> ServiceResponse {
        let answers = request
            .positions
            .iter()
            .map(|&p| self.answer_one(t, p, query))
            .collect();
        let response = ServiceResponse { answers };
        self.cost
            .record(&self.cost_model, request.positions.len(), &response);
        self.log.record(t, request);
        response
    }

    fn answer_one(&self, t: f64, pos: Point, query: &QueryKind) -> Answer {
        match *query {
            QueryKind::NearestPoi { category } => Answer::NearestPoi(
                self.pois
                    .nearest(pos, category)
                    .map(|p| PoiInfo::for_poi(p, pos)),
            ),
            QueryKind::PoisInRange { radius } => Answer::PoisInRange(
                self.pois
                    .within_radius(pos, radius)
                    .into_iter()
                    .map(|p| PoiInfo::for_poi(p, pos))
                    .collect(),
            ),
            QueryKind::NextBus => {
                Answer::NextBus(self.pois.nearest(pos, Some(Category::BusStop)).map(|stop| {
                    BusAnswer {
                        stop: PoiInfo::for_poi(stop, pos),
                        arrival: stop
                            .schedule
                            .expect("bus stops carry schedules")
                            .next_arrival(t),
                    }
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::BBox;

    fn provider() -> Provider {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        Provider::new(PoiDatabase::generate(area, 100, 5))
    }

    fn request(pseudonym: &str, positions: Vec<Point>) -> Request {
        Request {
            pseudonym: pseudonym.into(),
            positions,
        }
    }

    #[test]
    fn one_answer_per_position_in_order() {
        let mut p = provider();
        let req = request(
            "p1",
            vec![
                Point::new(10.0, 10.0),
                Point::new(900.0, 900.0),
                Point::new(500.0, 10.0),
            ],
        );
        let resp = p.handle(0.0, &req, &QueryKind::NearestPoi { category: None });
        assert_eq!(resp.answers.len(), 3);
        // Each answer is the nearest POI to its own position.
        for (i, a) in resp.answers.iter().enumerate() {
            let Answer::NearestPoi(Some(info)) = a else {
                panic!("expected a POI")
            };
            let expect = p.pois().nearest(req.positions[i], None).unwrap();
            assert_eq!(info.id, expect.id);
        }
    }

    #[test]
    fn next_bus_answers_use_query_time() {
        let mut p = provider();
        let req = request("p1", vec![Point::new(500.0, 500.0)]);
        let r1 = p.handle(0.0, &req, &QueryKind::NextBus);
        let r2 = p.handle(100_000.0, &req, &QueryKind::NextBus);
        let Answer::NextBus(Some(a1)) = &r1.answers[0] else {
            panic!()
        };
        let Answer::NextBus(Some(a2)) = &r2.answers[0] else {
            panic!()
        };
        assert_eq!(a1.stop.id, a2.stop.id);
        assert!(a2.arrival >= 100_000.0);
        assert!(a1.arrival < 100_000.0);
    }

    #[test]
    fn range_answers_respect_radius() {
        let mut p = provider();
        let req = request("p1", vec![Point::new(500.0, 500.0)]);
        let resp = p.handle(0.0, &req, &QueryKind::PoisInRange { radius: 120.0 });
        let Answer::PoisInRange(hits) = &resp.answers[0] else {
            panic!()
        };
        for h in hits {
            assert!(h.distance <= 120.0);
        }
    }

    #[test]
    fn cost_grows_with_dummy_count() {
        let mut p = provider();
        let q = QueryKind::NearestPoi { category: None };
        p.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        let up1 = p.cost().uplink_bytes;
        let mut p2 = provider();
        p2.handle(0.0, &request("a", vec![Point::new(1.0, 1.0); 5]), &q);
        assert!(p2.cost().uplink_bytes > up1);
        assert!(p2.cost().downlink_bytes > p.cost().downlink_bytes);
        assert_eq!(p2.cost().positions_per_request(), 5.0);
    }

    #[test]
    fn observer_log_keeps_streams_in_order() {
        let mut p = provider();
        let q = QueryKind::NextBus;
        p.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        p.handle(1.0, &request("b", vec![Point::new(2.0, 2.0)]), &q);
        p.handle(2.0, &request("a", vec![Point::new(3.0, 3.0)]), &q);
        let log = p.observer_log();
        assert_eq!(log.pseudonyms(), &["a".to_string(), "b".to_string()]);
        assert_eq!(log.len(), 3);
        let a = log.stream("a").unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].0, 0.0);
        assert_eq!(a[1].0, 2.0);
        assert_eq!(log.requests_of("a").len(), 2);
        assert!(log.requests_of("zz").is_empty());
        assert!(log.stream("zz").is_none());
        assert!(!log.is_empty());
    }

    #[test]
    fn empty_database_yields_none_answers() {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let mut p = Provider::new(PoiDatabase::new(area, vec![]));
        let resp = p.handle(
            0.0,
            &request("a", vec![Point::new(1.0, 1.0)]),
            &QueryKind::NearestPoi { category: None },
        );
        assert_eq!(resp.answers, vec![Answer::NearestPoi(None)]);
        let resp = p.handle(
            0.0,
            &request("a", vec![Point::new(1.0, 1.0)]),
            &QueryKind::NextBus,
        );
        assert_eq!(resp.answers, vec![Answer::NextBus(None)]);
    }
}
