//! The service provider: answers every position, remembers everything.

use std::collections::{HashMap, HashSet};

use dummyloc_core::client::Request;
use dummyloc_geo::Point;

use crate::cost::{CostAccounting, CostModel};
use crate::poi::{Category, PoiDatabase};
use crate::query::{Answer, BusAnswer, PoiInfo, QueryKind, ServiceResponse};

/// One pseudonym's stream, stored as parallel arrays so request sequences
/// can be handed to adversaries as a borrowed `&[Request]` slice without
/// cloning. Each record carries an arrival sequence number so merges stay
/// stable even for equal timestamps, and a set of already-seen request
/// ids so a retried (idempotent) report is never double-counted.
#[derive(Debug, Clone, Default)]
struct Stream {
    times: Vec<f64>,
    seqs: Vec<u64>,
    requests: Vec<Request>,
    seen: HashSet<u64>,
}

impl Stream {
    /// Appends `other` preserving `(time, sequence)` order: a plain append
    /// when `other` starts no earlier than this stream ends (the common
    /// case when merging shard logs that each saw disjoint pseudonyms or
    /// disjoint time windows), a stable two-way merge otherwise. Ties on
    /// the timestamp are broken by arrival sequence, then by taking this
    /// stream's record first — so the merge result does not depend on
    /// which shard happened to be folded in first.
    fn merge(&mut self, other: Stream) {
        self.seen.extend(other.seen);
        let in_order = match (
            self.times.last().zip(self.seqs.last()),
            other.times.first().zip(other.seqs.first()),
        ) {
            (Some((&ta, &sa)), Some((&tb, &sb))) => ta < tb || (ta == tb && sa <= sb),
            _ => true,
        };
        let (mut bt, mut bs, mut br) = (other.times, other.seqs, other.requests);
        if in_order {
            self.times.append(&mut bt);
            self.seqs.append(&mut bs);
            self.requests.append(&mut br);
            return;
        }
        let at = std::mem::take(&mut self.times);
        let as_ = std::mem::take(&mut self.seqs);
        let mut a_req = std::mem::take(&mut self.requests).into_iter();
        let mut b_req = br.into_iter();
        let (mut ai, mut bi) = (0, 0);
        while ai < at.len() || bi < bt.len() {
            let take_a = if ai == at.len() {
                false
            } else if bi == bt.len() {
                true
            } else {
                at[ai] < bt[bi] || (at[ai] == bt[bi] && as_[ai] <= bs[bi])
            };
            if take_a {
                self.times.push(at[ai]);
                self.seqs.push(as_[ai]);
                self.requests.push(a_req.next().expect("parallel vecs"));
                ai += 1;
            } else {
                self.times.push(bt[bi]);
                self.seqs.push(bs[bi]);
                self.requests.push(b_req.next().expect("parallel vecs"));
                bi += 1;
            }
        }
    }
}

/// Borrowed view of one pseudonym's time-ordered stream: parallel
/// timestamp and request slices of equal length.
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    times: &'a [f64],
    requests: &'a [Request],
}

impl<'a> StreamView<'a> {
    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Receive times, parallel to [`StreamView::requests`].
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// The requests in receive order.
    pub fn requests(&self) -> &'a [Request] {
        self.requests
    }

    /// `(time, request)` pairs in receive order.
    pub fn iter(&self) -> std::iter::Zip<TimeIter<'a>, std::slice::Iter<'a, Request>> {
        self.times.iter().copied().zip(self.requests.iter())
    }

    /// The most recent `(time, request)` pair.
    pub fn last(&self) -> Option<(f64, &'a Request)> {
        Some((*self.times.last()?, self.requests.last()?))
    }
}

/// Iterator over a stream's receive times.
pub type TimeIter<'a> = std::iter::Copied<std::slice::Iter<'a, f64>>;

impl<'a> IntoIterator for StreamView<'a> {
    type Item = (f64, &'a Request);
    type IntoIter = std::iter::Zip<TimeIter<'a>, std::slice::Iter<'a, Request>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Everything an honest-but-curious provider retains about its users:
/// per-pseudonym, the full time-ordered sequence of received requests.
///
/// This is precisely the input the paper's threat model gives the
/// observer (*"users cannot prevent service providers from analyzing
/// motion patterns using the stored true position data"*); the adversary
/// models in `dummyloc-core` consume these streams.
#[derive(Debug, Clone, Default)]
pub struct ObserverLog {
    order: Vec<String>,
    streams: HashMap<String, Stream>,
    next_seq: u64,
}

/// What [`ObserverLog::requests_of`] returns for unknown pseudonyms.
static NO_REQUESTS: &[Request] = &[];

impl ObserverLog {
    /// Records one received request at time `t` (clones the request; the
    /// server's ingest path uses [`ObserverLog::record_owned`]).
    pub fn record(&mut self, t: f64, request: &Request) {
        self.record_owned(t, request.clone());
    }

    /// Records one received request at time `t`, taking ownership so the
    /// hot path never clones position vectors.
    pub fn record_owned(&mut self, t: f64, request: Request) {
        let seq = self.next_seq;
        self.record_full(t, seq, None, request);
    }

    /// Records one received request carrying an idempotent request id.
    /// Returns `false` (and records nothing) when this pseudonym already
    /// reported the same id — how a retried query stays single-counted in
    /// the observer's view even though the provider answered it twice.
    pub fn record_owned_unique(&mut self, t: f64, request_id: u64, request: Request) -> bool {
        let seq = self.next_seq;
        self.record_full(t, seq, Some(request_id), request)
    }

    /// Full-control record used by sharded server logs: an explicit
    /// arrival sequence number `seq` (globally monotone across shards, so
    /// [`ObserverLog::absorb`] reconstructs exact arrival order even for
    /// equal timestamps) and an optional idempotent request id. Returns
    /// `false` when the id was already seen for this pseudonym.
    pub fn record_full(
        &mut self,
        t: f64,
        seq: u64,
        request_id: Option<u64>,
        request: Request,
    ) -> bool {
        let stream = self
            .streams
            .entry(request.pseudonym.clone())
            .or_insert_with(|| {
                self.order.push(request.pseudonym.clone());
                Stream::default()
            });
        if let Some(id) = request_id {
            if !stream.seen.insert(id) {
                return false;
            }
        }
        self.next_seq = self.next_seq.max(seq + 1);
        stream.times.push(t);
        stream.seqs.push(seq);
        stream.requests.push(request);
        true
    }

    /// Pseudonyms in order of first appearance.
    pub fn pseudonyms(&self) -> &[String] {
        &self.order
    }

    /// The time-ordered request stream of one pseudonym.
    pub fn stream(&self, pseudonym: &str) -> Option<StreamView<'_>> {
        self.streams.get(pseudonym).map(|s| StreamView {
            times: &s.times,
            requests: &s.requests,
        })
    }

    /// The request sequence of one pseudonym without timestamps — the
    /// shape the [`Adversary`](dummyloc_core::adversary::Adversary) trait
    /// consumes. Borrowed: unknown pseudonyms yield an empty slice, and
    /// no request is ever cloned.
    pub fn requests_of(&self, pseudonym: &str) -> &[Request] {
        self.streams
            .get(pseudonym)
            .map_or(NO_REQUESTS, |s| &s.requests)
    }

    /// Iterates one pseudonym's requests in receive order without cloning.
    pub fn iter_requests_of(&self, pseudonym: &str) -> std::slice::Iter<'_, Request> {
        self.requests_of(pseudonym).iter()
    }

    /// Merges another log into this one, preserving per-stream `(time,
    /// arrival-sequence)` order — how the server folds its per-shard logs
    /// into one observer view. The merge is *stable*: records with equal
    /// timestamps keep their arrival-sequence order, so folding shards in
    /// any order produces the same streams. Already-seen request ids are
    /// carried over; records are deduplicated at record time (a pseudonym
    /// always lands in one shard), not during the merge.
    pub fn absorb(&mut self, other: ObserverLog) {
        let ObserverLog {
            order,
            mut streams,
            next_seq,
        } = other;
        self.next_seq = self.next_seq.max(next_seq);
        for pseudonym in order {
            let incoming = streams
                .remove(&pseudonym)
                .expect("order lists every stream");
            match self.streams.entry(pseudonym.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.order.push(pseudonym);
                    e.insert(incoming);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(incoming);
                }
            }
        }
    }

    /// FNV-1a digest of one pseudonym's time-ordered stream: timestamps
    /// and every reported position folded bit-exactly (f64 bit patterns,
    /// little-endian). Two logs agree on a pseudonym's digest iff they
    /// recorded the same reports in the same order — the check the WAL
    /// replay and crash-recovery suites rely on. `None` for unknown
    /// pseudonyms.
    pub fn stream_digest(&self, pseudonym: &str) -> Option<u64> {
        let s = self.streams.get(pseudonym)?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (t, req) in s.times.iter().zip(&s.requests) {
            fold(&mut h, &t.to_bits().to_le_bytes());
            fold(&mut h, req.pseudonym.as_bytes());
            for p in &req.positions {
                fold(&mut h, &p.x.to_bits().to_le_bytes());
                fold(&mut h, &p.y.to_bits().to_le_bytes());
            }
        }
        Some(h)
    }

    /// [`ObserverLog::stream_digest`] for every pseudonym, sorted by
    /// pseudonym — the canonical whole-log fingerprint (independent of
    /// first-appearance order, which sharding perturbs).
    pub fn stream_digests(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .order
            .iter()
            .map(|p| (p.clone(), self.stream_digest(p).expect("listed pseudonym")))
            .collect();
        out.sort();
        out
    }

    /// Total recorded requests.
    pub fn len(&self) -> usize {
        self.streams.values().map(|s| s.requests.len()).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

/// The LBS provider of Figure 5: answers each position in a request
/// independently, bills the cost, and logs the request.
#[derive(Debug, Clone)]
pub struct Provider {
    pois: PoiDatabase,
    cost_model: CostModel,
    cost: CostAccounting,
    log: ObserverLog,
}

impl Provider {
    /// Creates a provider over a POI database with the default cost model.
    pub fn new(pois: PoiDatabase) -> Self {
        Provider {
            pois,
            cost_model: CostModel::default(),
            cost: CostAccounting::default(),
            log: ObserverLog::default(),
        }
    }

    /// Creates a provider with an explicit cost model.
    pub fn with_cost_model(pois: PoiDatabase, cost_model: CostModel) -> Self {
        Provider {
            pois,
            cost_model,
            cost: CostAccounting::default(),
            log: ObserverLog::default(),
        }
    }

    /// The POI database being served.
    pub fn pois(&self) -> &PoiDatabase {
        &self.pois
    }

    /// Restores checkpointed cost counters — the simulation engine's
    /// resume path: the counters are a pure fold over the requests served
    /// so far, so reinstating them (rather than replaying every request)
    /// continues the accounting exactly. The observer log is *not*
    /// restored; nothing in a simulation outcome reads it.
    pub fn restore_cost(&mut self, cost: CostAccounting) {
        self.cost = cost;
    }

    /// Accumulated cost counters.
    pub fn cost(&self) -> &CostAccounting {
        &self.cost
    }

    /// Everything the provider has stored about its users.
    pub fn observer_log(&self) -> &ObserverLog {
        &self.log
    }

    /// Handles one request at time `t`: answers every position (the
    /// provider cannot know which is true), logs the request, and bills
    /// the cost.
    pub fn handle(&mut self, t: f64, request: &Request, query: &QueryKind) -> ServiceResponse {
        let response = answer_request(&self.pois, t, request, query);
        self.cost
            .record(&self.cost_model, request.positions.len(), &response);
        self.log.record(t, request);
        response
    }
}

/// Answers one position at time `t` against a POI database — the pure,
/// stateless core of [`Provider::handle`], shared with the concurrent
/// server (which holds the database read-only behind an `Arc` and keeps
/// logging and billing elsewhere).
pub fn answer_position(pois: &PoiDatabase, t: f64, pos: Point, query: &QueryKind) -> Answer {
    match *query {
        QueryKind::NearestPoi { category } => Answer::NearestPoi(
            pois.nearest(pos, category)
                .map(|p| PoiInfo::for_poi(p, pos)),
        ),
        QueryKind::PoisInRange { radius } => Answer::PoisInRange(
            pois.within_radius(pos, radius)
                .into_iter()
                .map(|p| PoiInfo::for_poi(p, pos))
                .collect(),
        ),
        QueryKind::NextBus => {
            Answer::NextBus(pois.nearest(pos, Some(Category::BusStop)).map(|stop| {
                BusAnswer {
                    stop: PoiInfo::for_poi(stop, pos),
                    arrival: stop
                        .schedule
                        .expect("bus stops carry schedules")
                        .next_arrival(t),
                }
            }))
        }
    }
}

/// Answers every position of `request` in order — exactly what the paper's
/// provider must do, since it cannot tell truth from dummies.
pub fn answer_request(
    pois: &PoiDatabase,
    t: f64,
    request: &Request,
    query: &QueryKind,
) -> ServiceResponse {
    ServiceResponse {
        answers: request
            .positions
            .iter()
            .map(|&p| answer_position(pois, t, p, query))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::BBox;

    fn provider() -> Provider {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        Provider::new(PoiDatabase::generate(area, 100, 5))
    }

    fn request(pseudonym: &str, positions: Vec<Point>) -> Request {
        Request {
            pseudonym: pseudonym.into(),
            positions,
        }
    }

    #[test]
    fn one_answer_per_position_in_order() {
        let mut p = provider();
        let req = request(
            "p1",
            vec![
                Point::new(10.0, 10.0),
                Point::new(900.0, 900.0),
                Point::new(500.0, 10.0),
            ],
        );
        let resp = p.handle(0.0, &req, &QueryKind::NearestPoi { category: None });
        assert_eq!(resp.answers.len(), 3);
        // Each answer is the nearest POI to its own position.
        for (i, a) in resp.answers.iter().enumerate() {
            let Answer::NearestPoi(Some(info)) = a else {
                panic!("expected a POI")
            };
            let expect = p.pois().nearest(req.positions[i], None).unwrap();
            assert_eq!(info.id, expect.id);
        }
    }

    #[test]
    fn next_bus_answers_use_query_time() {
        let mut p = provider();
        let req = request("p1", vec![Point::new(500.0, 500.0)]);
        let r1 = p.handle(0.0, &req, &QueryKind::NextBus);
        let r2 = p.handle(100_000.0, &req, &QueryKind::NextBus);
        let Answer::NextBus(Some(a1)) = &r1.answers[0] else {
            panic!()
        };
        let Answer::NextBus(Some(a2)) = &r2.answers[0] else {
            panic!()
        };
        assert_eq!(a1.stop.id, a2.stop.id);
        assert!(a2.arrival >= 100_000.0);
        assert!(a1.arrival < 100_000.0);
    }

    #[test]
    fn range_answers_respect_radius() {
        let mut p = provider();
        let req = request("p1", vec![Point::new(500.0, 500.0)]);
        let resp = p.handle(0.0, &req, &QueryKind::PoisInRange { radius: 120.0 });
        let Answer::PoisInRange(hits) = &resp.answers[0] else {
            panic!()
        };
        for h in hits {
            assert!(h.distance <= 120.0);
        }
    }

    #[test]
    fn cost_grows_with_dummy_count() {
        let mut p = provider();
        let q = QueryKind::NearestPoi { category: None };
        p.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        let up1 = p.cost().uplink_bytes;
        let mut p2 = provider();
        p2.handle(0.0, &request("a", vec![Point::new(1.0, 1.0); 5]), &q);
        assert!(p2.cost().uplink_bytes > up1);
        assert!(p2.cost().downlink_bytes > p.cost().downlink_bytes);
        assert_eq!(p2.cost().positions_per_request(), 5.0);
    }

    #[test]
    fn observer_log_keeps_streams_in_order() {
        let mut p = provider();
        let q = QueryKind::NextBus;
        p.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        p.handle(1.0, &request("b", vec![Point::new(2.0, 2.0)]), &q);
        p.handle(2.0, &request("a", vec![Point::new(3.0, 3.0)]), &q);
        let log = p.observer_log();
        assert_eq!(log.pseudonyms(), &["a".to_string(), "b".to_string()]);
        assert_eq!(log.len(), 3);
        let a = log.stream("a").unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.times(), &[0.0, 2.0]);
        let (t_last, r_last) = a.last().unwrap();
        assert_eq!(t_last, 2.0);
        assert_eq!(r_last.positions, vec![Point::new(3.0, 3.0)]);
        assert_eq!(a.iter().count(), 2);
        assert_eq!(log.requests_of("a").len(), 2);
        assert_eq!(log.iter_requests_of("a").count(), 2);
        assert!(log.requests_of("zz").is_empty());
        assert!(log.stream("zz").is_none());
        assert!(!log.is_empty());
    }

    #[test]
    fn absorb_merges_shards_preserving_time_order() {
        let q = QueryKind::NextBus;
        let mut shard0 = provider();
        let mut shard1 = provider();
        // Disjoint pseudonyms plus one pseudonym split across shards with
        // interleaved timestamps.
        shard0.handle(0.0, &request("a", vec![Point::new(1.0, 1.0)]), &q);
        shard0.handle(2.0, &request("both", vec![Point::new(2.0, 2.0)]), &q);
        shard1.handle(1.0, &request("both", vec![Point::new(3.0, 3.0)]), &q);
        shard1.handle(3.0, &request("b", vec![Point::new(4.0, 4.0)]), &q);

        let mut merged = shard0.observer_log().clone();
        merged.absorb(shard1.observer_log().clone());
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.pseudonyms().len(), 3);
        let both = merged.stream("both").unwrap();
        assert_eq!(both.times(), &[1.0, 2.0]);
        assert_eq!(merged.requests_of("a").len(), 1);
        assert_eq!(merged.requests_of("b").len(), 1);
    }

    /// Regression: `absorb` used to preserve time order but left the
    /// relative order of equal timestamps to whichever log was folded in
    /// first. With arrival sequence numbers the merge is stable — the same
    /// streams come out no matter the fold order.
    #[test]
    fn absorb_breaks_timestamp_ties_by_arrival_sequence() {
        let build = |seqs: &[u64]| {
            let mut log = ObserverLog::default();
            for &s in seqs {
                // All at t = 5.0; the x-coordinate encodes the arrival seq.
                log.record_full(5.0, s, None, request("p", vec![Point::new(s as f64, 0.0)]));
            }
            log
        };
        // One arrival order 0..6 split alternately across two shard logs.
        let a = build(&[0, 2, 4]);
        let b = build(&[1, 3, 5]);

        let mut ab = a.clone();
        ab.absorb(b.clone());
        let mut ba = b;
        ba.absorb(a);

        let xs = |log: &ObserverLog| -> Vec<f64> {
            log.requests_of("p")
                .iter()
                .map(|r| r.positions[0].x)
                .collect()
        };
        assert_eq!(xs(&ab), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(xs(&ab), xs(&ba), "fold order must not change the stream");
        assert_eq!(ab.stream("p").unwrap().times(), &[5.0; 6]);
    }

    #[test]
    fn duplicate_request_ids_are_recorded_once() {
        let mut log = ObserverLog::default();
        let req = request("p", vec![Point::new(1.0, 1.0)]);
        assert!(log.record_owned_unique(0.0, 7, req.clone()));
        assert!(!log.record_owned_unique(30.0, 7, req.clone()));
        assert!(log.record_owned_unique(30.0, 8, req.clone()));
        assert_eq!(log.requests_of("p").len(), 2);
        // Ids are scoped per pseudonym: another user may reuse id 7.
        assert!(log.record_owned_unique(0.0, 7, request("q", vec![Point::new(2.0, 2.0)])));
        // The seen set survives an absorb.
        let mut merged = ObserverLog::default();
        merged.absorb(log);
        assert!(!merged.record_owned_unique(60.0, 8, req));
        assert_eq!(merged.requests_of("p").len(), 2);
    }

    #[test]
    fn empty_database_yields_none_answers() {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let mut p = Provider::new(PoiDatabase::new(area, vec![]));
        let resp = p.handle(
            0.0,
            &request("a", vec![Point::new(1.0, 1.0)]),
            &QueryKind::NearestPoi { category: None },
        );
        assert_eq!(resp.answers, vec![Answer::NearestPoi(None)]);
        let resp = p.handle(
            0.0,
            &request("a", vec![Point::new(1.0, 1.0)]),
            &QueryKind::NextBus,
        );
        assert_eq!(resp.answers, vec![Answer::NextBus(None)]);
    }
}
