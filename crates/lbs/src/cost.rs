//! Communication and processing cost accounting.
//!
//! The dummy scheme is not free: a request with `k` dummies costs `k+1`
//! positions of uplink, `k+1` answers of downlink and `k+1` index queries
//! of provider work. Experiment A3 reports these curves; this module does
//! the bookkeeping.

use serde::{Deserialize, Serialize};

use crate::query::{Answer, ServiceResponse};

/// Byte-cost constants for the wire format. These model a compact binary
/// encoding (not the JSON used for report files).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-message overhead (headers, pseudonym, query descriptor).
    pub message_overhead: u64,
    /// Bytes per reported position (two f64 coordinates).
    pub position_bytes: u64,
    /// Bytes per POI record in an answer.
    pub poi_bytes: u64,
    /// Bytes for an empty/None answer slot.
    pub empty_answer_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            message_overhead: 24,
            position_bytes: 16,
            poi_bytes: 40,
            empty_answer_bytes: 2,
        }
    }
}

impl CostModel {
    /// Uplink bytes of a request carrying `positions` positions.
    pub fn request_bytes(&self, positions: usize) -> u64 {
        self.message_overhead + self.position_bytes * positions as u64
    }

    /// Downlink bytes of a response.
    pub fn response_bytes(&self, response: &ServiceResponse) -> u64 {
        self.message_overhead
            + response
                .answers
                .iter()
                .map(|a| self.answer_bytes(a))
                .sum::<u64>()
    }

    fn answer_bytes(&self, answer: &Answer) -> u64 {
        match answer {
            Answer::NearestPoi(Some(_)) => self.poi_bytes,
            Answer::NearestPoi(None) => self.empty_answer_bytes,
            Answer::PoisInRange(v) => self.empty_answer_bytes + self.poi_bytes * v.len() as u64,
            Answer::NextBus(Some(_)) => self.poi_bytes + 8,
            Answer::NextBus(None) => self.empty_answer_bytes,
        }
    }
}

/// Running totals kept by the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostAccounting {
    /// Messages handled.
    pub requests: u64,
    /// Positions processed (each costs one index query).
    pub positions: u64,
    /// Total uplink bytes.
    pub uplink_bytes: u64,
    /// Total downlink bytes.
    pub downlink_bytes: u64,
}

impl CostAccounting {
    /// Records one handled request/response pair.
    pub fn record(&mut self, model: &CostModel, positions: usize, response: &ServiceResponse) {
        self.requests += 1;
        self.positions += positions as u64;
        self.uplink_bytes += model.request_bytes(positions);
        self.downlink_bytes += model.response_bytes(response);
    }

    /// Mean positions per request (the provider's work amplification
    /// factor; `k+1` when everyone uses `k` dummies).
    pub fn positions_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.positions as f64 / self.requests as f64
        }
    }

    /// Mean total bytes (up + down) per request.
    pub fn bytes_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.uplink_bytes + self.downlink_bytes) as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PoiInfo;
    use dummyloc_geo::Point;

    fn poi_info() -> PoiInfo {
        PoiInfo {
            id: 0,
            name: "x".into(),
            category: crate::poi::Category::Shop,
            pos: Point::ORIGIN,
            distance: 1.0,
        }
    }

    #[test]
    fn request_bytes_scale_with_positions() {
        let m = CostModel::default();
        assert_eq!(m.request_bytes(1), 24 + 16);
        assert_eq!(m.request_bytes(4), 24 + 64);
    }

    #[test]
    fn response_bytes_by_variant() {
        let m = CostModel::default();
        let r = ServiceResponse {
            answers: vec![
                Answer::NearestPoi(Some(poi_info())),
                Answer::NearestPoi(None),
                Answer::PoisInRange(vec![poi_info(), poi_info()]),
                Answer::NextBus(None),
            ],
        };
        assert_eq!(m.response_bytes(&r), 24 + 40 + 2 + (2 + 80) + 2);
    }

    #[test]
    fn accounting_accumulates_and_averages() {
        let m = CostModel::default();
        let mut acc = CostAccounting::default();
        assert_eq!(acc.positions_per_request(), 0.0);
        assert_eq!(acc.bytes_per_request(), 0.0);
        let resp = ServiceResponse {
            answers: vec![Answer::NearestPoi(None), Answer::NearestPoi(None)],
        };
        acc.record(&m, 2, &resp);
        acc.record(&m, 4, &ServiceResponse { answers: vec![] });
        assert_eq!(acc.requests, 2);
        assert_eq!(acc.positions, 6);
        assert_eq!(acc.positions_per_request(), 3.0);
        assert_eq!(acc.uplink_bytes, (24 + 32) + (24 + 64));
        assert_eq!(acc.downlink_bytes, (24 + 4) + 24);
        assert!(acc.bytes_per_request() > 0.0);
    }
}
