//! Location-based service provider simulation.
//!
//! The paper's protocol (Figure 5) has the provider answer *every*
//! position in a request — it cannot tell which is true, so it must do
//! `k+1` times the work and return `k+1` answers, of which the client
//! keeps one. This crate implements that provider side:
//!
//! * [`poi`] — a POI database (restaurants, bus stops, landmarks, …) over
//!   a bulk-built k-d tree, with a seeded synthetic generator,
//! * [`query`] — the service vocabulary: nearest-POI, range, and the
//!   paper's §2.1 motivating bus-timetable service,
//! * [`provider`] — the [`Provider`] that answers requests position by
//!   position and keeps an [`ObserverLog`] (this *is* the honest-but-
//!   curious adversary's input: everything the provider stores),
//! * [`cost`] — bandwidth/processing accounting, quantifying what the
//!   dummy scheme costs (experiment A3),
//! * [`cloak_log`] — the rectangle-indexed archive a provider keeps under
//!   the *cloaking* baseline, with the mining queries that motivate
//!   replacing cloaks with dummies.
//!
//! # Example
//!
//! ```
//! use dummyloc_geo::{BBox, Point};
//! use dummyloc_lbs::poi::{Category, PoiDatabase};
//! use dummyloc_lbs::provider::Provider;
//! use dummyloc_lbs::query::QueryKind;
//! use dummyloc_core::client::Request;
//!
//! let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
//! let db = PoiDatabase::generate(area, 50, 7);
//! let mut provider = Provider::new(db);
//!
//! // A request carrying one true position and two dummies.
//! let request = Request {
//!     pseudonym: "p1".into(),
//!     positions: vec![
//!         Point::new(100.0, 100.0),
//!         Point::new(500.0, 900.0),
//!         Point::new(850.0, 200.0),
//!     ],
//! };
//! let response = provider.handle(
//!     0.0,
//!     &request,
//!     &QueryKind::NearestPoi { category: Some(Category::Restaurant) },
//! );
//! // One answer per reported position — the client keeps only its own.
//! assert_eq!(response.answers.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloak_log;
pub mod cost;
pub mod poi;
pub mod provider;
pub mod query;

pub use cloak_log::CloakLog;
pub use cost::{CostAccounting, CostModel};
pub use poi::{Category, Poi, PoiDatabase};
pub use provider::{answer_position, answer_request, ObserverLog, Provider, StreamView};
pub use query::{Answer, PoiInfo, QueryKind, ServiceResponse};
