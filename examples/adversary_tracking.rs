//! An honest-but-curious provider tries to pick the true position out of
//! each pseudonym's request stream — comparing the paper's dummy
//! algorithms under several observer strategies.
//!
//! ```text
//! cargo run -p dummyloc-examples --bin adversary_tracking
//! ```

use dummyloc_core::adversary::{
    Adversary, ChainScore, ContinuityTracker, RandomGuesser, SpeedGate,
};
use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::workload;

fn main() {
    let fleet = workload::nara_fleet_sized(30, 1800.0, 42);
    let dummies = 3;
    println!(
        "workload: {} rickshaws, {} dummies each → chance level {:.2}\n",
        fleet.len(),
        dummies,
        1.0 / (dummies + 1) as f64
    );

    let adversaries: Vec<Box<dyn Adversary>> = vec![
        Box::new(RandomGuesser),
        Box::new(ContinuityTracker::new(ChainScore::MaxStep)),
        Box::new(ContinuityTracker::new(ChainScore::StepVariance)),
        Box::new(SpeedGate::new(130.0)),
    ];

    println!(
        "{:<12} {:>14} {:>17} {:>18} {:>12}",
        "dummies", "random-guess", "tracker-maxstep", "tracker-variance", "speed-gate"
    );
    for kind in [
        GeneratorKind::Random,
        GeneratorKind::Mn { m: 60.0 },
        GeneratorKind::Mn { m: 120.0 },
        GeneratorKind::Mln {
            m: 120.0,
            retry_budget: 3,
        },
    ] {
        let config = SimConfig {
            grid_size: 12,
            dummy_count: dummies,
            generator: kind,
            ..SimConfig::nara_default(42)
        };
        let outcome = Simulation::new(config)
            .expect("valid config")
            .run(&fleet)
            .expect("fleet fits the area");
        let rates: Vec<f64> = adversaries
            .iter()
            .map(|adv| outcome.identification_rate(adv.as_ref(), 7))
            .collect();
        let label = match kind {
            GeneratorKind::Mn { m } => format!("mn (m={m:.0})"),
            GeneratorKind::Mln { m, .. } => format!("mln (m={m:.0})"),
            other => other.label().to_string(),
        };
        println!(
            "{:<12} {:>14.2} {:>17.2} {:>18.2} {:>12.2}",
            label, rates[0], rates[1], rates[2], rates[3]
        );
    }

    println!(
        "\nReading: random dummies are exposed by temporal inconsistency;\n\
         MN dummies with m matched to real per-round movement (60 m here)\n\
         pin every adversary near the 0.25 chance level. Oversized m makes\n\
         dummies out-run plausible speeds and hands the max-step tracker\n\
         an edge — the A1 ablation quantifies that trade-off."
    );
}
