//! The paper's headline experiment in miniature: a fleet of rickshaws
//! touring a Nara-like downtown, everyone protected by MN dummies, with
//! the anonymity metrics printed per configuration.
//!
//! ```text
//! cargo run -p dummyloc-examples --bin nara_rickshaw
//! ```

use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::workload;
use dummyloc_trajectory::stats::dataset_stats;

fn main() {
    // The 39-rickshaw synthetic Nara workload (DESIGN.md §3 documents the
    // substitution for the paper's proprietary traces).
    let fleet = workload::nara_fleet_sized(39, 1800.0, 42);
    let stats = dataset_stats(&fleet);
    println!(
        "workload: {} rickshaws, {:.0} m x {:.0} m downtown, mean speed {:.2} m/s\n",
        stats.tracks, stats.extent.0, stats.extent.1, stats.mean_speed
    );

    println!("grid    dummies  F (%)   Shift(P)=0 (%)  mean Shift(P)");
    for grid_size in [8u32, 10, 12] {
        for dummies in [0usize, 3, 6] {
            let config = SimConfig {
                grid_size,
                dummy_count: dummies,
                generator: GeneratorKind::Mn { m: 120.0 },
                ..SimConfig::nara_default(42)
            };
            let outcome = Simulation::new(config)
                .expect("valid config")
                .run(&fleet)
                .expect("fleet fits the service area");
            let (none_pct, _, _, _) = outcome.shift_buckets.percentages();
            println!(
                "{:>2}x{:<3}  {:>7}  {:>5.1}  {:>14.1}  {:>13.2}",
                grid_size,
                grid_size,
                dummies,
                outcome.mean_f * 100.0,
                none_pct,
                outcome.shift_mean,
            );
        }
    }
    println!(
        "\nReading: more dummies → more occupied regions (higher F); the MN\n\
         dummies move plausibly, so per-region populations change slowly."
    );
}
