//! Quickstart: protect one user's position with MN dummies while querying
//! a location-based service.
//!
//! ```text
//! cargo run -p dummyloc-examples --bin quickstart
//! ```

use dummyloc_core::client::Client;
use dummyloc_core::generator::{MnGenerator, NoDensity};
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::poi::{Category, PoiDatabase};
use dummyloc_lbs::provider::Provider;
use dummyloc_lbs::query::{Answer, QueryKind};

fn main() {
    // A 1 km × 1 km service area with 60 POIs, and a provider serving it.
    let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).expect("static bounds");
    let mut provider = Provider::new(PoiDatabase::generate(area, 60, 7));

    // A client that hides its true position among 3 dummies moving in
    // ±50 m neighborhoods (the paper's MN algorithm).
    let generator = MnGenerator::new(area, 50.0).expect("valid parameters");
    let mut client = Client::new("pseudonym-1", generator, 3);
    let mut rng = rng_from_seed(42);

    // The user walks east, querying the nearest restaurant each round.
    let query = QueryKind::NearestPoi {
        category: Some(Category::Restaurant),
    };
    println!("round  true position        nearest restaurant       provider saw");
    for round_no in 0..5 {
        let truth = Point::new(200.0 + 30.0 * round_no as f64, 400.0);
        let round = if round_no == 0 {
            client.begin(&mut rng, truth).expect("first round")
        } else {
            client
                .step(&mut rng, truth, &NoDensity)
                .expect("later round")
        };

        // The provider answers *every* position; it cannot tell which is
        // true.
        let response = provider.handle(round_no as f64 * 30.0, &round.request, &query);

        // The client keeps only the answer at its private truth index.
        let own = &response.answers[round.truth_index];
        let Answer::NearestPoi(Some(poi)) = own else {
            panic!("database has restaurants")
        };
        println!(
            "{:>5}  ({:>5.0}, {:>4.0})        {:<22}  {} positions",
            round_no,
            truth.x,
            truth.y,
            format!("{} @ {:.0} m", poi.name, poi.distance),
            round.request.positions.len(),
        );
    }

    // What the provider learned: four plausible positions per round.
    let log = provider.observer_log();
    let stream = log.stream("pseudonym-1").expect("the client talked to us");
    println!(
        "\nprovider log for 'pseudonym-1': {} requests",
        stream.len()
    );
    let (_, last) = stream.last().expect("non-empty");
    for (i, p) in last.positions.iter().enumerate() {
        println!("  candidate {i}: ({:.0}, {:.0})", p.x, p.y);
    }
    println!("…and no way to tell which candidate was the user.");
}
