//! Visualize what the provider sees: per-region population heatmaps with
//! and without dummies, plus an SVG snapshot of one protocol round.
//!
//! ```text
//! cargo run -p dummyloc-examples --bin visualize
//! ```
//!
//! Writes `dummyloc_round.svg` into the current directory.

use dummyloc_core::population::PopulationGrid;
use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::viz::{ascii_heatmap, render_round_svg};
use dummyloc_sim::workload;

fn main() {
    let fleet = workload::nara_fleet_sized(20, 900.0, 42);

    for dummies in [0usize, 3] {
        let config = SimConfig {
            grid_size: 12,
            dummy_count: dummies,
            generator: GeneratorKind::Mn { m: 120.0 },
            ..SimConfig::nara_default(42)
        };
        let sim = Simulation::new(config).expect("valid config");
        let outcome = sim.run(&fleet).expect("fleet fits the area");

        // Rebuild the final round's population from the emitted streams —
        // exactly what an observer could draw.
        let last = outcome.rounds - 1;
        let positions = outcome
            .streams
            .iter()
            .flat_map(|(reqs, _)| reqs[last].positions.iter().copied());
        let pop = PopulationGrid::from_positions(sim.grid(), positions)
            .expect("reported positions stay inside the area");

        println!(
            "=== provider's view, final round, {dummies} dummies (F = {:.0}%) ===",
            outcome.mean_f * 100.0
        );
        println!("{}", ascii_heatmap(&pop));

        if dummies == 3 {
            let svg = render_round_svg(sim.grid(), &outcome.streams, last, 640.0);
            std::fs::write("dummyloc_round.svg", &svg).expect("current directory is writable");
            println!(
                "wrote dummyloc_round.svg ({} positions drawn, one color per user)",
                outcome.streams.len() * (dummies + 1)
            );
        }
    }
    println!(
        "\nReading: with dummies the population sheet fills in — the observer\n\
         can no longer carve the map into 'lived-in' and 'empty' regions."
    );
}
