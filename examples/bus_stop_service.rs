//! The paper's §2.1 motivating scenario: a person queries the bus
//! timetable every week from home and from a clinic. Without protection,
//! the provider's stored positions reveal both places; with dummies the
//! anonymity set stays wide.
//!
//! ```text
//! cargo run -p dummyloc-examples --bin bus_stop_service
//! ```

use dummyloc_core::anonymity::{as_f, RegionInfo};
use dummyloc_core::client::Client;
use dummyloc_core::generator::{AnchoredGenerator, MnGenerator, NoDensity, RandomGenerator};
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_lbs::poi::PoiDatabase;
use dummyloc_lbs::provider::Provider;
use dummyloc_lbs::query::{Answer, QueryKind};

fn main() {
    let area = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).expect("static bounds");
    let grid = Grid::square(area, 10).expect("10x10 regions");
    let home = Point::new(310.0, 1720.0);
    let clinic = Point::new(1650.0, 420.0);

    // Eight weekly visits: home, clinic, home, clinic, …
    let visits: Vec<Point> = (0..8)
        .map(|w| if w % 2 == 0 { home } else { clinic })
        .collect();

    println!("=== unprotected user ===");
    let mut provider = Provider::new(PoiDatabase::generate(area, 80, 3));
    let mut naked = Client::new(
        "weekly-patient",
        RandomGenerator::new(area).expect("valid area"),
        0, // zero dummies: the plain LBS of the paper's Figure 1
    );
    let mut rng = rng_from_seed(7);
    run_weeks(&mut provider, &mut naked, &mut rng, &visits);
    report(&provider, &grid, "weekly-patient");
    println!(
        "  → the two recurring regions are the user's home and clinic;\n\
         \u{20}   a clinic staffer cross-referencing visit times learns the address.\n"
    );

    println!("=== dummy-protected user ===");
    let mut provider = Provider::new(PoiDatabase::generate(area, 80, 3));
    let mut protected = Client::new(
        "weekly-patient",
        MnGenerator::new(area, 150.0).expect("valid parameters"),
        4,
    );
    let mut rng = rng_from_seed(7);
    run_weeks(&mut provider, &mut protected, &mut rng, &visits);
    report(&provider, &grid, "weekly-patient");
    println!(
        "  → each request now names ~5 regions, but notice the catch: the\n\
         \u{20}   MN dummies *wander*, so across weeks only home and clinic keep\n\
         \u{20}   recurring. Per-request anonymity is not long-term anonymity.\n"
    );

    println!("=== anchored-dummy user (extension beyond the paper) ===");
    let mut provider = Provider::new(PoiDatabase::generate(area, 80, 3));
    // Anchored dummies commute between two fixed fake places. A week
    // passes between queries, so a dummy plausibly crosses the whole town
    // per round: full-area speed and no dwell makes each dummy alternate
    // anchor→anchor exactly like the real user alternates home→clinic.
    let mut anchored = Client::new(
        "weekly-patient",
        AnchoredGenerator::new(area, 3000.0, (0, 0)).expect("valid parameters"),
        4,
    );
    let mut rng = rng_from_seed(7);
    run_weeks(&mut provider, &mut anchored, &mut rng, &visits);
    report(&provider, &grid, "weekly-patient");
    println!(
        "  → now several region *pairs* recur week after week; the observer\n\
         \u{20}   cannot tell which commute is the real home↔clinic one."
    );
}

fn run_weeks<G: dummyloc_core::generator::DummyGenerator>(
    provider: &mut Provider,
    client: &mut Client<G>,
    rng: &mut rand::rngs::StdRng,
    visits: &[Point],
) {
    for (week, &pos) in visits.iter().enumerate() {
        let round = if week == 0 {
            client.begin(rng, pos).expect("first visit")
        } else {
            client.step(rng, pos, &NoDensity).expect("later visit")
        };
        let response =
            provider.handle(week as f64 * 604_800.0, &round.request, &QueryKind::NextBus);
        // The client reads its own answer (and discards the rest).
        if let Answer::NextBus(Some(bus)) = &response.answers[round.truth_index] {
            let _ = bus.arrival;
        }
    }
}

fn report(provider: &Provider, grid: &Grid, pseudonym: &str) {
    let log = provider.observer_log();
    let stream = log.stream(pseudonym).expect("user queried the service");

    // What the provider can mine: per request, the set of candidate
    // regions; across requests, how often each region recurs.
    let mut region_hits = std::collections::HashMap::new();
    let mut per_request_asf = Vec::new();
    for (_, request) in stream {
        let info = RegionInfo::from_positions(grid, request.positions.iter().copied())
            .expect("positions stay inside the area");
        per_request_asf.push(as_f(&info));
        for cell in info.regions() {
            *region_hits.entry(*cell).or_insert(0u32) += 1;
        }
    }
    let mut recurring: Vec<_> = region_hits.into_iter().collect();
    recurring.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mean_asf = per_request_asf.iter().sum::<usize>() as f64 / per_request_asf.len() as f64;
    println!("  requests stored: {}", stream.len());
    println!("  mean |AS_F| per request: {mean_asf:.1}");
    println!("  regions recurring in ≥ half the requests:");
    let threshold = stream.len() as u32 / 2;
    let hot: Vec<_> = recurring.iter().filter(|(_, n)| *n >= threshold).collect();
    if hot.is_empty() {
        println!("    (none — no region recurs often enough to single out)");
    }
    for (cell, n) in hot {
        println!(
            "    region ({}, {}) seen in {n}/{} requests",
            cell.col,
            cell.row,
            stream.len()
        );
    }
}
