//! Ingesting external GPS data: the full preprocessing path a user with
//! their own traces would follow — parse CSV, denoise-by-simplify,
//! map-match onto the street network, then run the privacy pipeline.
//!
//! ```text
//! cargo run -p dummyloc-examples --bin external_trace
//! ```
//!
//! (The "external" data here is synthesized and written to a temp file
//! first, so the example is self-contained.)

use dummyloc_geo::rng::rng_from_seed;
use dummyloc_mobility::map_match::{match_trajectory, mean_snap_distance};
use dummyloc_mobility::{RickshawConfig, StreetGrid};
use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::workload;
use dummyloc_trajectory::noise::add_gps_noise_dataset;
use dummyloc_trajectory::simplify::douglas_peucker;
use dummyloc_trajectory::stats::dataset_stats;
use dummyloc_trajectory::{io, Dataset};

fn main() {
    // 1. Someone hands us "real" GPS data: rickshaw tours recorded with
    //    6 m receiver noise at 1 Hz, as CSV.
    let csv_path = std::env::temp_dir().join("external_rickshaws.csv");
    let area = RickshawConfig::nara().area;
    let clean = workload::nara_fleet_sized(8, 900.0, 2026);
    let mut rng = rng_from_seed(7);
    let noisy = add_gps_noise_dataset(&clean, 6.0, Some(area), &mut rng);
    {
        let file = std::fs::File::create(&csv_path).expect("temp dir is writable");
        io::write_csv(&noisy, file).expect("csv encodes");
    }
    println!("external file: {}", csv_path.display());

    // 2. Parse and inspect.
    let raw = io::read_csv(std::fs::File::open(&csv_path).expect("file just written"))
        .expect("well-formed csv");
    let stats = dataset_stats(&raw);
    println!(
        "parsed {} tracks, {} samples, mean speed {:.2} m/s",
        stats.tracks, stats.samples, stats.mean_speed
    );

    // 3. Preprocess each track: simplify away the 1 Hz oversampling, then
    //    snap onto the street network the city map gives us.
    let streets = StreetGrid::new(area, 100.0);
    let mut cleaned = Dataset::new();
    let mut kept_samples = 0;
    for track in raw.tracks() {
        let before = mean_snap_distance(&streets, track);
        let simplified = douglas_peucker(track, 8.0).expect("non-negative tolerance");
        let matched = match_trajectory(&streets, &simplified);
        let after = mean_snap_distance(&streets, &matched);
        kept_samples += simplified.len();
        if track.id() == raw.tracks()[0].id() {
            println!(
                "track '{}': {} → {} samples after simplification; \
                 off-network {:.1} m → {:.1} m after map matching",
                track.id(),
                track.len(),
                simplified.len(),
                before,
                after
            );
        }
        cleaned.push(matched).expect("ids stay unique");
    }
    println!(
        "preprocessing kept {kept_samples}/{} samples across the fleet",
        stats.samples
    );

    // 4. Run the privacy pipeline over the ingested workload.
    let config = SimConfig {
        grid_size: 12,
        dummy_count: 3,
        generator: GeneratorKind::Mn { m: 120.0 },
        ..SimConfig::nara_default(2026)
    };
    let outcome = Simulation::new(config)
        .expect("valid config")
        .run(&cleaned)
        .expect("workload fits the service area");
    println!(
        "\nprivacy metrics on the ingested workload: F = {:.0}%, mean Shift(P) = {:.2}",
        outcome.mean_f * 100.0,
        outcome.shift_mean
    );

    let _ = std::fs::remove_file(&csv_path);
}
