//! Offline shim for the `parking_lot` API subset used by this workspace:
//! `Mutex` and `RwLock` with non-poisoning guards, implemented over the std
//! primitives (poison is unwrapped: a panic while holding a lock aborts the
//! test run either way). See `vendor/README.md`.

use std::sync::{self, PoisonError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        {
            let _r = l.read();
            let _r2 = l.read(); // concurrent readers allowed
            assert!(l.try_write().is_none());
        }
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
