//! Offline shim for the `serde_json` API subset used by this workspace:
//! `to_string[_pretty]`, `to_writer[_pretty]`, `from_str`, `from_reader`,
//! `json!`, and [`Value`]. Text conventions follow real serde_json (pretty =
//! two-space indent with `": "` separators; floats always carry a fraction
//! or exponent; non-finite floats serialize as `null`). See
//! `vendor/README.md`.

pub use serde::value::{Map, Number, Value};

mod read;
mod write;

pub use read::from_str;

/// A JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serializes to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_value()))
}

/// Serializes to a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_value()))
}

/// Serializes compactly into a writer.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(write::compact(&value.to_value()).as_bytes())?;
    Ok(())
}

/// Serializes prettily into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(write::pretty(&value.to_value()).as_bytes())?;
    Ok(())
}

/// Deserializes from a reader (reads to end first, like a buffered parse).
pub fn from_reader<R: std::io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Builds a [`Value`] from JSON-ish syntax. Supports objects with literal
/// keys, arrays, and serializable expressions (the forms this workspace
/// uses); object/array nesting works because each value position accepts
/// another `json!` invocation or a serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert(::std::string::String::from($key), $crate::to_value(&$value)); )*
        $crate::Value::Object(__m)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let text = r#"{"a": 1, "b": [1.5, -2, true, null, "x\n\"y\""], "c": {"d": 9}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"].as_array().unwrap().len(), 5);
        assert_eq!(v["b"][0].as_f64(), Some(1.5));
        assert_eq!(v["b"][1], -2);
        assert_eq!(v["b"][2], true);
        assert!(v["b"][3].is_null());
        assert_eq!(v["b"][4], "x\n\"y\"");
        assert_eq!(v["c"]["d"], 9);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_matches_serde_json() {
        let v = json!({"x": 7u32});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"x\": 7\n}");
        assert_eq!(to_string(&v).unwrap(), "{\"x\":7}");
        let arr = json!([1u32, 2u32]);
        assert_eq!(to_string_pretty(&arr).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_fraction() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let v: Value = from_str("2.0").unwrap();
        assert_eq!(v.as_f64(), Some(2.0));
        assert!(v.as_u64().is_none(), "2.0 parses as a float, not an int");
    }

    #[test]
    fn json_macro_flat_object() {
        let series = vec![0.25f64, 0.5];
        let v = json!({
            "rounds": 3u32,
            "mean_f": 0.4f64,
            "f_series": series,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"rounds":3,"mean_f":0.4,"f_series":[0.25,0.5]}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, "é😀");
        let round: Value = from_str(&to_string("é😀\u{7}").unwrap()).unwrap();
        assert_eq!(round, "é😀\u{7}");
    }

    #[test]
    fn error_reports_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("column"), "got: {err}");
    }
}
