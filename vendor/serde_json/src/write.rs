//! JSON text output (compact and pretty) for the shim.

use crate::Value;
use std::fmt::Write;

/// Compact form: no whitespace.
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty form: two-space indent, `": "` separators (serde_json style).
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some("  "), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
