//! Recursive-descent JSON parser for the shim.

use crate::{Error, Map, Number, Value};

/// Deserializes `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        let v = match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected value")),
        };
        self.depth -= 1;
        v
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so it's valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            // Out-of-range integers fall back to f64, like serde_json's
            // arbitrary-precision-off behavior.
        }
        let f = text
            .parse::<f64>()
            .map_err(|_| self.err("invalid number"))?;
        Ok(Value::Number(Number::from_f64(f)))
    }
}
