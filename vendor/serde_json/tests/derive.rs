//! End-to-end checks for the shim `#[derive(Serialize, Deserialize)]`,
//! mirroring the shapes the dummyloc workspace derives.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    Restaurant,
    BusStop,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryKind {
    NearestPoi { category: Option<Category> },
    PoisInRange { radius: f64 },
    NextBus,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    pub pseudonym: String,
    pub positions: Vec<Point>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mixed {
    Pair(u32, String),
    One(f64),
    Nothing,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Newtype(Vec<u32>);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    req: Request,
    kind: QueryKind,
    tags: Vec<Mixed>,
    maybe: Option<Newtype>,
}

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
    let s = serde_json::to_string(v).unwrap();
    let back: T = serde_json::from_str(&s).unwrap();
    assert_eq!(&back, v, "compact round trip via {s}");
    let s = serde_json::to_string_pretty(v).unwrap();
    let back: T = serde_json::from_str(&s).unwrap();
    assert_eq!(&back, v, "pretty round trip");
}

#[test]
fn struct_round_trip_and_field_order() {
    let p = Point { x: 1.5, y: -2.0 };
    assert_eq!(serde_json::to_string(&p).unwrap(), r#"{"x":1.5,"y":-2.0}"#);
    round_trip(&p);
}

#[test]
fn unit_enum_as_string() {
    assert_eq!(
        serde_json::to_string(&Category::BusStop).unwrap(),
        "\"BusStop\""
    );
    round_trip(&Category::Restaurant);
}

#[test]
fn externally_tagged_variants() {
    let q = QueryKind::NearestPoi {
        category: Some(Category::BusStop),
    };
    assert_eq!(
        serde_json::to_string(&q).unwrap(),
        r#"{"NearestPoi":{"category":"BusStop"}}"#
    );
    round_trip(&q);
    let q = QueryKind::NearestPoi { category: None };
    assert_eq!(
        serde_json::to_string(&q).unwrap(),
        r#"{"NearestPoi":{"category":null}}"#
    );
    round_trip(&q);
    round_trip(&QueryKind::PoisInRange { radius: 120.0 });
    assert_eq!(serde_json::to_string(&QueryKind::NextBus).unwrap(), "\"NextBus\"");
    round_trip(&QueryKind::NextBus);
    round_trip(&Mixed::Pair(7, "x".into()));
    round_trip(&Mixed::One(0.125));
    round_trip(&Mixed::Nothing);
}

#[test]
fn newtype_is_transparent() {
    let n = Newtype(vec![1, 2, 3]);
    assert_eq!(serde_json::to_string(&n).unwrap(), "[1,2,3]");
    round_trip(&n);
}

#[test]
fn nested_structures() {
    let nested = Nested {
        req: Request {
            pseudonym: "u-1".into(),
            positions: vec![Point { x: 0.0, y: 0.0 }, Point { x: 3.0, y: 4.0 }],
        },
        kind: QueryKind::PoisInRange { radius: 50.0 },
        tags: vec![Mixed::Nothing, Mixed::Pair(1, "a".into())],
        maybe: None,
    };
    round_trip(&nested);
    round_trip(&Nested {
        maybe: Some(Newtype(vec![9])),
        ..nested
    });
}

#[test]
fn missing_option_field_defaults_to_none() {
    let q: QueryKind = serde_json::from_str(r#"{"NearestPoi":{}}"#).unwrap();
    assert_eq!(q, QueryKind::NearestPoi { category: None });
}

#[test]
fn missing_required_field_errors() {
    let e = serde_json::from_str::<Request>(r#"{"pseudonym":"u-1"}"#).unwrap_err();
    assert!(e.to_string().contains("positions"), "got: {e}");
}

#[test]
fn unknown_variant_errors() {
    assert!(serde_json::from_str::<Category>("\"Museum\"").is_err());
}
