//! Offline shim for the `rand` 0.8 API subset used by this workspace.
//!
//! Deterministic per seed (xoshiro256** seeded via SplitMix64), uniform
//! sampling semantics matching `rand`'s documented behavior for the methods
//! implemented. See `vendor/README.md` for scope and caveats.

/// Opaque error type mirroring `rand::Error` — only needed so that
/// workspace types can implement the real crate's `try_fill_bytes`
/// signature; the deterministic generators here never fail.
#[derive(Debug)]
pub struct Error(());

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// A source of raw randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
    /// Fallible fill — infallible for every generator in this shim, but
    /// present (with a default, unlike the real trait) so one `impl`
    /// block compiles against both the shim and real `rand` 0.8.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seeds (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable via [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`] (stand-in for
/// `SampleRange`/`UniformSampler`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range,
    /// like `rand`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // span == 0 encodes the full 2^64 span.
    if span == 0 {
        return rng.next_u64();
    }
    // Widening-multiply with rejection (Lemire) for unbiased draws.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 == full span
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        let unit: f64 = Standard::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`
    /// (xoshiro256**; **not** stream-compatible with the real `StdRng`,
    /// which the workspace never relies on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::Rng;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&f));
            let i: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let u: usize = r.gen_range(0..=3);
            assert!(u <= 3);
            let unit: f64 = r.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut r = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut r;
        let x = dynr.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        assert!(dynr.gen_bool(1.0));
    }
}
