//! Offline shim for the `criterion` API subset used by this workspace.
//!
//! Each registered benchmark routine runs a single timed iteration (after
//! one warm-up call when `CRITERION_SHIM_WARMUP=1`) and prints
//! `name ... <duration>`; there is no sampling, statistics, or HTML output.
//! Running with `--test` (as `cargo test` does for bench targets) skips the
//! timed call entirely so test runs stay fast. See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver. Collects nothing; prints one line per benchmark.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.test_mode, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named set of benchmarks (`group/bench` naming, like real criterion).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.test_mode,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(name: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        dry_run: test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("bench {name} ... ok (test mode)");
    } else if b.iters > 0 {
        println!("bench {name} ... {:?}/iter", b.elapsed / b.iters);
    } else {
        println!("bench {name} ... no iterations");
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
    dry_run: bool,
}

impl Bencher {
    /// Times `routine`. The shim executes it once (not at all in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.dry_run {
            return;
        }
        if std::env::var_os("CRITERION_SHIM_WARMUP").is_some() {
            black_box(routine());
        }
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Opaque value sink preventing the optimizer from deleting the routine.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("named", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("sized", 10), &10u32, |b, &n| {
            b.iter(|| n * n)
        });
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, &n| {
            b.iter(|| n + n)
        });
        g.finish();
    }

    #[test]
    fn api_smoke() {
        let mut c = Criterion { test_mode: false };
        routine(&mut c);
        let mut c = Criterion { test_mode: true };
        routine(&mut c);
    }

    criterion_group!(benches, routine);

    #[test]
    fn group_macro_compiles() {
        benches();
    }
}
