//! The JSON value tree shared by the `serde` and `serde_json` shims.
//!
//! Lives here (not in `serde_json`) because derive expansions may only
//! reference the `serde` crate; `serde_json` re-exports these types.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered, like field declaration order).
    Object(Map),
}

impl Value {
    /// Human-readable kind for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64_lossy()),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrowed string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrowed array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrowed object, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member by key (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n == &Number::from_i64(*other as i64),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        match self {
            Value::Number(n) => n == &Number::from_u64(*other),
            _ => false,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

/// A JSON number: unsigned, signed-negative, or float. Matching real
/// serde_json, integer and float values never compare equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(u: u64) -> Self {
        Number::PosInt(u)
    }

    /// From a signed integer (normalized so `1i64` equals `1u64`).
    pub fn from_i64(i: i64) -> Self {
        if i >= 0 {
            Number::PosInt(i as u64)
        } else {
            Number::NegInt(i)
        }
    }

    /// From a float (kept as a float even when integral).
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// As `u64` when non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(u) => Some(*u),
            _ => None,
        }
    }

    /// As `i64` when an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(u) => i64::try_from(*u).ok(),
            Number::NegInt(i) => Some(*i),
            Number::Float(_) => None,
        }
    }

    /// As `f64`, converting integers (always succeeds).
    pub fn as_f64_lossy(&self) -> f64 {
        match self {
            Number::PosInt(u) => *u as f64,
            Number::NegInt(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            Number::Float(x) if !x.is_finite() => f.write_str("null"),
            Number::Float(x) => {
                // Rust's Display is shortest-roundtrip like ryu, but prints
                // integral floats without a fraction; add ".0" as serde_json
                // does so the value reparses as a float.
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (derive output therefore keeps
/// struct field declaration order, like real serde_json's streaming output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces `key`, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}
