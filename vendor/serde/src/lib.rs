//! Offline mini-serde shim.
//!
//! A value-tree (de)serialization framework that presents the same *surface*
//! as real serde for the subset this workspace uses: `Serialize` /
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]`, and (via the
//! sibling `serde_json` shim) JSON text with serde-compatible conventions.
//! Unlike real serde there is no visitor machinery: serialization goes
//! through the [`value::Value`] tree. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Map, Number, Value};

/// (De)serialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the shim's [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err(expected: &str, got: &Value) -> Error {
    Error::custom(format!("invalid type: expected {expected}, found {}", got.kind_name()))
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| type_err(stringify!($t), v)),
                    _ => Err(type_err(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| type_err(stringify!($t), v)),
                    _ => Err(type_err(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64_lossy() as $t),
                    // serde_json serializes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(type_err(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_err("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(type_err("char", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(type_err("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| Error::custom("array length mismatch"))
            }
            Value::Array(items) => Err(Error::custom(format!(
                "invalid length: expected array of {N}, found {}",
                items.len()
            ))),
            _ => Err(type_err("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(type_err("tuple array", v)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (HashMap iteration order is random).
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str().to_owned());
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(type_err("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(type_err("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ----------------------------------------------------- derive-support glue

pub mod __private {
    //! Helpers referenced by `#[derive(Serialize, Deserialize)]` expansions.
    //! Not part of the public API.

    use super::{Deserialize, Error, Value};
    use crate::value::Map;

    /// Deserializes struct field `name` from object `v`; a missing field is
    /// treated as `null` so `Option` fields default to `None`.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(m) => match m.get(name) {
                Some(fv) => T::from_value(fv)
                    .map_err(|e| Error::custom(format!("field '{name}': {e}"))),
                None => T::from_value(&Value::Null)
                    .map_err(|_| Error::custom(format!("missing field '{name}'"))),
            },
            _ => Err(Error::custom(format!(
                "invalid type: expected object with field '{name}', found {}",
                v.kind_name()
            ))),
        }
    }

    /// Type-inferring `Deserialize::from_value`.
    pub fn from<T: Deserialize>(v: &Value) -> Result<T, Error> {
        T::from_value(v)
    }

    /// Externally tagged enum encoding: `{ tag: inner }`.
    pub fn tag(name: &str, inner: Value) -> Value {
        let mut m = Map::new();
        m.insert(name.to_string(), inner);
        Value::Object(m)
    }

    /// Decodes an externally tagged enum value: a bare string is a unit
    /// variant, a single-entry object is a data variant.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(m) if m.len() == 1 => {
                let (k, inner) = m.iter().next().unwrap();
                Ok((k.as_str(), Some(inner)))
            }
            _ => Err(Error::custom(format!(
                "invalid enum encoding: expected string or single-key object, found {}",
                v.kind_name()
            ))),
        }
    }

    /// Expects an array of exactly `n` elements.
    pub fn seq(v: &Value, n: usize) -> Result<&[Value], Error> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "invalid length: expected {n} elements, found {}",
                items.len()
            ))),
            _ => Err(super::type_err("array", v)),
        }
    }
}

// Real serde exposes `serde::de::Error`/`serde::ser::Error` traits; the shim
// only needs the module paths to exist for `use serde::...` lines, which this
// workspace currently doesn't have — omitted deliberately.
