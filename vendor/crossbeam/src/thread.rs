//! Scoped threads with crossbeam's `Result`-returning panic contract.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Panic payload of a scoped thread.
pub type Payload = Box<dyn Any + Send + 'static>;

/// `Ok` unless a spawned thread panicked.
pub type Result<T> = std::result::Result<T, Payload>;

/// Runs `f` with a scope handle; joins all spawned threads before returning.
/// A child panic is captured and surfaced as `Err` (first payload wins)
/// rather than unwinding into the caller.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panics: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
    let result = std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            panics: Arc::clone(&panics),
        };
        f(&scope)
    });
    let mut panics = panics.lock().unwrap_or_else(|e| e.into_inner());
    if panics.is_empty() {
        Ok(result)
    } else {
        Err(panics.remove(0))
    }
}

/// Handle for spawning threads tied to the enclosing [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    panics: Arc<Mutex<Vec<Payload>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle so it
    /// can spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let child = Scope {
            inner: self.inner,
            panics: Arc::clone(&self.panics),
        };
        let handle = self.inner.spawn(move || {
            let panics = Arc::clone(&child.panics);
            match catch_unwind(AssertUnwindSafe(|| f(&child))) {
                Ok(v) => Some(v),
                Err(payload) => {
                    // Captured here so the std scope sees a clean exit; the
                    // payload resurfaces as `scope`'s Err.
                    panics.lock().unwrap_or_else(|e| e.into_inner()).push(payload);
                    None
                }
            }
        });
        ScopedJoinHandle { inner: handle }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread; `Err` if it panicked (payload is reported via
    /// the scope result, so a placeholder message is returned here).
    pub fn join(self) -> Result<T> {
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            _ => Err(Box::new("scoped thread panicked")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_collect() {
        let data = [1, 2, 3];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn() {
        let r = scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap()).unwrap();
        assert_eq!(r, 7);
    }
}
