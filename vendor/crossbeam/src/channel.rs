//! MPMC channels (subset of `crossbeam-channel`) over std primitives.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(None)
}

/// Creates a bounded channel with capacity `cap` (> 0; crossbeam's
/// zero-capacity rendezvous channels are not supported by the shim).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "shim crossbeam does not support rendezvous channels");
    new_chan(Some(cap))
}

fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Error for [`Sender::send`]: all receivers dropped; returns the message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error for [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

/// Error for [`Receiver::recv`]: channel empty and all senders dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message ready.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived in time.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// The sending half; clonable (multi-producer).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Sends, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.chan.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking; fails fast when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = st.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap().queue.len()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.chan.not_empty.notify_all();
        }
    }
}

/// The receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Receives, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.not_empty.wait(st).unwrap();
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .chan
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = next;
            if timed_out.timed_out() && st.queue.is_empty() {
                return if st.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Blocking iterator that ends when all senders are gone.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap().queue.len()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.chan.not_full.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..50 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 50..100 {
                    tx2.send(i).unwrap();
                }
            });
            let a = s.spawn(move || rx.iter().count());
            let b = s.spawn(move || rx2.iter().count());
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        });
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(matches!(tx.send(1), Err(SendError(1))));
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
