//! Offline shim for the `crossbeam` API subset used by this workspace:
//! `thread::scope` (over `std::thread::scope`, returning `Err` instead of
//! propagating child panics) and `channel` (MPMC over `Mutex<VecDeque>` +
//! `Condvar`, bounded and unbounded). See `vendor/README.md`.

pub mod channel;
pub mod thread;
