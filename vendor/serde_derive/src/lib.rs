//! Offline shim for `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the mini-serde in `vendor/serde`.
//!
//! Parses the item's `TokenStream` directly (no `syn`/`quote`) and emits an
//! impl of the shim traits (`serde::Serialize::to_value` /
//! `serde::Deserialize::from_value`) using serde-compatible JSON conventions:
//! structs as objects, unit enum variants as strings, data variants as
//! externally tagged single-key objects. Supports plain (non-generic) structs
//! and enums with named, tuple, or unit fields — the only shapes this
//! workspace derives. Attributes (incl. doc comments) are skipped; `#[serde]`
//! attributes are NOT interpreted and the workspace must not use any.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("shim serde_derive emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Unnamed(usize),
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut Iter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // (crate) / (super)
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let is_enum = match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => return Err(format!("shim serde_derive: expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("shim serde_derive: expected item name, got {other:?}")),
    };
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err("shim serde_derive: generic types are not supported".into())
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
            Err("shim serde_derive: where clauses are not supported".into())
        }
        None | Some(TokenTree::Punct(_)) => {
            // `struct X;` — the trailing `;` (or nothing).
            Ok(Item {
                name,
                kind: Kind::Struct(Fields::Unit),
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let kind = if is_enum {
                Kind::Enum(parse_variants(g.stream())?)
            } else {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())?))
            };
            Ok(Item { name, kind })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
            name,
            kind: Kind::Struct(Fields::Unnamed(count_tuple_slots(g.stream()))),
        }),
        other => Err(format!("shim serde_derive: unexpected token {other:?}")),
    }
}

/// Counts comma-separated slots at angle-bracket depth 0.
fn count_tuple_slots(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut slots = 0usize;
    let mut any = false;
    let mut prev_dash = false;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                ',' if depth == 0 => {
                    slots += 1;
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
            any = true;
        }
    }
    if any {
        slots + 1
    } else {
        slots
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("shim serde_derive: expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("shim serde_derive: expected ':', got {other:?}")),
        }
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        let mut prev_dash = false;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!("shim serde_derive: expected variant name, got {other:?}"))
            }
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Unnamed(count_tuple_slots(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` then the trailing comma.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn object_literal(out: &mut String, fields: &[String], access: &str) {
    out.push_str("{ let mut __m = serde::value::Map::new(); ");
    for f in fields {
        let _ = write!(
            out,
            "__m.insert(::std::string::String::from({f:?}), serde::Serialize::to_value({access}{f})); "
        );
    }
    out.push_str("serde::value::Value::Object(__m) }");
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::Struct(Fields::Unit) => body.push_str("serde::value::Value::Null"),
        Kind::Struct(Fields::Named(fields)) => object_literal(&mut body, fields, "&self."),
        Kind::Struct(Fields::Unnamed(1)) => {
            body.push_str("serde::Serialize::to_value(&self.0)");
        }
        Kind::Struct(Fields::Unnamed(n)) => {
            body.push_str("serde::value::Value::Array(vec![");
            for i in 0..*n {
                let _ = write!(body, "serde::Serialize::to_value(&self.{i}), ");
            }
            body.push_str("])");
        }
        Kind::Enum(variants) => {
            body.push_str("match self { ");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{v} => serde::value::Value::String(::std::string::String::from({v:?})), "
                        );
                    }
                    Fields::Unnamed(1) => {
                        let _ = write!(
                            body,
                            "{name}::{v}(__f0) => serde::__private::tag({v:?}, serde::Serialize::to_value(__f0)), "
                        );
                    }
                    Fields::Unnamed(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{v}({}) => serde::__private::tag({v:?}, serde::value::Value::Array(vec![",
                            binders.join(", ")
                        );
                        for b in &binders {
                            let _ = write!(body, "serde::Serialize::to_value({b}), ");
                        }
                        body.push_str("])), ");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(
                            body,
                            "{name}::{v} {{ {} }} => serde::__private::tag({v:?}, ",
                            fields.join(", ")
                        );
                        object_literal(&mut body, fields, "");
                        body.push_str("), ");
                    }
                }
            }
            body.push_str("}");
        }
    }
    format!(
        "#[automatically_derived] impl serde::Serialize for {name} {{ \
           fn to_value(&self) -> serde::value::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::Struct(Fields::Unit) => {
            let _ = write!(body, "Ok({name})");
        }
        Kind::Struct(Fields::Named(fields)) => {
            let _ = write!(body, "Ok({name} {{ ");
            for f in fields {
                let _ = write!(body, "{f}: serde::__private::field(__v, {f:?})?, ");
            }
            body.push_str("})");
        }
        Kind::Struct(Fields::Unnamed(1)) => {
            let _ = write!(body, "Ok({name}(serde::__private::from(__v)?))");
        }
        Kind::Struct(Fields::Unnamed(n)) => {
            let _ = write!(body, "{{ let __s = serde::__private::seq(__v, {n})?; Ok({name}(");
            for i in 0..*n {
                let _ = write!(body, "serde::__private::from(&__s[{i}])?, ");
            }
            body.push_str(")) }");
        }
        Kind::Enum(variants) => {
            body.push_str("match serde::__private::variant(__v)? { ");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(body, "({v:?}, _) => Ok({name}::{v}), ");
                    }
                    Fields::Unnamed(1) => {
                        let _ = write!(
                            body,
                            "({v:?}, Some(__inner)) => Ok({name}::{v}(serde::__private::from(__inner)?)), "
                        );
                    }
                    Fields::Unnamed(n) => {
                        let _ = write!(
                            body,
                            "({v:?}, Some(__inner)) => {{ let __s = serde::__private::seq(__inner, {n})?; Ok({name}::{v}("
                        );
                        for i in 0..*n {
                            let _ = write!(body, "serde::__private::from(&__s[{i}])?, ");
                        }
                        body.push_str(")) }, ");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(body, "({v:?}, Some(__inner)) => Ok({name}::{v} {{ ");
                        for f in fields {
                            let _ = write!(body, "{f}: serde::__private::field(__inner, {f:?})?, ");
                        }
                        body.push_str("}), ");
                    }
                }
            }
            let _ = write!(
                body,
                "(__other, _) => Err(serde::Error::custom(format!(\
                   \"unknown variant '{{__other}}' for {name}\"))), "
            );
            body.push_str("}");
        }
    }
    format!(
        "#[automatically_derived] impl serde::Deserialize for {name} {{ \
           fn from_value(__v: &serde::value::Value) -> ::core::result::Result<Self, serde::Error> {{ {body} }} }}"
    )
}
