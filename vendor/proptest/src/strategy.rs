//! The shim's `Strategy` trait and combinators (sampling only, no shrinking).

use crate::test_runner::TestRng;
use crate::Arbitrary;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (panics after too many misses,
    /// mirroring real proptest's rejection cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy of [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding a fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// String-pattern strategies. Real proptest interprets a `&str` strategy as
/// a full regex; the shim supports the forms this workspace uses — a literal
/// with one optional trailing `.{lo,hi}` repetition (e.g. `".{0,400}"`) —
/// and panics on anything fancier.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (literal, rep) = match self.find(".{") {
            None => (*self, None),
            Some(i) => {
                let rest = &self[i + 2..];
                let close = rest
                    .find('}')
                    .unwrap_or_else(|| panic!("shim proptest: unsupported regex {self:?}"));
                if i + 2 + close + 1 != self.len() {
                    panic!("shim proptest: unsupported regex {self:?}");
                }
                let (lo, hi) = rest[..close]
                    .split_once(',')
                    .unwrap_or_else(|| panic!("shim proptest: unsupported regex {self:?}"));
                let lo: usize = lo.trim().parse().expect("repetition lower bound");
                let hi: usize = hi.trim().parse().expect("repetition upper bound");
                (&self[..i], Some((lo, hi)))
            }
        };
        if literal.contains(['\\', '[', '(', '*', '+', '?', '|', '$', '^']) {
            panic!("shim proptest: unsupported regex {self:?}");
        }
        let mut out = String::from(literal);
        if let Some((lo, hi)) = rep {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                // `.` matches any char but newline; favor ASCII with a dash
                // of multi-byte and format-hostile characters.
                let c = match rng.below(20) {
                    0 => '¢',
                    1 => '漢',
                    2 => ',',
                    3 => '"',
                    4 => '\t',
                    _ => char::from(0x20 + rng.below(0x5F) as u8),
                };
                out.push(c);
            }
        }
        out
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
