//! Deterministic RNG for the shim's strategy sampling, plus the
//! `TestCaseError` type property bodies return.

/// Failure of a single property case (subset of real proptest's type).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (e.g. by a filter).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// xoshiro256** seeded via SplitMix64 — deterministic per test name so runs
/// are reproducible (real proptest uses OS entropy plus a regression file).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary integer.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform draw in `[0, span)`; `span == 0` means the full
    /// 2^64 range.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }
}
