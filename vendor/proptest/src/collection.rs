//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
