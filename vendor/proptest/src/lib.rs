//! Offline shim for the `proptest` API subset used by this workspace.
//!
//! Property tests really run: each `proptest!` function samples its
//! strategies `ProptestConfig::cases` times (default 64) from a deterministic
//! per-test RNG (seeded from the test name) and executes the body. Unlike
//! real proptest there is **no shrinking** and no persisted failure regression
//! files; a failing case reports the panic from the body directly. See
//! `vendor/README.md`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Runner configuration (shim: only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Types with a canonical strategy (subset of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Samples one canonical value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        // Finite values across a wide dynamic range (real proptest also
        // samples specials; the workspace's properties expect finite input).
        let unit = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        unit * (2f64).powi(exp)
    }
}

/// Canonical strategy for `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-style access (`prop::collection::vec`), as in real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property body, returning
/// `Err(TestCaseError)` on failure (property bodies run inside a
/// `Result`-returning closure, so `?` on helper functions works too).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} == {:?}", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {:?} != {:?}", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Declares property-test functions:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn holds(x in 0u32..20, seed in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let ($($pat,)*) = (
                        $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )*
                    );
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!("property failed on case {}/{}: {}",
                            __case + 1, __config.cases, __e);
                    }
                }
            }
        )+
    };
}
