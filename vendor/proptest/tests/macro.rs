//! Exercises the shim's `proptest!` macro with the shapes the workspace uses.

use proptest::prelude::*;

const SIDE: f64 = 1000.0;

fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
    (0.0..=SIDE, 0.0..=SIDE)
}

fn arb_sum() -> impl Strategy<Value = f64> {
    (1usize..8, 0.001..100.0f64).prop_flat_map(|(k, scale)| {
        prop::collection::vec(0.0..1.0f64, k).prop_map(move |v| v.iter().sum::<f64>() * scale)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ranges_in_bounds(x in 0u32..20, (a, b) in arb_pair(), seed in any::<u64>()) {
        prop_assert!(x < 20);
        prop_assert!((0.0..=SIDE).contains(&a) && (0.0..=SIDE).contains(&b));
        let _ = seed; // any::<u64> covers the whole domain; nothing to bound.
    }

    #[test]
    fn vec_sizes_respected(
        v in prop::collection::vec((0.0..=SIDE, 0.0..=SIDE), 0..120),
        w in prop::collection::vec(0u32..20, 0..50),
    ) {
        prop_assert!(v.len() < 120);
        prop_assert!(w.len() < 50);
        prop_assert!(w.iter().all(|&x| x < 20));
    }

    #[test]
    fn flat_map_composes(s in arb_sum()) {
        prop_assert!(s.is_finite());
        prop_assert!(s >= 0.0);
    }
}

proptest! {
    #[test]
    fn default_config_runs(x in -5i32..5) {
        prop_assert!((-5..5).contains(&x));
        prop_assert_eq!(x, x);
        prop_assert_ne!(x, x + 1);
    }
}

#[test]
fn exact_size_vec() {
    let mut rng = TestRng::from_seed(9);
    let s = prop::collection::vec(0.0..1000.0f64, 7usize);
    assert_eq!(s.sample(&mut rng).len(), 7);
}

#[test]
fn deterministic_per_name() {
    let mut a = TestRng::from_name("t");
    let mut b = TestRng::from_name("t");
    assert_eq!(a.next_u64(), b.next_u64());
}
